"""Event engine: ordering, determinism, timers."""

import pytest

from repro.sim import Simulator, Timer


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(2.0, log.append, "b")
        sim.at(1.0, log.append, "a")
        sim.at(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_same_time_events_fifo(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.at(1.0, log.append, tag)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.at(5.0, lambda: sim.after(2.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [7.0]

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.at(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(0.5, lambda: None)

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        log = []
        sim.at(1.0, log.append, 1)
        sim.at(2.0, log.append, 2)
        sim.run_until(1.5)
        assert log == [1]
        assert sim.pending == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.at(float(t), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(1.0)
        sim.run()
        assert fired == [1.0]
        assert not timer.armed

    def test_cancel_suppresses(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.restart(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_restart_supersedes(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(1.0)
        timer.restart(3.0)
        sim.run()
        assert fired == [3.0]

    def test_expires_at_tracking(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.restart(2.0)
        assert timer.expires_at == 2.0
        timer.cancel()
        assert timer.expires_at is None
