"""Shared fixtures: small networks and flow populations."""

import numpy as np
import pytest

from repro.core import FlowTable, LinkSet
from repro.topology import TwoTierClos


@pytest.fixture
def single_link():
    """One 10 Gbit/s link."""
    return LinkSet([10.0])


@pytest.fixture
def tandem_links():
    """Two links in series, 10 and 4 Gbit/s."""
    return LinkSet([10.0, 4.0])


@pytest.fixture
def small_clos():
    """24 hosts: 3 racks x 8, 2 spines (fast for packet tests)."""
    return TwoTierClos(n_racks=3, hosts_per_rack=8, n_spines=2)


@pytest.fixture
def tiny_clos():
    """8 hosts: 2 racks x 4, 2 spines (fastest packet substrate)."""
    return TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)


def populate_random_flows(table: FlowTable, topology, n_flows, seed=0):
    """Add ``n_flows`` uniform-random flows; returns the flow ids."""
    rng = np.random.default_rng(seed)
    ids = []
    for i in range(n_flows):
        src = int(rng.integers(topology.n_hosts))
        dst = int(rng.integers(topology.n_hosts - 1))
        if dst >= src:
            dst += 1
        table.add_flow(i, topology.route(src, dst, i))
        ids.append(i)
    return ids
