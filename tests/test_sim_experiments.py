"""The packet-experiment harness and run-level statistics plumbing."""

import numpy as np
import pytest

from repro.sim import MSS_BYTES, RunStats, SimFlow
from repro.sim.experiments import (build_network, convergence_experiment,
                                   fct_experiment, run_arrivals)
from repro.workloads import PoissonFlowletGenerator, web_workload


class TestRunArrivals:
    def test_schedules_and_completes(self, tiny_clos):
        network = build_network("tcp", topology=tiny_clos)
        generator = PoissonFlowletGenerator(web_workload(),
                                            tiny_clos.n_hosts, 0.3, seed=9)
        arrivals = generator.arrivals_until(1e-3)
        stats = run_arrivals(network, arrivals, 1e-3, drain=5e-3)
        assert len(stats.flows) == len(arrivals)
        assert stats.completion_fraction() > 0.95

    def test_max_events_bounds_work(self, tiny_clos):
        network = build_network("tcp", topology=tiny_clos)
        generator = PoissonFlowletGenerator(web_workload(),
                                            tiny_clos.n_hosts, 0.5, seed=9)
        run_arrivals(network, generator.arrivals_until(1e-3), 1e-3,
                     drain=5e-3, max_events=500)
        assert network.sim.events_processed <= 500


class TestFctExperiment:
    def test_same_seed_same_arrivals_across_schemes(self, tiny_clos):
        populations = []
        for scheme in ("tcp", "pfabric"):
            _, stats, _ = fct_experiment(scheme, load=0.3, duration=1e-3,
                                         drain=3e-3, seed=5,
                                         topology=tiny_clos)
            populations.append({(f.flow_id, f.src, f.dst, f.size_bytes)
                                for f in stats.flows.values()})
        assert populations[0] == populations[1]

    def test_duration_returned(self, tiny_clos):
        _, _, duration = fct_experiment("tcp", load=0.3, duration=1e-3,
                                        drain=2e-3, seed=5,
                                        topology=tiny_clos)
        assert duration == 1e-3

    def test_queue_sampler_populates_sampled_stats(self, tiny_clos):
        _, stats, _ = fct_experiment("tcp", load=0.5, duration=2e-3,
                                     drain=3e-3, seed=5,
                                     topology=tiny_clos)
        assert stats.sampled_path_delay_by_hops  # some hop class sampled
        for hops, samples in stats.sampled_path_delay_by_hops.items():
            assert all(delay >= 0 for delay in samples)


class TestConvergenceExperiment:
    def test_staircase_structure(self, tiny_clos):
        network, flow_ids = convergence_experiment(
            "tcp", n_senders=2, join_interval=1e-3,
            topology=tiny_clos, flow_gbits=0.05)
        assert len(flow_ids) == 2
        # Total runtime covers joins + leaves.
        assert network.sim.now >= 4e-3 - 1e-9

    def test_throughput_series_shape(self, tiny_clos):
        network, flow_ids = convergence_experiment(
            "tcp", n_senders=2, join_interval=1e-3,
            topology=tiny_clos, flow_gbits=0.05)
        times, gbps = network.stats.throughput_series(flow_ids[0],
                                                      network.sim.now)
        assert len(times) == len(gbps)
        assert np.all(gbps >= 0)
        assert gbps.max() <= 10.5  # never above line rate


class TestRunStats:
    def test_throughput_series_requires_window(self):
        stats = RunStats(throughput_window=None)
        with pytest.raises(ValueError):
            stats.throughput_series("f", 1.0)

    def test_p99_empty_is_zero(self):
        stats = RunStats()
        assert stats.p99_queue_delay(4) == 0.0
        assert stats.p99_sampled_queue_delay(2) == 0.0

    def test_completion_fraction_empty(self):
        assert RunStats().completion_fraction() == 1.0

    def test_drop_gbps_zero_duration(self):
        assert RunStats().drop_gbps([], 0.0) == 0.0

    def test_delivery_accounting(self):
        stats = RunStats(throughput_window=1e-4)
        flow = SimFlow("f", 0, 1, 3 * MSS_BYTES, 0.0, route=(1, 2),
                       reverse_route=(2, 1))
        stats.register_flow(flow)

        class FakePacket:
            flow = None
            size_bytes = 1500.0
            queue_delay = 5e-6
        packet = FakePacket()
        packet.flow = flow
        stats.record_delivery(packet, now=1.5e-4)
        assert stats.delivered_bytes == 1500.0
        times, gbps = stats.throughput_series("f", 3e-4)
        assert gbps[1] > 0  # landed in the second window
