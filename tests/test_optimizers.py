"""NED and the baseline optimizers: convergence to known optima."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (FgmOptimizer, FlowTable, GradientOptimizer, LinkSet,
                        NedOptimizer, NewtonLikeOptimizer, solve_to_optimal)
from repro.core.utility import AlphaFairUtility


def n_flows_one_link(n, capacity=10.0):
    table = FlowTable(LinkSet([capacity]))
    for i in range(n):
        table.add_flow(i, [0])
    return table


class TestNedKnownOptima:
    @pytest.mark.parametrize("n", [1, 2, 5, 17])
    def test_equal_split_single_link(self, n):
        table = n_flows_one_link(n)
        rates = NedOptimizer(table).iterate(300)
        assert np.allclose(rates, 10.0 / n, rtol=1e-6)

    def test_weighted_split_single_link(self):
        table = FlowTable(LinkSet([12.0]))
        table.add_flow("light", [0], weight=1.0)
        table.add_flow("heavy", [0], weight=2.0)
        rates = NedOptimizer(table).iterate(300)
        # Proportional fairness: rates split in weight ratio.
        assert rates[table.index_of("heavy")] == pytest.approx(
            2 * rates[table.index_of("light")], rel=1e-6)
        assert rates.sum() == pytest.approx(12.0, rel=1e-6)

    def test_classic_triangle(self):
        # One long flow over both links, one short per link; the
        # proportional-fair optimum for equal capacities c: short flows
        # get 2c/3, the long flow c/3.
        table = FlowTable(LinkSet([9.0, 9.0]))
        table.add_flow("long", [0, 1])
        table.add_flow("s0", [0])
        table.add_flow("s1", [1])
        rates = NedOptimizer(table).iterate(500)
        assert rates[table.index_of("long")] == pytest.approx(3.0, rel=1e-4)
        assert rates[table.index_of("s0")] == pytest.approx(6.0, rel=1e-4)

    def test_bottleneck_only_constrains(self):
        # A flow crossing a 10G and a 4G link is capped by the 4G one.
        table = FlowTable(LinkSet([10.0, 4.0]))
        table.add_flow("a", [0, 1])
        rates = NedOptimizer(table).iterate(200)
        assert rates[0] == pytest.approx(4.0, rel=1e-6)

    def test_kkt_at_convergence(self):
        table = n_flows_one_link(4)
        opt = NedOptimizer(table)
        rates = opt.iterate(300)
        over = opt.over_allocation(rates)
        assert np.all(over <= 1e-6)                      # feasibility
        assert np.all(opt.prices * np.abs(over) < 1e-6)  # compl. slackness

    @pytest.mark.parametrize("gamma", [0.2, 0.4, 1.0, 1.5])
    def test_gamma_range_of_paper_converges(self, gamma):
        # §6.2: performance similar for gamma in [0.2, 1.5].
        table = n_flows_one_link(5)
        rates = NedOptimizer(table, gamma=gamma).iterate(800)
        assert np.allclose(rates, 2.0, rtol=1e-3)

    def test_alpha_fair_utility_supported(self):
        table = FlowTable(LinkSet([8.0]))
        table.add_flow("a", [0])
        table.add_flow("b", [0])
        rates = NedOptimizer(table, utility=AlphaFairUtility(2.0)).iterate(500)
        assert np.allclose(rates, 4.0, rtol=1e-4)

    def test_warm_start_reconverges_after_churn(self):
        table = n_flows_one_link(4)
        opt = NedOptimizer(table)
        opt.iterate(200)
        table.remove_flow(0)
        rates = opt.iterate(200)
        assert np.allclose(rates, 10.0 / 3, rtol=1e-5)

    def test_churn_convergence_is_fast_from_warm_start(self):
        # The headline property: after one flow leaves, NED is near the
        # new optimum within a handful of iterations.
        table = n_flows_one_link(5)
        opt = NedOptimizer(table)
        opt.iterate(300)
        table.remove_flow(0)
        rates = opt.iterate(10)
        assert np.allclose(rates, 2.5, rtol=0.05)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            NedOptimizer(n_flows_one_link(1), gamma=0.0)

    def test_idle_link_price_parks_at_capacity_price(self):
        table = n_flows_one_link(2)
        links2 = LinkSet([10.0, 40.0])
        table2 = FlowTable(links2)
        table2.add_flow("a", [0])
        opt = NedOptimizer(table2)
        opt.iterate(50)
        # Link 1 has no flows: price should be U'(c) = 1/40.
        assert opt.prices[1] == pytest.approx(1.0 / 40.0)

    def test_rate_caps_bound_transients(self):
        table = FlowTable(LinkSet([10.0, 10.0]))
        table.add_flow("a", [0, 1])
        opt = NedOptimizer(table)
        opt.prices[:] = 0.0  # pathological state
        rates = opt.rate_update()
        assert rates[0] <= 10.0 + 1e-9


class TestSolveToOptimal:
    def test_matches_direct_iteration(self):
        table = n_flows_one_link(3)
        rates, prices = solve_to_optimal(table)
        assert np.allclose(rates, 10.0 / 3, rtol=1e-6)
        assert prices[0] == pytest.approx(3.0 / 10.0, rel=1e-4)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_networks_feasible_and_slack(self, seed):
        rng = np.random.default_rng(seed)
        n_links = int(rng.integers(2, 6))
        table = FlowTable(LinkSet(rng.uniform(5, 40, n_links)))
        for i in range(int(rng.integers(1, 12))):
            length = int(rng.integers(1, min(3, n_links) + 1))
            route = rng.choice(n_links, size=length, replace=False)
            table.add_flow(i, route)
        rates, prices = solve_to_optimal(table, tol=1e-7)
        load = table.link_totals(rates)
        assert np.all(load <= table.links.capacity * (1 + 1e-5))
        over = load - table.links.capacity
        # Complementary slackness applies to carried links; links with
        # no flows are parked at the idle price by design.
        carried = table.link_totals(np.ones(table.n_flows)) > 0
        assert np.all((prices * np.abs(over))[carried] < 1e-3)


class TestGradient:
    def test_converges_slowly_but_surely(self):
        table = n_flows_one_link(4)
        opt = GradientOptimizer(table, gamma=0.01)
        rates = opt.iterate(5000)
        assert np.allclose(rates, 2.5, rtol=1e-2)

    def test_needs_more_iterations_than_ned(self):
        def iterations_to(optimizer, target, tol=0.01, cap=5000):
            for i in range(cap):
                rates = optimizer.iterate(1)
                if np.allclose(rates, target, rtol=tol):
                    return i + 1
            return cap

        table_a = n_flows_one_link(6)
        table_b = n_flows_one_link(6)
        ned_iters = iterations_to(NedOptimizer(table_a), 10 / 6)
        grad_iters = iterations_to(
            GradientOptimizer(table_b, gamma=0.005), 10 / 6)
        assert ned_iters < grad_iters

    def test_large_gamma_oscillates(self):
        table = n_flows_one_link(4)
        opt = GradientOptimizer(table, gamma=5.0)
        trajectory = [opt.iterate(1).sum() for _ in range(60)]
        tail = np.array(trajectory[-20:])
        # With an absurd step the total rate keeps swinging.
        assert tail.std() > 0.05 * tail.mean()


class TestNewtonLike:
    def test_converges_on_static_problem(self):
        table = n_flows_one_link(4)
        opt = NewtonLikeOptimizer(table, gamma=0.5)
        rates = opt.iterate(2000)
        assert np.allclose(rates, 2.5, rtol=0.05)

    def test_estimates_negative_diagonal(self):
        table = n_flows_one_link(3)
        opt = NewtonLikeOptimizer(table)
        opt.iterate(50)
        assert np.all(opt._diag_estimate < 0)


class TestFgm:
    def test_converges_on_static_problem(self):
        table = n_flows_one_link(4)
        opt = FgmOptimizer(table)
        rates = opt.iterate(3000)
        assert np.allclose(rates, 2.5, rtol=0.05)

    def test_reset_restarts_momentum(self):
        table = n_flows_one_link(2)
        opt = FgmOptimizer(table)
        opt.iterate(10)
        opt.reset()
        assert opt._momentum_t == 1.0

    def test_lipschitz_weights_positive(self):
        table = n_flows_one_link(3)
        opt = FgmOptimizer(table)
        assert np.all(opt._lipschitz_weights() > 0)
