"""Flowtune's in-network control plane: notifications, rates, failover."""

import pytest

from repro.control.allocator_node import MAX_ORPHAN_TICKS
from repro.sim import MSS_BYTES
from repro.sim.experiments import build_network


class TestNotifications:
    def test_allocator_learns_of_flowlet_start_and_end(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos)
        allocator_node = network.allocator_device
        # Large enough that it is still running when we check.
        flow = network.make_flow("f", 0, tiny_clos.n_hosts - 1,
                                 2000 * MSS_BYTES)
        network.start_flow(flow)
        network.run_until(150e-6)
        assert "f" in allocator_node.allocator
        network.sim.run()
        network.run_until(network.sim.now + 500e-6)  # let the END land
        assert "f" not in allocator_node.allocator

    def test_rate_update_reaches_sender(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos)
        flow = network.make_flow("f", 0, tiny_clos.n_hosts - 1,
                                 2000 * MSS_BYTES)
        sender = network.start_flow(flow)
        network.run_until(200e-6)
        assert sender.mode == "paced"
        assert sender.rate_bps > 0

    def test_notifications_survive_control_packet_loss(self, tiny_clos):
        """Even with droppy queues the ARQ delivers the start."""
        network = build_network("flowtune", topology=tiny_clos,
                                queue_capacity_packets=6)
        # Background data congestion on the control path.
        for i in range(4):
            network.start_flow(network.make_flow(
                f"bg{i}", i % 4, 4 + i % 4, 200 * MSS_BYTES))
        flow = network.make_flow("f", 0, tiny_clos.n_hosts - 1,
                                 50 * MSS_BYTES)
        network.start_flow(flow)
        network.run_until(3e-3)
        assert "f" in network.allocator_device.allocator or \
            flow.finish_time is not None

    def test_control_bytes_accounted(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos)
        network.start_flow(network.make_flow("f", 0, 5, 20 * MSS_BYTES))
        network.sim.run()
        assert network.stats.control_bytes_to_allocator > 0
        assert network.stats.control_bytes_from_allocator > 0


class TestOrphanEnds:
    """The ARQ can reorder a retransmitted start behind its end; the
    allocator parks such ends and must consume them exactly once."""

    def test_end_before_start_then_restart(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos)
        node = network.allocator_device
        node._inbox.append(("end", ("f",)))
        node._apply_inbox()
        assert "f" not in node.allocator
        assert "f" in node._orphan_ends
        # The delayed start lands next tick; the parked end cancels it.
        node._inbox.append(("start", ("f", 0, 5)))
        node._apply_inbox()
        assert "f" not in node.allocator
        # The orphan was consumed by that cancellation: a later
        # flowlet reusing the id must be admitted normally.
        node._inbox.append(("start", ("f", 0, 5)))
        node._apply_inbox()
        assert "f" in node.allocator
        assert "f" not in node._orphan_ends

    def test_consumed_orphan_not_resurrected_by_same_tick_cancel(
            self, tiny_clos):
        """A short flowlet (start+end in one tick) consumes a parked
        orphan; the orphan's injected retry in that same inbox must
        not re-park itself and swallow the next restart."""
        network = build_network("flowtune", topology=tiny_clos)
        node = network.allocator_device
        node._inbox.append(("end", ("f",)))
        node._apply_inbox()
        assert "f" in node._orphan_ends
        node._inbox.append(("start", ("f", 0, 5)))
        node._inbox.append(("end", ("f",)))
        node._apply_inbox()
        assert "f" not in node.allocator
        assert "f" not in node._orphan_ends
        node._inbox.append(("start", ("f", 0, 5)))
        node._apply_inbox()
        assert "f" in node.allocator

    def test_orphan_end_gives_up_eventually(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos)
        node = network.allocator_device
        node._inbox.append(("end", ("f",)))
        node._apply_inbox()
        for _ in range(MAX_ORPHAN_TICKS):
            node._apply_inbox()
        assert "f" not in node._orphan_ends

    def test_start_end_same_tick_nets_out(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos)
        node = network.allocator_device
        node._inbox.append(("start", ("f", 0, 5)))
        node._inbox.append(("end", ("f",)))
        node._apply_inbox()
        assert "f" not in node.allocator
        assert "f" not in node._orphan_ends
        # And the id is immediately reusable.
        node._inbox.append(("start", ("f", 0, 5)))
        node._apply_inbox()
        assert "f" in node.allocator


class TestAllocation:
    def test_two_flows_share_fairly(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos)
        flows = [network.make_flow(i, 1 + i, 0, 4000 * MSS_BYTES)
                 for i in range(2)]
        senders = [network.start_flow(f) for f in flows]
        network.run_until(1.5e-3)
        rates = [s.rate_bps / 1e9 for s in senders]
        # The shared downlink is 10 G with 1% headroom: ~4.95 each.
        assert rates[0] == pytest.approx(rates[1], rel=0.05)
        assert sum(rates) == pytest.approx(9.9, rel=0.1)

    def test_near_zero_drops(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos)
        for i in range(6):
            network.start_flow(network.make_flow(
                i, i % 4, 4 + (i + 1) % 4, 100 * MSS_BYTES))
        network.run_until(4e-3)
        total_tx = sum(link.tx_bytes for link in network.links)
        assert network.total_dropped_bytes() <= 0.001 * total_tx

    def test_rates_respect_capacity(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos)
        senders = [network.start_flow(network.make_flow(
            i, 1 + (i % 3), 0, 2000 * MSS_BYTES)) for i in range(3)]
        network.run_until(1.5e-3)
        total = sum(s.rate_bps for s in senders if s.mode == "paced")
        assert total <= 10e9 * 1.02


class TestFailover:
    def test_rate_expiry_falls_back_to_tcp(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos,
                                rate_expiry=300e-6)
        flow = network.make_flow("f", 0, tiny_clos.n_hosts - 1,
                                 5000 * MSS_BYTES)
        sender = network.start_flow(flow)
        network.run_until(200e-6)
        assert sender.mode == "paced"
        # Kill the allocator: no more ticks process notifications.
        network.allocator_device._tick = lambda: None
        network.run_until(network.sim.now + 2e-3)
        assert sender.mode == "window"
        # The fallback window is seeded from the last allocated rate.
        assert sender.cwnd >= 2.0

    def test_flow_completes_after_allocator_failure(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos,
                                rate_expiry=300e-6)
        flow = network.make_flow("f", 0, tiny_clos.n_hosts - 1,
                                 500 * MSS_BYTES)
        network.start_flow(flow)
        network.run_until(150e-6)
        network.allocator_device._tick = lambda: None
        network.run_until(network.sim.now + 20e-3)
        assert flow.finish_time is not None
