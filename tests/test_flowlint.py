"""The flowlint analyzer: per-rule fixtures, pragmas, baseline, CLI.

Fixtures mirror the repo layout under a temp directory (scope
predicates match on *path suffixes*, so ``tmp/repro/core/x.py`` scans
exactly like ``src/repro/core/x.py``).  Each rule gets a positive
fixture (fires) and a near-miss (must stay silent); the meta-test at
the bottom runs the real analyzer over the committed tree and asserts
it is clean against the committed baseline.
"""

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.flowlint import engine as fl
from tools.flowlint.__main__ import main as flowlint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(tmp_path, files, rules=None):
    """Write ``{rel: source}`` under ``tmp_path`` and run the rules."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    project = fl.load_project(tmp_path)
    return fl.run_rules(project, rules=rules)


def codes(diags):
    return [d.rule for d in diags]


# ----------------------------------------------------------------------
# FL-DET — determinism
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_reduceat_in_core_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/core/opt.py": """
            import numpy as np

            def f(a, idx):
                return np.add.reduceat(a, idx)
        """})
        assert "FL-DET001" in codes(diags)

    def test_reduceat_outside_core_is_silent(self, tmp_path):
        diags = lint(tmp_path, {"repro/sim/opt.py": """
            import numpy as np

            def f(a, idx):
                return np.add.reduceat(a, idx)
        """})
        assert "FL-DET001" not in codes(diags)

    def test_ufunc_at_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/core/opt.py": """
            import numpy as np

            def f(out, idx, vals):
                np.add.at(out, idx, vals)
        """})
        assert "FL-DET001" in codes(diags)

    def test_sum_over_set_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/core/opt.py": """
            def f(xs):
                return sum({x * 1.5 for x in xs})
        """})
        assert "FL-DET002" in codes(diags)

    def test_sum_over_list_is_silent(self, tmp_path):
        diags = lint(tmp_path, {"repro/core/opt.py": """
            def f(xs):
                return sum([x * 1.5 for x in xs])
        """})
        assert "FL-DET002" not in codes(diags)

    def test_bincount_outside_kernels_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/core/opt.py": """
            import numpy as np

            def f(idx, w):
                return np.bincount(idx, weights=w)
        """})
        assert "FL-DET003" in codes(diags)

    def test_bincount_inside_kernels_is_silent(self, tmp_path):
        diags = lint(tmp_path, {"repro/core/kernels/scatter.py": """
            import numpy as np

            def f(idx, w):
                return np.bincount(idx, weights=w)
        """})
        assert "FL-DET003" not in codes(diags)


# ----------------------------------------------------------------------
# FL-LIFE — lifecycle
# ----------------------------------------------------------------------

class TestLifecycle:
    def test_resource_class_without_close_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import socket

            class Server:
                def __init__(self):
                    self._sock = socket.socket()
        """})
        assert "FL-LIFE001" in codes(diags)

    def test_private_class_with_shutdown_is_silent(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import socket

            class _Worker:
                def __init__(self):
                    self._sock = socket.socket()

                def shutdown(self):
                    self._sock.close()
        """})
        assert "FL-LIFE001" not in codes(diags)

    def test_public_owner_without_ctx_manager_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import socket

            class Server:
                def __init__(self):
                    self._sock = socket.socket()

                def close(self):
                    self._sock.close()
        """})
        assert "FL-LIFE002" in codes(diags)

    def test_full_contract_is_silent(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import socket

            class Server:
                def __init__(self):
                    self._sock = socket.socket()

                def close(self):
                    self._sock.close()

                def __enter__(self):
                    return self

                def __exit__(self, exc_type, exc, tb):
                    self.close()
                    return False
        """})
        assert not codes(diags)

    def test_exit_not_delegating_to_close_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import socket

            class Server:
                def __init__(self):
                    self._sock = socket.socket()

                def close(self):
                    self._sock.close()

                def __enter__(self):
                    return self

                def __exit__(self, exc_type, exc, tb):
                    self._sock = None
                    return False
        """})
        assert "FL-LIFE004" in codes(diags)

    def test_local_leak_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import socket

            def probe(addr):
                sock = socket.socket()
                return 1
        """})
        assert "FL-LIFE003" in codes(diags)

    def test_local_returned_is_silent(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import socket

            def dial(addr):
                sock = socket.socket()
                return sock
        """})
        assert "FL-LIFE003" not in codes(diags)

    def test_local_closed_is_silent(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import socket

            def probe(addr):
                sock = socket.socket()
                sock.close()
        """})
        assert "FL-LIFE003" not in codes(diags)


# ----------------------------------------------------------------------
# FL-WIRE — wire formats
# ----------------------------------------------------------------------

class TestWire:
    def test_pickle_under_service_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/codec.py": """
            import pickle
        """})
        assert "FL-WIRE001" in codes(diags)

    def test_pickle_elsewhere_is_silent(self, tmp_path):
        diags = lint(tmp_path, {"repro/parallel/other.py": """
            import pickle
        """})
        assert "FL-WIRE001" not in codes(diags)

    def test_pack_arity_mismatch_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/codec.py": """
            import struct

            _HDR = struct.Struct("!II")

            def encode(a, b):
                return _HDR.pack(a)

            def decode(buf):
                a, b = _HDR.unpack(buf)
                return a, b
        """})
        assert "FL-WIRE002" in codes(diags)

    def test_unpack_target_mismatch_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/codec.py": """
            import struct

            _HDR = struct.Struct("!II")

            def encode(a, b):
                return _HDR.pack(a, b)

            def decode(buf):
                a, b, c = _HDR.unpack(buf)
                return a
        """})
        assert "FL-WIRE003" in codes(diags)

    def test_one_sided_format_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/codec.py": """
            import struct

            _HDR = struct.Struct("!II")

            def encode(a, b):
                return _HDR.pack(a, b)
        """})
        assert "FL-WIRE004" in codes(diags)

    def test_paired_format_across_modules_is_silent(self, tmp_path):
        diags = lint(tmp_path, {
            "repro/service/enc.py": """
                import struct

                _HDR = struct.Struct("!II")

                def encode(a, b):
                    return _HDR.pack(a, b)
            """,
            "repro/service/dec.py": """
                import struct

                _HDR = struct.Struct("!II")

                def decode(buf):
                    a, b = _HDR.unpack(buf)
                    return a, b
            """})
        assert "FL-WIRE004" not in codes(diags)

    def test_size_constant_mismatch_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/codec.py": """
            import struct

            _HDR = struct.Struct("!II")
            HDR_SIZE = 12

            def roundtrip(a, b):
                return _HDR.unpack(_HDR.pack(a, b))
        """})
        assert "FL-WIRE005" in codes(diags)


# ----------------------------------------------------------------------
# FL-LOCK — concurrency
# ----------------------------------------------------------------------

class TestLocks:
    def test_sendall_under_lock_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import threading

            class Client:
                def __init__(self, sock):
                    self._lock = threading.Lock()
                    self._sock = sock

                def send(self, data):
                    with self._lock:
                        self._sock.sendall(data)
        """})
        assert "FL-LOCK001" in codes(diags)

    def test_sendall_outside_lock_is_silent(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import threading

            class Client:
                def __init__(self, sock):
                    self._lock = threading.Lock()
                    self._sock = sock

                def send(self, data):
                    self._sock.sendall(data)
        """})
        assert "FL-LOCK001" not in codes(diags)

    def test_dual_context_write_fires(self, tmp_path):
        diags = lint(tmp_path, {"repro/service/x.py": """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def reset(self):
                    self._n = 0
        """})
        assert "FL-LOCK003" in codes(diags)

    def test_locked_helper_context_propagates(self, tmp_path):
        """A helper called only from locked regions counts as locked."""
        diags = lint(tmp_path, {"repro/service/x.py": """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def reset(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):
                    self._n += 1
        """})
        assert "FL-LOCK003" not in codes(diags)


# ----------------------------------------------------------------------
# FL-API — facade hygiene
# ----------------------------------------------------------------------

class TestApi:
    FACADE = {
        "repro/__init__.py": """
            from .core import Thing

            __all__ = ["Thing", "Ghost"]
        """,
        "repro/core.py": """
            class Thing:
                def __init__(self, n):
                    self.n = n

                def run(self, x):
                    return x
        """,
    }

    def test_all_name_without_definition_fires(self, tmp_path):
        diags = lint(tmp_path, self.FACADE)
        assert "FL-API001" in codes(diags)

    def test_unannotated_facade_symbol_fires(self, tmp_path):
        diags = lint(tmp_path, self.FACADE)
        assert "FL-API002" in codes(diags)

    def test_annotated_facade_is_silent(self, tmp_path):
        diags = lint(tmp_path, {
            "repro/__init__.py": """
                from .core import Thing

                __all__ = ["Thing"]
            """,
            "repro/core.py": """
                class Thing:
                    def __init__(self, n: int) -> None:
                        self.n = n

                    def run(self, x: float) -> float:
                        return x
            """})
        assert not codes(diags)


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------

class TestPragmas:
    SOURCE = """
        import numpy as np

        def f(a, idx):
            return np.add.reduceat(a, idx){pragma}
    """

    def test_rule_pragma_suppresses(self, tmp_path):
        src = self.SOURCE.format(
            pragma="  # flowlint: disable=FL-DET001 -- test fixture")
        diags = lint(tmp_path, {"repro/core/opt.py": src})
        assert "FL-DET001" not in codes(diags)

    def test_wildcard_pragma_suppresses(self, tmp_path):
        src = self.SOURCE.format(pragma="  # flowlint: disable=all")
        diags = lint(tmp_path, {"repro/core/opt.py": src})
        assert not codes(diags)

    def test_mismatched_pragma_does_not_suppress(self, tmp_path):
        src = self.SOURCE.format(pragma="  # flowlint: disable=FL-WIRE001")
        diags = lint(tmp_path, {"repro/core/opt.py": src})
        assert "FL-DET001" in codes(diags)

    def test_pragma_on_other_line_does_not_suppress(self, tmp_path):
        src = ("# flowlint: disable=FL-DET001\n"
               + textwrap.dedent(self.SOURCE.format(pragma="")))
        diags = lint(tmp_path, {"repro/core/opt.py": src})
        assert "FL-DET001" in codes(diags)


# ----------------------------------------------------------------------
# baseline ratcheting
# ----------------------------------------------------------------------

class TestBaseline:
    def diag(self, msg="m", line=3):
        return fl.Diagnostic("FL-DET001", "repro/core/opt.py", line, msg)

    def test_apply_partitions(self):
        base = fl.Baseline([{"rule": "FL-DET001",
                             "path": "repro/core/opt.py",
                             "message": "m", "justification": "why"}])
        new, suppressed, stale = base.apply([self.diag("m"),
                                             self.diag("other")])
        assert [d.message for d in suppressed] == ["m"]
        assert [d.message for d in new] == ["other"]
        assert stale == []

    def test_line_moves_do_not_invalidate(self):
        base = fl.Baseline([{"rule": "FL-DET001",
                             "path": "repro/core/opt.py",
                             "message": "m", "justification": "why"}])
        new, suppressed, _ = base.apply([self.diag("m", line=99)])
        assert not new and suppressed

    def test_fixed_finding_goes_stale(self):
        base = fl.Baseline([{"rule": "FL-DET001",
                             "path": "repro/core/opt.py",
                             "message": "m", "justification": "why"}])
        new, suppressed, stale = base.apply([])
        assert not new and not suppressed
        assert [e["message"] for e in stale] == ["m"]

    def test_update_preserves_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        fl.Baseline([{"rule": "FL-DET001", "path": "repro/core/opt.py",
                      "message": "m",
                      "justification": "carefully argued"}]).save(path)
        updated = fl.Baseline.from_diagnostics([self.diag("m")])
        existing = fl.Baseline.load(path)
        justified = {fl.Baseline._key(e): e["justification"]
                     for e in existing.entries}
        for entry in updated.entries:
            prior = justified.get(fl.Baseline._key(entry))
            if prior:
                entry["justification"] = prior
        assert updated.entries[0]["justification"] == "carefully argued"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    CLEAN = {"repro/core/ok.py": "X = 1\n"}
    DIRTY = {"repro/core/bad.py": """
        import numpy as np

        def f(a, idx):
            return np.add.reduceat(a, idx)
    """}

    def write(self, tmp_path, files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        self.write(tmp_path, self.CLEAN)
        rc = flowlint_main(["repro", "--root", str(tmp_path),
                            "--baseline", "none"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        self.write(tmp_path, self.DIRTY)
        rc = flowlint_main(["repro", "--root", str(tmp_path),
                            "--baseline", "none"])
        assert rc == 1
        assert "FL-DET001" in capsys.readouterr().out

    def test_baseline_suppresses_to_exit_zero(self, tmp_path, capsys):
        self.write(tmp_path, self.DIRTY)
        rc = flowlint_main(["repro", "--root", str(tmp_path),
                            "--update-baseline",
                            "--baseline", "base.json"])
        assert rc == 0
        data = json.loads((tmp_path / "base.json").read_text())
        assert data["entries"], "baseline not written"
        capsys.readouterr()
        rc = flowlint_main(["repro", "--root", str(tmp_path),
                            "--baseline", "base.json"])
        assert rc == 0

    def test_strict_fails_on_stale_entries(self, tmp_path, capsys):
        self.write(tmp_path, self.CLEAN)
        fl.Baseline([{"rule": "FL-DET001", "path": "repro/core/gone.py",
                      "message": "m", "justification": "was real once"}
                     ]).save(tmp_path / "base.json")
        rc = flowlint_main(["repro", "--root", str(tmp_path),
                            "--baseline", "base.json"])
        assert rc == 0
        capsys.readouterr()
        rc = flowlint_main(["repro", "--root", str(tmp_path),
                            "--baseline", "base.json", "--strict"])
        assert rc == 1

    def test_github_format_emits_annotations(self, tmp_path, capsys):
        self.write(tmp_path, self.DIRTY)
        rc = flowlint_main(["repro", "--root", str(tmp_path),
                            "--baseline", "none", "--format", "github"])
        assert rc == 1
        assert "::error file=" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        self.write(tmp_path, self.DIRTY)
        rc = flowlint_main(["repro", "--root", str(tmp_path),
                            "--baseline", "none", "--format", "json"])
        assert rc == 1
        data = json.loads(capsys.readouterr().out)
        assert data["new"] and data["new"][0]["rule"] == "FL-DET001"

    def test_step_summary_written(self, tmp_path, capsys, monkeypatch):
        self.write(tmp_path, self.DIRTY)
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        rc = flowlint_main(["repro", "--root", str(tmp_path),
                            "--baseline", "none", "--step-summary"])
        assert rc == 1
        assert "FL-DET001" in summary.read_text()

    def test_list_rules(self, capsys):
        assert flowlint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("FL-DET", "FL-LIFE", "FL-WIRE", "FL-LOCK",
                       "FL-API"):
            assert family in out


# ----------------------------------------------------------------------
# meta: the committed tree itself
# ----------------------------------------------------------------------

class TestCommittedTree:
    def test_flowlint_clean_on_repo(self, capsys):
        """The committed tree passes its own analyzer (strict: stale
        baseline entries fail too, so the baseline only shrinks)."""
        rc = flowlint_main(["src", "tests", "tools",
                            "--root", str(REPO_ROOT), "--strict"])
        assert rc == 0, capsys.readouterr().out

    def test_baseline_entries_are_justified(self):
        data = json.loads(
            (REPO_ROOT / "tools/flowlint/baseline.json").read_text())
        assert data.get("version") == 1
        for entry in data["entries"]:
            assert entry.get("justification", "").strip(), entry
            assert "TODO" not in entry["justification"]

    def test_violation_is_caught_end_to_end(self, tmp_path, capsys):
        """Dropping a reduceat into a copy of the kernels package (and
        a pickle import into the service) must fail the lane."""
        kernels_dst = tmp_path / "repro/core/kernels"
        shutil.copytree(REPO_ROOT / "src/repro/core/kernels", kernels_dst)
        (kernels_dst / "evil.py").write_text(
            "import numpy as np\n\n"
            "def f(a, idx):\n"
            "    return np.add.reduceat(a, idx)\n")
        service_dst = tmp_path / "repro/service"
        service_dst.mkdir(parents=True)
        (service_dst / "evil.py").write_text("import pickle\n")
        rc = flowlint_main(["repro", "--root", str(tmp_path),
                            "--baseline", "none"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FL-DET001" in out and "FL-WIRE001" in out


@pytest.mark.skipif(shutil.which("mypy") is None,
                    reason="mypy not installed in this environment")
def test_mypy_ratchet_passes():
    ratchet = (REPO_ROOT / "tools/flowlint/mypy_ratchet.txt"
               ).read_text().split()
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *ratchet],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
