"""Fastpass arbiter: matching correctness and accounting."""

import numpy as np
import pytest

from repro.fastpass import (FastpassArbiter, measure_fastpass_throughput,
                            measure_flowtune_throughput)


class TestMatching:
    def test_single_demand_served(self):
        arbiter = FastpassArbiter(4)
        arbiter.add_demand(0, 1, 3)
        assert arbiter.allocate_timeslot() == [(0, 1)]
        assert arbiter.backlog == 2

    def test_matching_respects_endpoint_exclusivity(self):
        arbiter = FastpassArbiter(4)
        arbiter.add_demand(0, 1, 5)
        arbiter.add_demand(0, 2, 5)   # same source: conflicts
        arbiter.add_demand(3, 1, 5)   # same destination: conflicts
        matched = arbiter.allocate_timeslot()
        sources = [s for s, _ in matched]
        destinations = [d for _, d in matched]
        assert len(sources) == len(set(sources))
        assert len(destinations) == len(set(destinations))

    def test_matching_is_maximal(self):
        rng = np.random.default_rng(0)
        arbiter = FastpassArbiter(16)
        for _ in range(60):
            src, dst = rng.integers(16), rng.integers(15)
            if dst >= src:
                dst += 1
            arbiter.add_demand(int(src), int(dst), 2)
        matched = arbiter.allocate_timeslot()
        assert arbiter.is_maximal(matched)

    def test_demand_conservation(self):
        arbiter = FastpassArbiter(8)
        total = 0
        rng = np.random.default_rng(1)
        for _ in range(20):
            src, dst = rng.integers(8), rng.integers(7)
            if dst >= src:
                dst += 1
            arbiter.add_demand(int(src), int(dst), 4)
            total += 4
        allocated = arbiter.run_timeslots(200)
        assert allocated == total
        assert arbiter.backlog == 0

    def test_invalid_demands_rejected(self):
        arbiter = FastpassArbiter(4)
        with pytest.raises(ValueError):
            arbiter.add_demand(0, 0)
        with pytest.raises(ValueError):
            arbiter.add_demand(0, 9)
        with pytest.raises(ValueError):
            arbiter.add_demand(0, 1, 0)

    def test_operation_counting(self):
        arbiter = FastpassArbiter(4)
        arbiter.add_demand(0, 1, 2)
        arbiter.add_demand(2, 3, 2)
        arbiter.allocate_timeslot()
        assert arbiter.operations == 2


class TestThroughputComparison:
    @pytest.mark.slow
    def test_flowtune_beats_fastpass_per_core(self):
        # The §6.1 structural claim: flowlet-granularity allocation
        # sustains far more network throughput per core than
        # per-timeslot matching.  Measured at 128 hosts, where the
        # per-timeslot matching cost dominates fastpass while the
        # vectorized NED iterate barely notices — at 64 hosts the gap
        # narrows to ~1.8x and the 2x assertion becomes a coin toss on
        # a shared single-core host.  Best-of-repeats on both sides so
        # a scheduler burst in one 0.1s window can't flip the result.
        fastpass = max(measure_fastpass_throughput(
            n_hosts=128, n_pairs=512, min_seconds=0.1) for _ in range(3))
        flowtune = max(measure_flowtune_throughput(
            n_hosts=128, flows_per_host=8, min_seconds=0.1)
            for _ in range(3))
        assert flowtune > 2 * fastpass
