"""Sampling-mode invariants: detector, ECMP store, sampled wrapper.

The load-bearing property is the bitwise priced-subset identity: the
sampled wrapper's priced half, journaled and replayed into a fresh
:class:`FlowtuneAllocator`, must reproduce the priced rates bit for
bit over arbitrary interleavings of churn, usage reports, promotions,
demotions and capacity refreshes.  Around it sit the promotion edge
cases, detector boundedness, the scheduler-protocol conformance of
all three modes and the batched-ends atomicity of the ECMP store.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FlowtuneAllocator, LinkSet
from repro.sampling import (SCHEDULER_MODES, EcmpAssigner, EcmpScheduler,
                            ElephantDetector, SampledAllocator,
                            make_scheduler, replay_priced_journal)
from repro.topology import ThreeTierClos, TwoTierClos

N_LINKS = 6


def make_links():
    return LinkSet(np.full(N_LINKS, 10.0))


def run_churn_program(alloc, seed, steps, promote_bytes):
    """Drive ``alloc`` through a randomized churn/usage/iterate mix.

    Returns the merged result of a final iterate (so every program
    ends with fresh rates on both halves).
    """
    rng = np.random.default_rng(seed)
    active = []
    ended = []
    next_id = 0
    for _ in range(steps):
        op = rng.integers(4)
        if op == 0 or not active:  # start a batch of flows
            starts = []
            for _ in range(int(rng.integers(1, 4))):
                route = rng.choice(N_LINKS, size=int(rng.integers(1, 4)),
                                   replace=False)
                starts.append((next_id, route))
                active.append(next_id)
                next_id += 1
            alloc.apply_churn(starts=starts)
        elif op == 1:  # end some flows
            k = int(rng.integers(1, min(3, len(active)) + 1))
            idx = rng.choice(len(active), size=k, replace=False)
            ends = [active[i] for i in idx]
            for flow_id in ends:
                active.remove(flow_id)
            ended.extend(ends)
            alloc.apply_churn(ends=ends)
        elif op == 2:  # usage reports, sometimes enough to promote
            flow_id = active[int(rng.integers(len(active)))]
            nbytes = float(rng.uniform(0, 3 * promote_bytes))
            alloc.report_usage(flow_id, nbytes)
            if ended and rng.integers(2):  # late report for a dead flow
                alloc.report_usage(ended[-1], nbytes)
        else:
            alloc.iterate(1)
    return alloc.iterate(1)


class TestPricedSubsetIdentity:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), steps=st.integers(5, 40))
    def test_journal_replay_is_bitwise(self, seed, steps):
        """Replaying the priced journal into a fresh FlowtuneAllocator
        reproduces the sampled wrapper's priced rates bit for bit."""
        promote = 1000.0
        alloc = SampledAllocator(
            make_links(), promote_bytes=promote, idle_epochs=3,
            detector=ElephantDetector(promote_bytes=promote,
                                      idle_epochs=3, check_every=1),
            mice_refresh=2, record_priced=True)
        merged = run_churn_program(alloc, seed, steps, promote)
        replayed = replay_priced_journal(
            alloc.priced_journal,
            FlowtuneAllocator(make_links()))
        priced = merged._priced
        assert replayed is not None
        assert np.array_equal(replayed._ids, priced._ids)
        assert np.array_equal(np.asarray(replayed.rate_vector),
                              np.asarray(priced.rate_vector))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), steps=st.integers(5, 30))
    def test_membership_partition(self, seed, steps):
        """A live flow sits in exactly one store; detector state never
        outlives the live population."""
        promote = 1000.0
        alloc = SampledAllocator(make_links(), promote_bytes=promote,
                                 idle_epochs=3, mice_refresh=2)
        run_churn_program(alloc, seed, steps, promote)
        mice = set(alloc.mice.flow_index)
        priced = {fid for fid in alloc.priced.table._index_of
                  if fid not in alloc._pending_set}
        assert not mice & priced
        assert alloc.n_flows == len(mice) + len(priced)
        assert len(alloc.detector) <= alloc.n_flows


class TestPromotionEdges:
    def _one_flow(self, **kwargs):
        alloc = SampledAllocator(make_links(), mice_refresh=1, **kwargs)
        alloc.apply_churn(starts=[("f", np.array([0, 1]))])
        return alloc

    def test_exact_threshold_promotes(self):
        alloc = self._one_flow(promote_bytes=1000.0)
        alloc.report_usage("f", 999.0)
        alloc.iterate(1)
        assert alloc.n_priced == 0
        alloc.report_usage("f", 1000.0)  # accumulator hits exactly 1000
        alloc.iterate(1)
        assert alloc.n_priced == 1

    def test_demote_then_repromote_needs_fresh_bytes(self):
        alloc = self._one_flow(
            detector=ElephantDetector(promote_bytes=1000.0, idle_epochs=2,
                                      check_every=1))
        alloc.report_usage("f", 1500.0)
        alloc.iterate(1)
        assert alloc.n_priced == 1
        for _ in range(4):  # idle long enough for the scan to demote
            alloc.iterate(1)
        assert alloc.n_priced == 0 and alloc.n_flows == 1
        # Pre-demotion bytes are spent: 999 new bytes do not re-promote.
        alloc.report_usage("f", 2499.0)
        alloc.iterate(1)
        assert alloc.n_priced == 0
        alloc.report_usage("f", 2500.0)  # fresh accumulation reaches 1000
        alloc.iterate(1)
        assert alloc.n_priced == 1

    def test_usage_for_ended_flow_creates_no_state(self):
        alloc = self._one_flow(promote_bytes=1000.0)
        alloc.apply_churn(ends=["f"])
        alloc.report_usage("f", 5000.0)
        alloc.report_usage("ghost", 5000.0)
        assert len(alloc.detector) == 0
        alloc.iterate(1)
        assert alloc.n_priced == 0 and alloc.n_flows == 0

    def test_ended_elephant_restarts_as_mouse(self):
        alloc = self._one_flow(promote_bytes=1000.0)
        alloc.report_usage("f", 2000.0)
        alloc.iterate(1)
        assert alloc.n_priced == 1
        # End the elephant (deferred), restart the id in the same tick.
        alloc.apply_churn(ends=["f"], starts=[("f", np.array([2]))])
        assert "f" in alloc and alloc.n_priced == 0
        alloc.iterate(1)
        assert alloc.n_priced == 0 and alloc.mice.n_flows == 1
        # link_load flushes the deferred end before measuring.
        alloc.apply_churn(starts=[("g", np.array([3]))])
        result = alloc.iterate(1)
        load = alloc.link_load(result.rate_vector)
        assert load.shape == (N_LINKS,)


class TestSchedulerProtocol:
    @pytest.mark.parametrize("mode", SCHEDULER_MODES)
    def test_conformance(self, mode):
        alloc = make_scheduler(make_links(), mode=mode)
        alloc.apply_churn(starts=[(0, np.array([0, 1])),
                                  (1, np.array([1, 2]))])
        result = alloc.iterate(1)
        rates = np.asarray(result.rate_vector)
        assert len(rates) == alloc.n_flows == 2
        assert np.all(rates >= 0)
        load = alloc.link_load(rates)
        assert load.shape == (N_LINKS,)
        assert 0 in alloc and 2 not in alloc
        assert set(alloc.current_rates()) <= {0, 1}
        alloc.report_usage(0, 123.0)  # protocol no-op outside sampled
        alloc.apply_churn(ends=[0, 1])
        assert alloc.n_flows == 0
        assert alloc.wants_usage == (mode == "sampled")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler mode"):
            make_scheduler(make_links(), mode="pfabric")

    def test_ecmp_rejects_num_knobs(self):
        from repro.core import NedOptimizer
        with pytest.raises(ValueError, match="does not apply"):
            make_scheduler(make_links(), mode="ecmp",
                           optimizer_cls=NedOptimizer)


class TestEcmpAssigner:
    @pytest.mark.parametrize("topology", [
        TwoTierClos(n_racks=3, hosts_per_rack=4, n_spines=2),
        ThreeTierClos(n_pods=2, racks_per_pod=2, hosts_per_rack=2,
                      n_spines=2),
    ])
    def test_assignment_is_a_candidate_and_deterministic(self, topology):
        assigner = EcmpAssigner(topology)
        twin = EcmpAssigner(topology)
        for flow_id in (0, 7, "client-3:42", (1, 2)):
            route = assigner.assign(0, topology.n_hosts - 1, flow_id)
            candidates = assigner.candidates(0, topology.n_hosts - 1)
            assert any(np.array_equal(route, c) for c in candidates)
            assert np.array_equal(
                route, twin.assign(0, topology.n_hosts - 1, flow_id))

    def test_requires_candidate_enumeration(self):
        with pytest.raises(TypeError, match="candidate_routes"):
            EcmpAssigner(object())


class TestEcmpEndsAtomicity:
    def _store(self):
        store = EcmpScheduler(make_links())
        store.apply_churn(starts=[(i, np.array([i % N_LINKS]))
                                  for i in range(4)])
        return store

    def test_unknown_id_applies_nothing(self):
        store = self._store()
        with pytest.raises(KeyError, match="not active"):
            store.apply_churn(ends=[0, 1, 99])
        assert store.n_flows == 4
        assert all(i in store for i in range(4))

    def test_duplicate_id_applies_nothing(self):
        store = self._store()
        with pytest.raises(KeyError):
            store.apply_churn(ends=[0, 1, 0])
        assert store.n_flows == 4
        assert all(i in store for i in range(4))

    def test_notified_link_load_matches_active_scatter(self):
        store = self._store()
        result = store.iterate(1)
        expected = store.link_load(np.asarray(result.rate_vector))
        assert np.allclose(store.notified_link_load(), expected)
        store.apply_churn(ends=[1, 2])
        # Freed rows contribute nothing after their flows end.
        survivors = store.notified_link_load()
        assert survivors.sum() < expected.sum()


class TestCapacityCoupling:
    def test_elephants_yield_to_mice(self):
        """Promoted elephants must not keep the full link capacity once
        mice share their links."""
        alloc = SampledAllocator(make_links(), promote_bytes=100.0,
                                 mice_refresh=1)
        alloc.apply_churn(starts=[("e", np.array([0, 1]))])
        alloc.report_usage("e", 1e6)
        alloc.iterate(1)
        assert alloc.n_priced == 1
        # 30 mice pile onto link 0; within a few refreshes the priced
        # capacity shrinks below the physical one.
        alloc.apply_churn(starts=[(i, np.array([0])) for i in range(30)])
        for _ in range(10):
            alloc.iterate(1)
        assert alloc.priced.links.capacity[0] < alloc._priced_base[0]
        # The floor holds: elephants are squeezed, never zeroed.
        assert np.all(alloc.priced.links.capacity
                      >= 0.01 * alloc._priced_base - 1e-12)

    def test_legacy_two_arg_normalizer_rejected_at_construction(self):
        def legacy_norm(rates, table):  # pragma: no cover - never called
            return rates

        with pytest.raises(TypeError, match="link_load"):
            make_scheduler(make_links(), mode="sampled",
                           normalizer=legacy_norm)
