"""Workload distributions and the Poisson flowlet generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (WORKLOADS, EmpiricalSizeDistribution,
                             PoissonFlowletGenerator, cache_workload,
                             hadoop_workload, uniform_workload, web_workload)


class TestDistributions:
    def test_mean_ordering_matches_paper(self):
        # §6.2/§6.4: web has the smallest mean (most churn), hadoop the
        # largest (least update traffic).
        web = web_workload().mean_bytes
        cache = cache_workload().mean_bytes
        hadoop = hadoop_workload().mean_bytes
        assert web < cache < hadoop

    def test_sample_mean_matches_analytic(self):
        rng = np.random.default_rng(0)
        for factory in WORKLOADS.values():
            dist = factory()
            samples = dist.sample(rng, 100_000)
            assert np.mean(samples) == pytest.approx(dist.mean_bytes,
                                                     rel=0.05)

    def test_samples_within_support(self):
        rng = np.random.default_rng(1)
        dist = web_workload()
        samples = dist.sample(rng, 10_000)
        assert samples.min() >= dist.min_bytes * (1 - 1e-9)
        assert samples.max() <= dist.max_bytes * (1 + 1e-9)

    def test_quantile_inverts_cdf(self):
        dist = cache_workload()
        for q in (0.1, 0.5, 0.9):
            assert dist.cdf_at(dist.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_scalar_sample(self):
        value = web_workload().sample(np.random.default_rng(2))
        assert isinstance(value, float)

    def test_invalid_cdf_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution("bad", [(100, 0.0), (50, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution("bad", [(10, 0.2), (20, 1.0)])

    def test_uniform_workload_bounds(self):
        dist = uniform_workload(1000, 2000)
        rng = np.random.default_rng(3)
        samples = dist.sample(rng, 1000)
        assert samples.min() >= 1000 * (1 - 1e-9)
        assert samples.max() <= 2000 * (1 + 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(q=st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_monotone(self, q):
        dist = hadoop_workload()
        assert dist.quantile(q) <= dist.quantile(min(1.0, q + 0.05)) + 1e-9


class TestGenerator:
    def test_rate_targets_load(self):
        gen = PoissonFlowletGenerator(web_workload(), n_hosts=16, load=0.5,
                                      host_capacity_gbps=10.0, seed=0)
        expected = 0.5 * 10e9 / (web_workload().mean_bytes * 8)
        assert gen.per_host_rate == pytest.approx(expected)

    def test_empirical_arrival_rate(self):
        gen = PoissonFlowletGenerator(web_workload(), n_hosts=16, load=0.5,
                                      seed=42)
        arrivals = gen.arrivals_until(5e-3)
        expected = gen.aggregate_rate * 5e-3
        assert len(arrivals) == pytest.approx(expected, rel=0.2)

    def test_deterministic_for_seed(self):
        a = PoissonFlowletGenerator(web_workload(), 8, 0.4, seed=7)
        b = PoissonFlowletGenerator(web_workload(), 8, 0.4, seed=7)
        for _ in range(50):
            x, y = next(a), next(b)
            assert (x.time, x.src, x.dst, x.size_bytes) == \
                (y.time, y.src, y.dst, y.size_bytes)

    def test_src_differs_from_dst(self):
        gen = PoissonFlowletGenerator(web_workload(), 4, 0.5, seed=1)
        for _ in range(200):
            arrival = next(gen)
            assert arrival.src != arrival.dst
            assert 0 <= arrival.src < 4
            assert 0 <= arrival.dst < 4

    def test_flow_ids_increase(self):
        gen = PoissonFlowletGenerator(web_workload(), 4, 0.5, seed=1,
                                      first_flow_id=100)
        ids = [next(gen).flow_id for _ in range(10)]
        assert ids == list(range(100, 110))

    def test_peek_take_consistency(self):
        gen = PoissonFlowletGenerator(web_workload(), 4, 0.5, seed=2)
        peeked = gen.peek()
        assert gen.take() is peeked

    def test_arrivals_until_ordered(self):
        gen = PoissonFlowletGenerator(web_workload(), 8, 0.8, seed=3)
        arrivals = gen.arrivals_until(2e-3)
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(t <= 2e-3 for t in times)

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            PoissonFlowletGenerator(web_workload(), 8, 0.0)

    def test_needs_two_hosts(self):
        with pytest.raises(ValueError):
            PoissonFlowletGenerator(web_workload(), 1, 0.5)
