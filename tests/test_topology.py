"""Two-tier Clos construction, routing, and block partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import LinkKind, TwoTierClos, paper_topology
from repro.topology.graph import Topology


class TestConstruction:
    def test_paper_topology_dimensions(self):
        topo = paper_topology()
        assert topo.n_hosts == 144
        assert topo.n_links == 2 * 144 + 2 * 9 * 4
        assert topo.fabric_capacity == pytest.approx(40.0)

    def test_full_bisection_sizing(self):
        topo = TwoTierClos(n_racks=4, hosts_per_rack=8, n_spines=2,
                           host_capacity=10.0)
        assert topo.fabric_capacity == pytest.approx(40.0)

    def test_oversubscription(self):
        topo = TwoTierClos(n_racks=4, hosts_per_rack=8, n_spines=2,
                           host_capacity=10.0, oversubscription=2.0)
        assert topo.fabric_capacity == pytest.approx(20.0)

    def test_link_kind_layout(self):
        topo = TwoTierClos(n_racks=2, hosts_per_rack=2, n_spines=2)
        kinds = [spec.kind for spec in topo.links]
        assert kinds[:4] == [LinkKind.HOST_UP] * 4
        assert kinds[4:8] == [LinkKind.HOST_DOWN] * 4
        assert kinds[8:12] == [LinkKind.FABRIC_UP] * 4
        assert kinds[12:] == [LinkKind.FABRIC_DOWN] * 4

    def test_rtts_match_section_6_2(self):
        topo = paper_topology()
        assert topo.two_hop_rtt() == pytest.approx(14e-6)
        assert topo.four_hop_rtt() == pytest.approx(20e-6)

    def test_bisection_capacity(self):
        topo = TwoTierClos(n_racks=3, hosts_per_rack=8, n_spines=2)
        assert topo.bisection_capacity() == pytest.approx(240.0)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            TwoTierClos(n_racks=0)

    def test_link_set_matches_specs(self):
        topo = TwoTierClos(n_racks=2, hosts_per_rack=2, n_spines=2)
        links = topo.link_set()
        assert links.n_links == topo.n_links
        assert links.capacity[0] == pytest.approx(topo.host_capacity)


class TestRouting:
    def test_intra_rack_two_hops(self):
        topo = TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)
        route = topo.route(0, 1)
        assert len(route) == 2
        assert topo.links[route[0]].kind is LinkKind.HOST_UP
        assert topo.links[route[1]].kind is LinkKind.HOST_DOWN

    def test_cross_rack_four_hops(self):
        topo = TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)
        route = topo.route(0, 5)
        kinds = [topo.links[i].kind for i in route]
        assert kinds == [LinkKind.HOST_UP, LinkKind.FABRIC_UP,
                         LinkKind.FABRIC_DOWN, LinkKind.HOST_DOWN]

    def test_self_route_rejected(self):
        topo = TwoTierClos(n_racks=2, hosts_per_rack=2, n_spines=2)
        with pytest.raises(ValueError):
            topo.route(3, 3)

    def test_ecmp_is_deterministic_per_flow(self):
        topo = paper_topology()
        assert list(topo.route(0, 100, 42)) == list(topo.route(0, 100, 42))

    def test_ecmp_spreads_across_spines(self):
        topo = paper_topology()
        spines = {topo.spine_for(0, 100, fid) for fid in range(64)}
        assert len(spines) == topo.n_spines

    def test_route_connectivity(self):
        """Consecutive links in a route share the intermediate switch."""
        topo = TwoTierClos(n_racks=3, hosts_per_rack=4, n_spines=2)
        rng = np.random.default_rng(0)
        for _ in range(50):
            src = int(rng.integers(topo.n_hosts))
            dst = int(rng.integers(topo.n_hosts - 1))
            if dst >= src:
                dst += 1
            route = topo.route(src, dst, int(rng.integers(100)))
            specs = [topo.links[i] for i in route]
            assert specs[0].src == f"h{src}"
            assert specs[-1].dst == f"h{dst}"
            for a, b in zip(specs, specs[1:]):
                assert a.dst == b.src

    @settings(max_examples=40, deadline=None)
    @given(fid=st.integers(0, 10_000), src=st.integers(0, 143),
           offset=st.integers(1, 143))
    def test_route_valid_for_any_pair(self, fid, src, offset):
        topo = paper_topology()
        dst = (src + offset) % topo.n_hosts
        route = topo.route(src, dst, fid)
        assert len(route) in (2, 4)
        assert all(0 <= i < topo.n_links for i in route)

    def test_string_flow_ids_hash_stably(self):
        topo = paper_topology()
        assert topo.spine_for(0, 20, "flow-x") == topo.spine_for(0, 20, "flow-x")


class TestBlocks:
    def test_rack_blocks_partition(self):
        topo = TwoTierClos(n_racks=8, hosts_per_rack=2, n_spines=2)
        blocks = topo.rack_blocks(4)
        assert len(blocks) == 4
        assert sorted(np.concatenate(blocks)) == list(range(8))

    def test_uneven_blocks_rejected(self):
        topo = TwoTierClos(n_racks=9, hosts_per_rack=2, n_spines=2)
        with pytest.raises(ValueError):
            topo.rack_blocks(4)

    def test_up_down_blocks_are_disjoint_and_cover(self):
        topo = TwoTierClos(n_racks=4, hosts_per_rack=2, n_spines=2)
        blocks = topo.rack_blocks(2)
        up = np.concatenate([topo.upward_link_block(b) for b in blocks])
        down = np.concatenate([topo.downward_link_block(b) for b in blocks])
        assert len(set(up) & set(down)) == 0
        assert len(set(up) | set(down)) == topo.n_links

    def test_upward_block_kinds(self):
        topo = TwoTierClos(n_racks=4, hosts_per_rack=2, n_spines=2)
        block = topo.upward_link_block(topo.rack_blocks(2)[0])
        assert all(topo.links[i].is_upward for i in block)


class TestBaseClass:
    def test_route_abstract(self):
        with pytest.raises(NotImplementedError):
            Topology().route(0, 1)
