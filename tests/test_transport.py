"""Transport behaviours: reliability, window laws, per-scheme quirks."""

import pytest

from repro.sim import MSS_BYTES
from repro.sim.experiments import build_network


def run_single_flow(scheme, topology, size_bytes, **overrides):
    network = build_network(scheme, topology=topology, **overrides)
    flow = network.make_flow("f", 0, topology.n_hosts - 1, size_bytes)
    sender = network.start_flow(flow)
    network.sim.run()
    return network, flow, sender


class TestReliability:
    @pytest.mark.parametrize("scheme", ["tcp", "dctcp", "pfabric",
                                        "sfqcodel", "xcp", "flowtune"])
    def test_every_scheme_completes_a_flow(self, tiny_clos, scheme):
        _, flow, _ = run_single_flow(scheme, tiny_clos, 50 * MSS_BYTES)
        assert flow.finish_time is not None
        assert flow.bytes_delivered >= flow.size_bytes

    def test_recovers_from_heavy_loss(self, tiny_clos):
        """A 4-packet queue forces drops; TCP must still finish."""
        network = build_network("tcp", topology=tiny_clos,
                                queue_capacity_packets=4,
                                initial_cwnd=32.0)
        flows = [network.make_flow(i, i % 3, 3 + i % 4, 30 * MSS_BYTES)
                 for i in range(6)]
        for flow in flows:
            network.start_flow(flow)
        network.sim.run()
        dropped = network.total_dropped_bytes()
        assert dropped > 0, "scenario should actually drop"
        assert all(f.finish_time is not None for f in flows)

    def test_completion_frees_agent_slots(self, tiny_clos):
        network = build_network("tcp", topology=tiny_clos)
        flow = network.make_flow("f", 0, 1, 2000)
        network.start_flow(flow)
        network.sim.run()
        assert "f" not in network.hosts[0].senders
        assert "f" not in network.hosts[1].receivers

    def test_abort_stops_sending(self, tiny_clos):
        network = build_network("tcp", topology=tiny_clos)
        flow = network.make_flow("f", 0, 1, 10_000 * MSS_BYTES)
        sender = network.start_flow(flow)
        network.run_until(100e-6)
        sender.abort()
        remaining = network.sim.pending
        network.sim.run(max_events=200_000)
        assert sender.done
        assert network.sim.pending == 0


class TestTcpWindow:
    def test_slow_start_doubles_per_rtt(self, tiny_clos):
        network = build_network("tcp", topology=tiny_clos, initial_cwnd=2.0)
        flow = network.make_flow("f", 0, 1, 64 * MSS_BYTES)
        sender = network.start_flow(flow)
        network.run_until(3 * 14e-6)
        assert sender.cwnd >= 8.0

    def test_fct_close_to_ideal_on_empty_network(self, tiny_clos):
        _, flow, _ = run_single_flow("tcp", tiny_clos, 5 * MSS_BYTES,
                                     initial_cwnd=10.0)
        wire = (5 * (MSS_BYTES + 58)) * 8 / 10e9
        ideal = 11e-6 + wire  # one-way 4-hop + serialization
        assert flow.fct <= 3 * ideal


class TestDctcp:
    def test_alpha_decays_without_marks(self, tiny_clos):
        _, _, sender = run_single_flow("dctcp", tiny_clos, 80 * MSS_BYTES)
        assert sender.alpha < 1.0

    def test_backs_off_under_marking(self, tiny_clos):
        network = build_network("dctcp", topology=tiny_clos,
                                ecn_threshold_packets=4)
        flows = [network.make_flow(i, 1 + i, 0, 400 * MSS_BYTES)
                 for i in range(3)]
        senders = [network.start_flow(f) for f in flows]
        network.run_until(3e-3)
        # With K=4 and three competitors, windows must stay modest.
        assert all(s.done or s.cwnd < 64 for s in senders)
        drops = network.total_dropped_bytes()
        hot = network.links[tiny_clos.host_down_link(0)]
        assert hot.queue.stats.marked_packets > 0


class TestPFabric:
    def test_priority_is_remaining_size(self, tiny_clos):
        network = build_network("pfabric", topology=tiny_clos)
        flow = network.make_flow("f", 0, 1, 10 * MSS_BYTES)
        sender = network.start_flow(flow)
        assert sender._priority() == 10.0
        network.sim.run()
        assert sender._priority() == 0.0

    def test_short_flow_preempts_long(self, tiny_clos):
        network = build_network("pfabric", topology=tiny_clos)
        long_flow = network.make_flow("long", 1, 0, 2000 * MSS_BYTES)
        network.start_flow(long_flow)
        network.run_until(200e-6)
        short = network.make_flow("short", 2, 0, 5 * MSS_BYTES)
        network.start_flow(short)
        start = network.sim.now
        network.run_until(start + 2e-3)
        assert short.finish_time is not None
        # The short flow finishes near-ideal despite the elephant.
        assert short.finish_time - start < 150e-6

    def test_probe_mode_after_repeated_timeouts(self, tiny_clos):
        network = build_network("pfabric", topology=tiny_clos)
        flow = network.make_flow("f", 0, 1, 50 * MSS_BYTES)
        sender = network.start_flow(flow)
        sender.consecutive_timeouts = network.config.pfabric_probe_after
        assert sender.window() == 1.0


class TestXcp:
    def test_no_drops_on_shared_bottleneck(self, tiny_clos):
        network = build_network("xcp", topology=tiny_clos)
        flows = [network.make_flow(i, 1 + i, 0, 300 * MSS_BYTES)
                 for i in range(3)]
        for flow in flows:
            network.start_flow(flow)
        network.run_until(5e-3)
        assert network.total_dropped_bytes() == 0

    def test_cwnd_grows_from_feedback(self, tiny_clos):
        network = build_network("xcp", topology=tiny_clos)
        flow = network.make_flow("f", 0, 1, 600 * MSS_BYTES)
        sender = network.start_flow(flow)
        network.run_until(1.5e-3)
        assert sender.done or sender.cwnd > network.config.xcp_initial_cwnd


class TestCubic:
    def test_window_reduction_on_loss_uses_beta(self, tiny_clos):
        network = build_network("sfqcodel", topology=tiny_clos)
        flow = network.make_flow("f", 0, 1, 100 * MSS_BYTES)
        sender = network.start_flow(flow)
        network.run_until(50e-6)
        before = sender.cwnd = 20.0
        sender.on_loss()
        assert sender.cwnd == pytest.approx(
            before * network.config.cubic_beta)
