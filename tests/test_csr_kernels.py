"""CSR route-index kernels vs the padded-matrix reference, bitwise.

The NUM kernels (``price_sums`` / ``link_totals`` / ``link_totals2`` /
``max_link_value``) run on a derived, version-cached CSR view of the
padded route matrix.  These tests pin the contract that made that
rewrite safe:

* every kernel matches a straight padded-matrix reference **bitwise**
  (the reference reduces each row left-to-right, the order the CSR
  kernels guarantee; pads contribute +0.0 / the dropped pad bin /
  ``-inf``, all bitwise no-ops) — and it matches under **every
  available kernel tier** (``numpy``/``threads``/``compiled``), so
  the tiers are bitwise-interchangeable by transitivity;
* the index is maintained incrementally under arbitrary churn —
  batched adds/removes, swap-remove holes, hop-count mixing, storage
  regrowth, capacity refresh — and can never be observed stale,
  because every public mutator bumps ``version`` and the index is
  keyed on it.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (FlowTable, FlowtuneAllocator, LinkSet,
                        NedOptimizer)
from repro.core import kernels
from repro.core.normalization import FNormalizer, f_norm
from repro.topology import TwoTierClos


# ----------------------------------------------------------------------
# padded-matrix reference kernels (left-to-right per-row reduction)
# ----------------------------------------------------------------------
def ref_price_sums(table, prices):
    if table.n_flows == 0:
        return np.zeros(0)
    gathered = table.pad(prices)[table.routes]
    out = gathered[:, 0].copy()
    for hop in range(1, table.max_route_len):
        out += gathered[:, hop]
    return out


def ref_link_totals(table, per_flow):
    n_links = table.links.n_links
    if table.n_flows == 0:
        return np.zeros(n_links)
    weights = np.repeat(np.asarray(per_flow, dtype=np.float64),
                        table.max_route_len)
    return np.bincount(table.routes.reshape(-1), weights=weights,
                       minlength=n_links + 1)[:-1]


def ref_max_link_value(table, per_link):
    if table.n_flows == 0:
        return np.zeros(0)
    gathered = table.pad(per_link, pad_value=-np.inf)[table.routes]
    out = gathered[:, 0].copy()
    for hop in range(1, table.max_route_len):
        np.maximum(out, gathered[:, hop], out=out)
    return out


def available_tier_names():
    return tuple(name for name, ok
                 in sorted(kernels.available_tiers().items()) if ok)


def assert_kernels_match(table, rng):
    """All four kernels bitwise-equal their padded references, under
    every available tier — numpy == threads == compiled bitwise, by
    transitivity through the shared reference."""
    prices = rng.random(table.links.n_links)
    per_flow = rng.random(table.n_flows)
    per_link = rng.random(table.links.n_links)
    want_prices = ref_price_sums(table, prices)
    want_totals = ref_link_totals(table, per_flow)
    want_totals_b = ref_link_totals(table, 2.0 * per_flow)
    want_max = ref_max_link_value(table, per_link)
    for tier in available_tier_names():
        with kernels.use(tier):
            np.testing.assert_array_equal(
                table.price_sums(prices), want_prices, err_msg=tier)
            np.testing.assert_array_equal(
                table.link_totals(per_flow), want_totals, err_msg=tier)
            np.testing.assert_array_equal(
                table.max_link_value(per_link).copy(), want_max,
                err_msg=tier)
            totals_a, totals_b = table.link_totals2(per_flow,
                                                    2.0 * per_flow)
            np.testing.assert_array_equal(totals_a, want_totals,
                                          err_msg=tier)
            np.testing.assert_array_equal(totals_b, want_totals_b,
                                          err_msg=tier)


# ----------------------------------------------------------------------
# property: arbitrary churn programs keep CSR == padded, bitwise
# ----------------------------------------------------------------------
class TestCsrPaddedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_churn_programs(self, data):
        n_links = data.draw(st.integers(2, 10), label="n_links")
        max_len = data.draw(st.integers(1, 8), label="max_route_len")
        seed = data.draw(st.integers(0, 2**31), label="seed")
        rng = np.random.default_rng(seed)
        table = FlowTable(LinkSet(rng.random(n_links) * 10 + 0.1),
                          max_route_len=max_len)
        alive = []
        next_id = 0
        n_steps = data.draw(st.integers(1, 10), label="n_steps")
        for _ in range(n_steps):
            op = data.draw(st.sampled_from(
                ["batch", "add", "remove", "remove_many", "refresh",
                 "grow"]))
            if op == "batch":
                k = int(rng.integers(1, 30))
                starts = []
                for _ in range(k):
                    # Bias toward max-length routes so the widest slot
                    # (and W == max_route_len) is routinely exercised.
                    length = max_len if rng.random() < 0.4 else \
                        int(rng.integers(1, max_len + 1))
                    starts.append((next_id,
                                   rng.integers(0, n_links, length),
                                   float(rng.random() + 0.1)))
                    alive.append(next_id)
                    next_id += 1
                ends = []
                while alive[:-k] and rng.random() < 0.4:
                    ends.append(alive.pop(0))
                table.apply_churn(starts=starts, ends=ends)
            elif op == "add":
                length = int(rng.integers(1, max_len + 1))
                table.add_flow(next_id, rng.integers(0, n_links, length))
                alive.append(next_id)
                next_id += 1
            elif op == "remove" and alive:
                table.remove_flow(
                    alive.pop(int(rng.integers(len(alive)))))
            elif op == "remove_many" and alive:
                k = int(rng.integers(1, len(alive) + 1))
                victims = [alive.pop(int(rng.integers(len(alive))))
                           for _ in range(k)]
                table.remove_flows(victims)
            elif op == "refresh":
                table.links.capacity[:] = rng.random(n_links) * 10 + 0.1
                table.refresh_capacity()
            elif op == "grow":
                # Force at least one storage regrowth (full rebuild).
                table.reserve(len(table._weights) + 1)
            # Read between most mutations so the incremental sync path
            # (not just the final state) is what gets verified.
            if rng.random() < 0.8:
                assert_kernels_match(table, rng)
        assert_kernels_match(table, rng)

    def test_max_length_routes_only(self):
        rng = np.random.default_rng(7)
        table = FlowTable(LinkSet(np.full(12, 10.0)), max_route_len=8)
        table.apply_churn(starts=[
            (i, rng.integers(0, 12, 8)) for i in range(50)])
        assert_kernels_match(table, rng)
        table.remove_flows(list(range(0, 50, 3)))
        assert_kernels_match(table, rng)

    def test_mixed_hop_counts_under_swap_remove(self):
        """Swap-remove drags different-length tail rows into holes —
        the exact pattern that forces slot rewrites."""
        rng = np.random.default_rng(11)
        table = FlowTable(LinkSet(np.full(20, 10.0)), max_route_len=8)
        next_id = 0
        table.apply_churn(starts=[
            (next_id + i, rng.integers(0, 20, 2 if i % 2 else 4))
            for i in range(200)])
        next_id += 200
        assert_kernels_match(table, rng)
        for round_no in range(5):
            ends = [next_id - 200 + j for j in range(20)]
            starts = [(next_id + j,
                       rng.integers(0, 20, 4 if j % 3 else 2))
                      for j in range(20)]
            table.apply_churn(starts=starts, ends=ends)
            next_id += 20
            assert_kernels_match(table, rng)

    def test_empty_table_kernels_shapes(self):
        table = FlowTable(LinkSet(np.full(5, 1.0)))
        assert table.price_sums(np.zeros(5)).shape == (0,)
        assert table.max_link_value(np.zeros(5)).shape == (0,)
        totals_a, totals_b = table.link_totals2(np.array([]),
                                                np.array([]))
        assert totals_a.shape == (5,) and totals_b.shape == (5,)


# ----------------------------------------------------------------------
# staleness: mutation without a version bump must be impossible
# ----------------------------------------------------------------------
class TestCsrStaleness:
    def mutators(self, table, next_id):
        """(label, thunk) for every public route-mutating entry point."""
        return [
            ("add_flow", lambda: table.add_flow(next_id, [0, 1])),
            ("remove_flow", lambda: table.remove_flow(next_id)),
            ("apply_churn", lambda: table.apply_churn(
                starts=[(next_id + 1, [2]), (next_id + 2, [1, 0])])),
            ("remove_flows", lambda: table.remove_flows(
                [next_id + 1, next_id + 2])),
            ("refresh_capacity", lambda: table.refresh_capacity()),
        ]

    def test_every_public_mutator_bumps_version(self):
        rng = np.random.default_rng(3)
        table = FlowTable(LinkSet(np.full(4, 10.0)))
        table.apply_churn(starts=[(i, [i % 4]) for i in range(10)])
        for label, mutate in self.mutators(table, next_id=100):
            table.price_sums(np.zeros(4))  # cache the index
            before = table.version
            mutate()
            assert table.version > before, label
            # ...and the bumped version makes the fresh state visible.
            assert_kernels_match(table, rng)

    def test_index_is_cached_between_reads(self):
        """Same version -> no resync; bumped version -> resync."""
        table = FlowTable(LinkSet(np.full(4, 10.0)))
        table.apply_churn(starts=[(i, [i % 4, (i + 1) % 4])
                                  for i in range(8)])
        table.price_sums(np.zeros(4))
        assert table._csr_version == table.version
        synced_at = table._csr_version
        table.link_totals(np.ones(8))
        table.max_link_value(np.zeros(4))
        assert table._csr_version == synced_at  # untouched, no churn
        table.remove_flow(3)
        assert table._csr_version != table.version  # now stale...
        rng = np.random.default_rng(0)
        assert_kernels_match(table, rng)  # ...until the next read
        assert table._csr_version == table.version

    def test_change_log_consumers_do_not_race_the_index(self):
        """The socket fabric's opt-in change log and the CSR dirty log
        are independent: draining one must not starve the other."""
        rng = np.random.default_rng(5)
        table = FlowTable(LinkSet(np.full(6, 10.0)))
        table.start_change_log()
        table.apply_churn(starts=[(i, [i % 6]) for i in range(20)])
        table.price_sums(np.zeros(6))
        rows, all_changed = table.consume_changes()
        assert len(rows) == 20 and not all_changed
        table.apply_churn(ends=[0, 5], starts=[(100, [1, 2, 3])])
        rows, _ = table.consume_changes()
        assert len(rows) > 0
        assert_kernels_match(table, rng)


# ----------------------------------------------------------------------
# clone: one batched apply_churn, positionally identical
# ----------------------------------------------------------------------
class TestVectorizedClone:
    def populated(self, n=300, seed=9):
        rng = np.random.default_rng(seed)
        table = FlowTable(LinkSet(rng.random(10) * 10 + 0.5))
        table.apply_churn(starts=[
            (("flow", i), rng.integers(0, 10, int(rng.integers(1, 9))),
             float(rng.random() + 0.1)) for i in range(n)])
        # swap-remove churn so positional order differs from id order
        table.remove_flows([("flow", i) for i in range(0, n, 7)])
        return table

    def test_clone_matches_positionally(self):
        table = self.populated()
        copy = table.clone()
        assert copy.flow_ids() == table.flow_ids()
        np.testing.assert_array_equal(copy.routes, table.routes)
        np.testing.assert_array_equal(copy.weights, table.weights)
        np.testing.assert_array_equal(copy.bottleneck_capacity(),
                                      table.bottleneck_capacity())
        for flow_id in table.flow_ids():
            assert copy.index_of(flow_id) == table.index_of(flow_id)

    def test_clone_is_one_batch(self):
        table = self.populated(n=50)
        copy = table.clone()
        # a batched insert costs exactly one version bump
        assert copy.version == 1

    def test_clone_is_independent_and_empty_clone_works(self):
        table = self.populated(n=20)
        survivors = table.n_flows
        copy = table.clone()
        table.remove_flows(table.flow_ids())
        assert copy.n_flows == survivors and table.n_flows == 0
        assert FlowTable(LinkSet([1.0])).clone().n_flows == 0


# ----------------------------------------------------------------------
# link-load threading: optimizer -> allocator -> normalizer
# ----------------------------------------------------------------------
class TestLinkLoadThreading:
    def allocator(self, n_flows=200, seed=2):
        topology = TwoTierClos(n_racks=3, hosts_per_rack=8, n_spines=2)
        allocator = FlowtuneAllocator(topology.link_set())
        rng = np.random.default_rng(seed)
        starts = []
        for i in range(n_flows):
            src = int(rng.integers(topology.n_hosts))
            dst = int(rng.integers(topology.n_hosts - 1))
            dst += dst >= src
            starts.append((i, topology.route(src, dst, i)))
        allocator.apply_churn(starts=starts)
        return allocator

    def test_f_norm_with_precomputed_load_is_bitwise_equal(self):
        allocator = self.allocator()
        raw = allocator.optimizer.iterate(3)
        load = allocator.table.link_totals(raw)
        np.testing.assert_array_equal(
            f_norm(allocator.table, raw, link_load=load),
            f_norm(allocator.table, raw))

    def test_optimizer_memoizes_the_iterate_load(self):
        allocator = self.allocator()
        raw = allocator.optimizer.iterate(2)
        load = allocator.optimizer.link_load_for(raw)
        assert load is not None
        np.testing.assert_array_equal(load,
                                      allocator.table.link_totals(raw))
        # a different vector, or churn, invalidates the memo
        assert allocator.optimizer.link_load_for(raw.copy()) is None
        allocator.apply_churn(starts=[(10_000, [0, 1])])
        assert allocator.optimizer.link_load_for(raw) is None

    def test_allocator_iterate_unchanged_by_threading(self):
        """iterate() through the load-threading path must equal a
        manual optimize-then-normalize with no threading."""
        fast = self.allocator()
        slow = self.allocator()
        res = fast.iterate(2)
        raw = slow.optimizer.iterate(2)
        expected = f_norm(slow.table, raw)
        np.testing.assert_array_equal(
            np.asarray(res.rate_vector, dtype=np.float64), expected)

    def test_legacy_two_argument_normalizer_raises_type_error(self):
        """The 2-arg signature is gone: construction fails fast with a
        migration hint, for classes and plain functions alike."""
        class Legacy:
            name = "legacy"

            def __call__(self, table, rates):
                return np.asarray(rates, dtype=np.float64) * 0.5

        def legacy_fn(table, rates):
            return np.asarray(rates, dtype=np.float64) * 0.5

        topology = TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)
        for normalizer in (Legacy(), legacy_fn):
            with pytest.raises(TypeError, match="link_load"):
                FlowtuneAllocator(topology.link_set(),
                                  normalizer=normalizer)

    def test_link_load_normalizer_constructs_cleanly(self):
        topology = TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            allocator = FlowtuneAllocator(topology.link_set())
        allocator.flowlet_start(0, topology.route(0, 5, 0))
        assert len(allocator.iterate(1).rates) == 1

    def test_kwargs_normalizer_receives_the_load(self):
        received = {}

        class Spy(FNormalizer):
            def __call__(self, table, rates, **kwargs):
                received.update(kwargs)
                return super().__call__(table, rates, **kwargs)

        topology = TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)
        allocator = FlowtuneAllocator(topology.link_set(),
                                      normalizer=Spy())
        allocator.flowlet_start(0, topology.route(0, 5, 0))
        allocator.iterate(1)
        assert received.get("link_load") is not None


# ----------------------------------------------------------------------
# NED equivalence: fused pair scatter == the separate public kernels
# ----------------------------------------------------------------------
class TestFusedNedEquivalence:
    def test_update_prices_matches_separate_kernels(self):
        rng = np.random.default_rng(4)
        links = LinkSet(rng.random(12) * 10 + 1.0)
        starts = [(i, rng.integers(0, 12, int(1 + i % 4)))
                  for i in range(60)]
        table_a, table_b = FlowTable(links), FlowTable(links)
        for table in (table_a, table_b):
            table.apply_churn(starts=starts)
        ned = NedOptimizer(table_a)
        reference = NedOptimizer(table_b)
        for _ in range(5):
            rates = ned.iterate()
            # reference path: the pre-fusion formulation
            ref_rates = reference.rate_update()
            over = reference.over_allocation(ref_rates)
            hessian = reference.hessian_diagonal()
            carrying = hessian < 0.0
            step = np.divide(over, hessian,
                             out=np.zeros_like(reference.prices),
                             where=carrying)
            new_prices = np.where(
                carrying, reference.prices - reference.gamma * step,
                reference._idle_price)
            np.maximum(new_prices, 0.0, out=new_prices)
            reference.prices = new_prices
            np.testing.assert_array_equal(rates, ref_rates)
            np.testing.assert_array_equal(ned.prices, reference.prices)
