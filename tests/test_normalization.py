"""U-NORM / F-NORM (§4): feasibility invariants and paper formulas."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (FlowTable, LinkSet, FNormalizer, NullNormalizer,
                        UNormalizer, f_norm, link_ratios, u_norm)


def tandem_table():
    table = FlowTable(LinkSet([10.0, 5.0]))
    table.add_flow("both", [0, 1])
    table.add_flow("first", [0])
    return table


class TestFormulas:
    def test_link_ratios(self):
        table = tandem_table()
        ratios = link_ratios(table, np.array([4.0, 8.0]))
        assert np.allclose(ratios, [(4 + 8) / 10.0, 4 / 5.0])

    def test_u_norm_divides_by_worst_ratio(self):
        table = tandem_table()
        rates = np.array([10.0, 10.0])   # ratios: 2.0 and 2.0
        assert np.allclose(u_norm(table, rates), [5.0, 5.0])

    def test_u_norm_scales_up_when_under_allocated(self):
        table = tandem_table()
        rates = np.array([1.0, 1.0])     # worst ratio 0.2 -> scale by 5x
        normalized = u_norm(table, rates)
        assert np.allclose(normalized, [5.0, 5.0])

    def test_u_norm_scale_up_disabled(self):
        table = tandem_table()
        rates = np.array([1.0, 1.0])
        assert np.allclose(u_norm(table, rates, allow_scale_up=False), rates)

    def test_f_norm_per_flow_worst_link(self):
        table = tandem_table()
        rates = np.array([10.0, 10.0])
        # "both" sees ratios (2.0, 2.0) -> /2; "first" sees 2.0 -> /2.
        assert np.allclose(f_norm(table, rates), [5.0, 5.0])

    def test_f_norm_only_penalizes_congested_paths(self):
        table = FlowTable(LinkSet([10.0, 10.0]))
        table.add_flow("hot", [0])
        table.add_flow("cold", [1])
        rates = np.array([20.0, 5.0])
        normalized = f_norm(table, rates, allow_scale_up=False)
        assert normalized[table.index_of("hot")] == pytest.approx(10.0)
        assert normalized[table.index_of("cold")] == pytest.approx(5.0)

    def test_empty_rates_pass_through(self):
        table = FlowTable(LinkSet([10.0]))
        assert len(f_norm(table, np.array([]))) == 0
        assert len(u_norm(table, np.array([]))) == 0

    def test_null_normalizer_identity(self):
        table = tandem_table()
        rates = np.array([42.0, 1.0])
        assert np.allclose(NullNormalizer()(table, rates), rates)


class TestFeasibilityInvariant:
    """The §4 guarantee: normalized rates never exceed any capacity."""

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_f_norm_always_feasible(self, data):
        n_links = data.draw(st.integers(1, 6))
        capacities = data.draw(st.lists(
            st.floats(min_value=1.0, max_value=100.0),
            min_size=n_links, max_size=n_links))
        table = FlowTable(LinkSet(capacities), max_route_len=4)
        n_flows = data.draw(st.integers(1, 15))
        for i in range(n_flows):
            length = data.draw(st.integers(1, min(4, n_links)))
            route = data.draw(st.lists(st.integers(0, n_links - 1),
                                       min_size=length, max_size=length,
                                       unique=True))
            table.add_flow(i, route)
        rates = np.array(data.draw(st.lists(
            st.floats(min_value=0.0, max_value=1000.0),
            min_size=n_flows, max_size=n_flows)))
        if rates.sum() == 0:
            return
        for normalized in (f_norm(table, rates), u_norm(table, rates)):
            load = table.link_totals(normalized)
            assert np.all(load <= table.links.capacity * (1 + 1e-9))

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_f_norm_dominates_u_norm_throughput(self, seed):
        """F-NORM never yields less total throughput than U-NORM.

        Each flow's F-NORM divisor (its own worst ratio) is at most the
        global worst ratio U-NORM divides everything by.
        """
        rng = np.random.default_rng(seed)
        n_links = int(rng.integers(2, 6))
        table = FlowTable(LinkSet(rng.uniform(2, 50, n_links)))
        n_flows = int(rng.integers(2, 12))
        for i in range(n_flows):
            length = int(rng.integers(1, min(4, n_links) + 1))
            table.add_flow(i, rng.choice(n_links, length, replace=False))
        rates = rng.uniform(0.1, 30.0, n_flows)
        f_total = f_norm(table, rates).sum()
        u_total = u_norm(table, rates).sum()
        assert f_total >= u_total - 1e-9


class TestNormalizerObjects:
    def test_names(self):
        assert UNormalizer().name == "U-NORM"
        assert FNormalizer().name == "F-NORM"
        assert NullNormalizer().name == "none"

    def test_callable_protocol(self):
        table = tandem_table()
        rates = np.array([10.0, 10.0])
        assert np.allclose(FNormalizer()(table, rates),
                           f_norm(table, rates))
