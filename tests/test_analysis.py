"""Analysis metrics: FCT bins, fairness scores, convergence detection."""

import numpy as np
import pytest

from repro.analysis import (SIZE_BINS, bin_of, convergence_time,
                            fair_share_profile, fairness_score, format_series,
                            format_table, ideal_fct, jain_index, p99_by_bin,
                            relative_fairness, speedup_by_bin)


class TestBins:
    def test_bin_boundaries(self):
        assert bin_of(1) == "1 packet"
        assert bin_of(2) == "1-10 packets"
        assert bin_of(10) == "1-10 packets"
        assert bin_of(11) == "10-100 packets"
        assert bin_of(1000) == "100-1000 packets"
        assert bin_of(10_000) == "large"

    def test_bins_cover_all_positive_counts(self):
        for n in (1, 5, 50, 500, 5000, 10 ** 7):
            assert bin_of(n) in {label for label, _, _ in SIZE_BINS}

    def test_unbinnable_rejected(self):
        with pytest.raises(ValueError):
            bin_of(0)


class TestIdealFct:
    def test_dominated_by_delay_for_tiny_flows(self):
        fct = ideal_fct(100, one_way_delay=7e-6, bottleneck_gbps=10)
        assert fct == pytest.approx(7e-6 + (100 + 58) * 8 / 10e9)

    def test_dominated_by_serialization_for_big_flows(self):
        fct = ideal_fct(15_000_000, 7e-6, 10)
        assert fct > 0.011  # ~12 ms of wire time


class TestPercentiles:
    def test_p99_by_bin_requires_min_population(self):
        normalized = {i: ("1 packet", 1.0) for i in range(4)}
        assert p99_by_bin(normalized) == {}
        normalized[4] = ("1 packet", 1.0)
        assert p99_by_bin(normalized)["1 packet"] == pytest.approx(1.0)

    def test_speedup_uses_common_flows_only(self):
        scheme = {i: ("1 packet", 10.0) for i in range(10)}
        flowtune = {i: ("1 packet", 2.0) for i in range(5, 15)}
        speedups = speedup_by_bin(scheme, flowtune)
        assert speedups["1 packet"] == pytest.approx(5.0)

    def test_speedup_empty_when_disjoint(self):
        assert speedup_by_bin({1: ("1 packet", 1.0)},
                              {2: ("1 packet", 1.0)}) == {}


class TestFairness:
    def test_score_is_sum_log2(self):
        assert fairness_score({"a": 2.0, "b": 4.0}) == pytest.approx(3.0)

    def test_relative_fairness_sign(self):
        flowtune = {"a": 4.0, "b": 4.0}
        starved = {"a": 8.0, "b": 1.0}  # unfair: one flow starved
        gap = relative_fairness(starved, flowtune)
        assert gap == pytest.approx((np.log2(8) - np.log2(4)
                                     + np.log2(1) - np.log2(4)) / 2)
        assert gap < 0

    def test_jain_index_extremes(self):
        assert jain_index({"a": 5.0, "b": 5.0}) == pytest.approx(1.0)
        skewed = jain_index({"a": 10.0, "b": 1e-9})
        assert skewed == pytest.approx(0.5, rel=0.01)


class TestConvergence:
    def test_detects_step_response(self):
        times = np.arange(0, 1e-3, 10e-6)
        series = np.where(times < 300e-6, 0.0, 5.0)
        t = convergence_time(times, series, event_time=0.0, target=5.0,
                             tolerance=0.1)
        assert t == pytest.approx(300e-6, abs=11e-6)

    def test_never_converges(self):
        times = np.arange(0, 1e-3, 10e-6)
        series = np.zeros_like(times)
        assert convergence_time(times, series, 0.0, 5.0) == float("inf")

    def test_requires_hold(self):
        times = np.arange(0, 1e-3, 10e-6)
        series = np.where((times > 100e-6) & (times < 150e-6), 5.0, 0.0)
        t = convergence_time(times, series, 0.0, 5.0, hold=500e-6)
        assert t == float("inf")

    def test_fair_share_profile(self):
        shares = fair_share_profile([0, 1, 2, 4], 10.0)
        assert np.allclose(shares, [0.0, 10.0, 5.0, 2.5])


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_series(self):
        text = format_series("s", [(1, 2.0)], "load", "frac")
        assert "load" in text and "2" in text
