"""Three-tier Clos (§7 "Scaling to larger networks")."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FlowTable, NedOptimizer, solve_to_optimal
from repro.topology import LinkKind, ThreeTierClos


def small_fabric():
    return ThreeTierClos(n_pods=2, racks_per_pod=2, hosts_per_rack=4,
                         n_spines=2, n_core=2)


class TestConstruction:
    def test_dimensions(self):
        topo = small_fabric()
        assert topo.n_hosts == 16
        assert topo.n_pods == 2
        # hosts up/down + tor-spine up/down + spine-core up/down
        expected = 2 * 16 + 2 * 4 * 2 + 2 * 2 * 2 * 1
        assert topo.n_links == expected

    def test_needs_two_pods(self):
        with pytest.raises(ValueError):
            ThreeTierClos(n_pods=1)

    def test_core_multiple_of_spines(self):
        with pytest.raises(ValueError):
            ThreeTierClos(n_pods=2, n_spines=2, n_core=3)

    def test_capacity_sizing(self):
        topo = ThreeTierClos(n_pods=2, racks_per_pod=2, hosts_per_rack=4,
                             n_spines=2, n_core=2, host_capacity=10.0)
        assert topo.fabric_capacity == pytest.approx(20.0)
        # 2 racks x 20G into each pod spine over 1 core link
        assert topo.core_capacity == pytest.approx(40.0)


class TestRouting:
    def test_intra_rack_two_hops(self):
        topo = small_fabric()
        assert len(topo.route(0, 1)) == 2

    def test_intra_pod_four_hops(self):
        topo = small_fabric()
        route = topo.route(0, 5)  # racks 0 and 1, same pod
        assert len(route) == 4

    def test_cross_pod_six_hops(self):
        topo = small_fabric()
        route = topo.route(0, 12)  # pod 0 -> pod 1
        kinds = [topo.links[i].kind for i in route]
        assert len(route) == 6
        assert kinds[0] is LinkKind.HOST_UP
        assert kinds[-1] is LinkKind.HOST_DOWN
        assert kinds[2] is LinkKind.FABRIC_UP    # pod spine -> core
        assert kinds[3] is LinkKind.FABRIC_DOWN  # core -> pod spine

    def test_route_connectivity(self):
        topo = small_fabric()
        rng = np.random.default_rng(0)
        for _ in range(60):
            src = int(rng.integers(topo.n_hosts))
            dst = int(rng.integers(topo.n_hosts - 1))
            if dst >= src:
                dst += 1
            specs = [topo.links[i] for i in topo.route(src, dst, 3)]
            assert specs[0].src == f"h{src}"
            assert specs[-1].dst == f"h{dst}"
            for a, b in zip(specs, specs[1:]):
                assert a.dst == b.src

    @settings(max_examples=30, deadline=None)
    @given(fid=st.integers(0, 10_000))
    def test_ecmp_deterministic(self, fid):
        topo = small_fabric()
        assert list(topo.route(0, 12, fid)) == list(topo.route(0, 12, fid))

    def test_six_hop_rtt(self):
        topo = small_fabric()
        assert topo.six_hop_rtt() == pytest.approx(2 * (6 * 1.5e-6 + 4e-6))


class TestNumOnThreeTier:
    def test_ned_solves_cross_pod_contention(self):
        """The NUM core is topology-agnostic: NED must allocate a
        shared core link fairly across pods."""
        topo = ThreeTierClos(n_pods=2, racks_per_pod=1, hosts_per_rack=4,
                             n_spines=1, n_core=1, core_capacity=10.0)
        table = FlowTable(topo.link_set())
        # Two cross-pod flows sharing the single core link.
        table.add_flow("a", topo.route(0, 4, 1))
        table.add_flow("b", topo.route(1, 5, 1))
        rates = NedOptimizer(table).iterate(400)
        assert rates.sum() == pytest.approx(10.0, rel=1e-3)
        assert rates[0] == pytest.approx(rates[1], rel=1e-3)

    def test_solve_to_optimal_feasible(self):
        topo = small_fabric()
        table = FlowTable(topo.link_set())
        rng = np.random.default_rng(1)
        for i in range(30):
            src = int(rng.integers(topo.n_hosts))
            dst = int(rng.integers(topo.n_hosts - 1))
            if dst >= src:
                dst += 1
            table.add_flow(i, topo.route(src, dst, i))
        rates, _ = solve_to_optimal(table, tol=1e-6)
        load = table.link_totals(rates)
        assert np.all(load <= table.links.capacity * (1 + 1e-5))


class TestPodCoupling:
    def test_coupling_fraction_in_unit_interval(self):
        coupling = small_fabric().pod_block_coupling()
        assert 0 < coupling < 1

    def test_more_core_links_increase_coupling(self):
        low = ThreeTierClos(n_pods=2, racks_per_pod=4, hosts_per_rack=8,
                            n_spines=2, n_core=2).pod_block_coupling()
        high = ThreeTierClos(n_pods=2, racks_per_pod=4, hosts_per_rack=8,
                             n_spines=2, n_core=8).pod_block_coupling()
        assert high > low
