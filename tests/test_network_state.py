"""FlowTable: churn bookkeeping and the vectorized NUM kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FlowTable, LinkSet


def make_table(n_links=6, max_route_len=4):
    return FlowTable(LinkSet(np.full(n_links, 10.0)),
                     max_route_len=max_route_len)


class TestChurn:
    def test_add_assigns_dense_indices(self):
        table = make_table()
        assert table.add_flow("a", [0, 1]) == 0
        assert table.add_flow("b", [2]) == 1
        assert table.n_flows == 2

    def test_duplicate_id_rejected(self):
        table = make_table()
        table.add_flow("a", [0])
        with pytest.raises(KeyError):
            table.add_flow("a", [1])

    def test_empty_route_rejected(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.add_flow("a", [])

    def test_unknown_link_rejected(self):
        table = make_table(n_links=3)
        with pytest.raises(ValueError):
            table.add_flow("a", [7])

    def test_route_longer_than_max_rejected(self):
        table = make_table(max_route_len=2)
        with pytest.raises(ValueError):
            table.add_flow("a", [0, 1, 2])

    def test_nonpositive_weight_rejected(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.add_flow("a", [0], weight=0.0)

    def test_swap_remove_keeps_remaining_flows_intact(self):
        table = make_table()
        table.add_flow("a", [0, 1])
        table.add_flow("b", [2, 3])
        table.add_flow("c", [4])
        table.remove_flow("a")
        assert set(table.flow_ids()) == {"b", "c"}
        assert list(table.route_of("b")) == [2, 3]
        assert list(table.route_of("c")) == [4]

    def test_remove_unknown_raises(self):
        table = make_table()
        with pytest.raises(KeyError):
            table.remove_flow("ghost")

    def test_version_increments_on_churn(self):
        table = make_table()
        v0 = table.version
        table.add_flow("a", [0])
        table.remove_flow("a")
        assert table.version == v0 + 2

    def test_growth_beyond_initial_capacity(self):
        table = make_table(n_links=4)
        for i in range(300):
            table.add_flow(i, [i % 4])
        assert table.n_flows == 300
        assert list(table.route_of(250)) == [250 % 4]

    def test_clone_is_independent(self):
        table = make_table()
        table.add_flow("a", [0, 1], weight=2.0)
        copy = table.clone()
        table.remove_flow("a")
        assert "a" in copy
        assert list(copy.route_of("a")) == [0, 1]
        assert copy.weights[copy.index_of("a")] == 2.0


class TestBatchChurn:
    def test_apply_churn_adds_and_removes(self):
        table = make_table()
        table.add_flow("a", [0])
        table.add_flow("b", [1])
        table.apply_churn(starts=[("c", [2]), ("d", [3], 2.0)],
                          ends=["a"])
        assert set(table.flow_ids()) == {"b", "c", "d"}
        assert table.weights[table.index_of("d")] == 2.0
        assert list(table.route_of("c")) == [2]

    def test_apply_churn_one_version_bump_per_add_batch(self):
        table = make_table()
        v0 = table.version
        table.apply_churn(starts=[(i, [0]) for i in range(10)])
        assert table.version == v0 + 1

    def test_apply_churn_duplicate_in_batch_rejected(self):
        table = make_table()
        with pytest.raises(KeyError):
            table.apply_churn(starts=[("a", [0]), ("a", [1])])

    def test_apply_churn_duplicate_of_active_rejected(self):
        table = make_table()
        table.add_flow("a", [0])
        with pytest.raises(KeyError):
            table.apply_churn(starts=[("a", [1])])

    def test_apply_churn_validates_before_inserting(self):
        table = make_table(n_links=3)
        table.add_flow("old", [0])
        with pytest.raises(ValueError):
            table.apply_churn(starts=[("x", [1]), ("y", [7])],
                              ends=["old"])
        # ends applied, no start applied — the batch was rejected whole.
        assert table.flow_ids() == []

    def test_apply_churn_rejects_bad_routes_and_weights(self):
        table = make_table(max_route_len=2)
        with pytest.raises(ValueError):
            table.apply_churn(starts=[("a", [])])
        with pytest.raises(ValueError):
            table.apply_churn(starts=[("a", [0, 1, 2])])
        with pytest.raises(ValueError):
            table.apply_churn(starts=[("a", [0], -1.0)])
        assert table.n_flows == 0

    def test_apply_churn_grows_past_capacity(self):
        table = make_table(n_links=4)
        table.apply_churn(starts=[(i, [i % 4]) for i in range(300)])
        assert table.n_flows == 300
        assert list(table.route_of(250)) == [250 % 4]
        assert np.allclose(table.bottleneck_capacity(), 10.0)

    def test_batch_bottleneck_matches_incremental(self):
        links = LinkSet([10.0, 4.0, 40.0])
        batched = FlowTable(links)
        single = FlowTable(links)
        routes = [[0, 1], [2], [0, 2], [1, 2]]
        batched.apply_churn(starts=[(i, r) for i, r in enumerate(routes)])
        for i, r in enumerate(routes):
            single.add_flow(i, r)
        assert np.array_equal(batched.bottleneck_capacity(),
                              single.bottleneck_capacity())


class TestBatchRemove:
    """remove_flows: the vectorized mirror of the batched add."""

    def populated_pair(self, n, seed):
        """Two identically-populated tables with a tracking column."""
        rng = np.random.default_rng(seed)
        routes = [list(rng.integers(0, 6, size=rng.integers(1, 5)))
                  for _ in range(n)]
        tables, columns = [], []
        for _ in range(2):
            table = make_table()
            column = table.add_column(default=-1.0)
            for i, route in enumerate(routes):
                table.add_flow(i, route, weight=1.0 + i)
                column.data[table.index_of(i)] = float(i)
            tables.append(table)
            columns.append(column)
        return tables, columns

    def test_batch_matches_sequential_positionally(self):
        """The batched path must land in exactly the layout sequential
        swap-removes produce — flow ids, routes, weights and columns."""
        rng = np.random.default_rng(42)
        for seed in range(30):
            (batched, sequential), (col_b, col_s) = \
                self.populated_pair(int(rng.integers(1, 50)), seed)
            ids = [int(i) for i in rng.choice(
                batched.n_flows, size=int(rng.integers(0, batched.n_flows + 1)),
                replace=False)]
            batched.remove_flows(ids)
            for flow_id in ids:
                sequential.remove_flow(flow_id)
            assert batched.flow_ids() == sequential.flow_ids()
            assert np.array_equal(batched.routes, sequential.routes)
            assert np.array_equal(batched.weights, sequential.weights)
            assert np.array_equal(col_b.data, col_s.data)
            assert np.array_equal(batched.bottleneck_capacity(),
                                  sequential.bottleneck_capacity())

    def test_one_version_bump_per_batch(self):
        table = make_table()
        table.apply_churn(starts=[(i, [0]) for i in range(10)])
        v0 = table.version
        table.remove_flows(range(6))
        assert table.version == v0 + 1
        assert table.n_flows == 4

    def test_empty_batch_is_noop(self):
        table = make_table()
        table.add_flow("a", [0])
        v0 = table.version
        table.remove_flows([])
        assert table.version == v0 and table.n_flows == 1

    def test_unknown_id_rejected_atomically(self):
        table = make_table()
        table.apply_churn(starts=[(i, [0]) for i in range(5)])
        v0 = table.version
        with pytest.raises(KeyError):
            table.remove_flows([0, 1, "ghost"])
        assert table.n_flows == 5 and table.version == v0
        assert 0 in table and 1 in table

    def test_duplicate_id_rejected_atomically(self):
        table = make_table()
        table.apply_churn(starts=[(i, [0]) for i in range(5)])
        v0 = table.version
        with pytest.raises(KeyError):
            table.remove_flows([2, 2])
        assert table.n_flows == 5 and table.version == v0

    def test_remove_everything(self):
        table = make_table()
        column = table.add_column(default=3.0)
        table.apply_churn(starts=[(i, [i % 6]) for i in range(20)])
        table.remove_flows(range(20))
        assert table.n_flows == 0
        assert table.flow_ids() == []
        table.add_flow("new", [0])
        assert column.data[0] == 3.0

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_batch_equals_sequential(self, seed):
        rng = np.random.default_rng(seed)
        (batched, sequential), (col_b, col_s) = \
            self.populated_pair(int(rng.integers(1, 40)), seed)
        ids = [int(i) for i in rng.permutation(batched.n_flows)[
            : int(rng.integers(0, batched.n_flows + 1))]]
        batched.remove_flows(ids)
        for flow_id in ids:
            sequential.remove_flow(flow_id)
        assert batched.flow_ids() == sequential.flow_ids()
        assert np.array_equal(col_b.data, col_s.data)


class TestFlowColumns:
    def test_column_tracks_default_and_swap_remove(self):
        table = make_table()
        column = table.add_column(default=-1.0)
        table.add_flow("a", [0])
        table.add_flow("b", [1])
        table.add_flow("c", [2])
        column.data[:] = [10.0, 20.0, 30.0]
        table.remove_flow("a")        # "c" swaps into slot 0
        assert column.data[table.index_of("c")] == 30.0
        assert column.data[table.index_of("b")] == 20.0
        table.add_flow("d", [3])
        assert column.data[table.index_of("d")] == -1.0

    def test_column_survives_growth(self):
        table = make_table(n_links=4)
        column = table.add_column(default=0.0)
        for i in range(10):
            table.add_flow(i, [i % 4])
        column.data[:] = np.arange(10.0)
        for i in range(10, 200):      # force several _grow() cycles
            table.add_flow(i, [i % 4])
        assert np.array_equal(column.data[:10], np.arange(10.0))
        assert np.all(column.data[10:] == 0.0)

    def test_column_reset_by_batch_add(self):
        table = make_table()
        column = table.add_column(default=7.0, dtype=np.float64)
        table.apply_churn(starts=[("a", [0]), ("b", [1])])
        assert np.all(column.data == 7.0)

    def test_bottleneck_refresh_after_capacity_change(self):
        links = LinkSet([10.0, 4.0])
        table = FlowTable(links)
        table.add_flow("a", [0, 1])
        assert table.bottleneck_capacity()[0] == 4.0
        links.capacity[1] = 20.0
        v0 = table.version
        table.refresh_capacity()
        assert table.version == v0 + 1
        assert table.bottleneck_capacity()[0] == 10.0


class TestKernels:
    def test_price_sums_sum_along_routes(self):
        table = make_table()
        table.add_flow("a", [0, 2])
        table.add_flow("b", [2])
        prices = np.array([1.0, 10.0, 5.0, 0.0, 0.0, 0.0])
        assert np.allclose(table.price_sums(prices), [6.0, 5.0])

    def test_link_totals_scatter(self):
        table = make_table()
        table.add_flow("a", [0, 2])
        table.add_flow("b", [2])
        totals = table.link_totals(np.array([3.0, 4.0]))
        assert np.allclose(totals, [3.0, 0.0, 7.0, 0.0, 0.0, 0.0])

    def test_max_link_value_ignores_padding(self):
        table = make_table()
        table.add_flow("a", [1])
        per_link = np.array([9.0, -5.0, 0.0, 0.0, 0.0, 0.0])
        assert table.max_link_value(per_link)[0] == -5.0

    def test_bottleneck_capacity_is_min_along_route(self):
        table = FlowTable(LinkSet([10.0, 4.0, 40.0]))
        table.add_flow("a", [0, 1, 2])
        table.add_flow("b", [2])
        assert np.allclose(table.bottleneck_capacity(), [4.0, 40.0])

    def test_empty_table_kernels(self):
        table = make_table()
        assert table.link_totals(np.array([])).shape == (6,)
        assert len(table.price_sums(np.zeros(6))) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_link_totals_matches_bruteforce(self, data):
        n_links = data.draw(st.integers(2, 8))
        table = FlowTable(LinkSet(np.full(n_links, 10.0)), max_route_len=4)
        n_flows = data.draw(st.integers(0, 20))
        routes = []
        for i in range(n_flows):
            length = data.draw(st.integers(1, min(4, n_links)))
            route = data.draw(st.lists(
                st.integers(0, n_links - 1), min_size=length,
                max_size=length, unique=True))
            table.add_flow(i, route)
            routes.append(route)
        values = np.arange(1.0, n_flows + 1.0)
        expected = np.zeros(n_links)
        for route, value in zip(routes, values):
            for link in route:
                expected[link] += value
        assert np.allclose(table.link_totals(values), expected)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000), removals=st.integers(0, 10))
    def test_ids_consistent_under_random_churn(self, seed, removals):
        rng = np.random.default_rng(seed)
        table = make_table()
        alive = set()
        for i in range(20):
            table.add_flow(i, [int(rng.integers(6))])
            alive.add(i)
        for _ in range(removals):
            victim = int(rng.choice(sorted(alive)))
            table.remove_flow(victim)
            alive.discard(victim)
        assert set(table.flow_ids()) == alive
        for flow_id in alive:
            idx = table.index_of(flow_id)
            assert table.flow_ids()[idx] == flow_id


class TestFlowIdArray:
    """The positionally-cached id column behind ``flow_id_array``."""

    def test_view_is_aligned_and_read_only(self):
        table = make_table()
        for name in ("a", "b", "c"):
            table.add_flow(name, [0])
        ids = table.flow_id_array()
        assert ids.tolist() == ["a", "b", "c"]
        with pytest.raises(ValueError):
            ids[0] = "x"

    def test_view_is_o1_not_a_copy(self):
        table = make_table()
        table.add_flow("a", [0])
        assert table.flow_id_array().base is table._ids

    def test_swap_remove_keeps_array_and_list_in_lockstep(self):
        rng = np.random.default_rng(3)
        table = make_table()
        alive = []
        for i in range(40):
            table.add_flow(i, [int(rng.integers(6))])
            alive.append(i)
        for _ in range(25):
            victim = alive.pop(int(rng.integers(len(alive))))
            table.remove_flow(victim)
            assert table.flow_id_array().tolist() == table.flow_ids()
            for pos, flow_id in enumerate(table.flow_id_array()):
                assert table.index_of(flow_id) == pos

    def test_batched_churn_with_tuple_ids(self):
        """Tuple ids are the broadcast trap: numpy must store them as
        objects, not try to treat the batch as a 2-D assignment."""
        table = make_table()
        starts = [(("f", i), [i % 6]) for i in range(10)]
        table.apply_churn(starts=starts)
        assert table.flow_id_array().tolist() == [("f", i)
                                                 for i in range(10)]
        table.apply_churn(ends=[("f", 0), ("f", 5)],
                          starts=[(("f", 99), [1])])
        assert set(table.flow_id_array().tolist()) == \
            {("f", i) for i in (1, 2, 3, 4, 6, 7, 8, 9, 99)}
        assert table.flow_id_array().tolist() == table.flow_ids()

    def test_batched_remove_matches_sequential(self):
        batched, sequential = make_table(), make_table()
        for t in (batched, sequential):
            for i in range(20):
                t.add_flow(i, [i % 6])
        victims = [0, 7, 19, 3, 11]
        batched.remove_flows(victims)
        for victim in victims:
            sequential.remove_flow(victim)
        assert batched.flow_id_array().tolist() == \
            sequential.flow_id_array().tolist()

    def test_grow_preserves_the_id_column(self):
        table = make_table()
        for i in range(200):  # far past _INITIAL_CAPACITY
            table.add_flow(i, [i % 6])
        assert table.flow_id_array().tolist() == list(range(200))
