"""Queue disciplines: DropTail, ECN, pFabric, sfqCoDel, XCP controller."""

import pytest

from repro.sim import (CoDelState, DropTailQueue, EcnQueue, PFabricQueue,
                       Packet, SfqCoDelQueue, SimFlow, XcpController)


def data_packet(seq=0, priority=0.0, flow_id=1, size=1500):
    flow = SimFlow(flow_id, 0, 1, 15000, 0.0)
    pkt = Packet(flow, seq, size, Packet.DATA, ())
    pkt.priority = priority
    return pkt


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(capacity_packets=4)
        for seq in range(3):
            assert q.enqueue(data_packet(seq), 0.0)
        assert [q.dequeue(1.0).seq for _ in range(3)] == [0, 1, 2]

    def test_drops_when_full(self):
        q = DropTailQueue(capacity_packets=2)
        assert q.enqueue(data_packet(0), 0.0)
        assert q.enqueue(data_packet(1), 0.0)
        assert not q.enqueue(data_packet(2), 0.0)
        assert q.stats.dropped_packets == 1
        assert q.stats.dropped_bytes == 1500

    def test_byte_accounting(self):
        q = DropTailQueue()
        q.enqueue(data_packet(0, size=100), 0.0)
        q.enqueue(data_packet(1, size=200), 0.0)
        assert q.bytes_queued == 300
        q.dequeue(0.0)
        assert q.bytes_queued == 200

    def test_empty_dequeue_none(self):
        assert DropTailQueue().dequeue(0.0) is None


class TestEcn:
    def test_marks_above_threshold(self):
        q = EcnQueue(capacity_packets=10, mark_threshold_packets=2)
        p0, p1, p2 = (data_packet(i) for i in range(3))
        q.enqueue(p0, 0.0)
        q.enqueue(p1, 0.0)
        q.enqueue(p2, 0.0)  # occupancy 2 >= K at arrival
        assert not p0.ecn_ce and not p1.ecn_ce and p2.ecn_ce
        assert q.stats.marked_packets == 1


class TestPFabric:
    def test_dequeues_highest_priority_first(self):
        q = PFabricQueue(capacity_packets=8)
        q.enqueue(data_packet(0, priority=50.0), 0.0)
        q.enqueue(data_packet(1, priority=5.0), 0.0)
        q.enqueue(data_packet(2, priority=20.0), 0.0)
        assert q.dequeue(0.0).priority == 5.0
        assert q.dequeue(0.0).priority == 20.0

    def test_fifo_among_equal_priorities(self):
        q = PFabricQueue(capacity_packets=8)
        q.enqueue(data_packet(0, priority=5.0), 0.0)
        q.enqueue(data_packet(1, priority=5.0), 0.0)
        assert q.dequeue(0.0).seq == 0

    def test_evicts_worst_when_full(self):
        q = PFabricQueue(capacity_packets=2)
        q.enqueue(data_packet(0, priority=100.0), 0.0)
        q.enqueue(data_packet(1, priority=5.0), 0.0)
        assert q.enqueue(data_packet(2, priority=1.0), 0.0)
        assert q.stats.dropped_packets == 1
        priorities = {q.dequeue(0.0).priority for _ in range(2)}
        assert priorities == {1.0, 5.0}

    def test_drops_arrival_if_it_is_worst(self):
        q = PFabricQueue(capacity_packets=2)
        q.enqueue(data_packet(0, priority=1.0), 0.0)
        q.enqueue(data_packet(1, priority=2.0), 0.0)
        assert not q.enqueue(data_packet(2, priority=99.0), 0.0)
        assert len(q) == 2


class TestCoDel:
    def test_no_drop_below_target(self):
        codel = CoDelState(target=5e-3, interval=100e-3)
        assert not codel.should_drop(1e-3, 0.0)

    def test_drops_after_persistent_excess(self):
        codel = CoDelState(target=1e-3, interval=10e-3)
        now, dropped = 0.0, False
        for _ in range(100):
            if codel.should_drop(5e-3, now):
                dropped = True
                break
            now += 1e-3
        assert dropped

    def test_control_law_accelerates(self):
        codel = CoDelState(target=1e-3, interval=10e-3)
        now = 0.0
        drops = []
        for _ in range(2000):
            if codel.should_drop(5e-3, now):
                drops.append(now)
            now += 0.5e-3
        assert len(drops) >= 3
        gaps = [b - a for a, b in zip(drops[1:], drops[2:])]
        assert gaps == sorted(gaps, reverse=True) or gaps[-1] <= gaps[0]


class TestSfqCoDel:
    def test_flows_isolated_into_buckets(self):
        q = SfqCoDelQueue(capacity_packets=16, n_buckets=64)
        # Two flows interleaved: DRR should alternate buckets.
        for seq in range(3):
            q.enqueue(data_packet(seq, flow_id=1, size=1000), 0.0)
        q.enqueue(data_packet(0, flow_id=2, size=1000), 0.0)
        out = [q.dequeue(0.0).flow.flow_id for _ in range(4)]
        assert set(out) == {1, 2}
        # The lone flow-2 packet must not wait behind all of flow 1.
        assert out.index(2) < 3

    def test_overflow_tail_drops_arrival(self):
        q = SfqCoDelQueue(capacity_packets=2, overflow="tail")
        q.enqueue(data_packet(0, flow_id=1), 0.0)
        q.enqueue(data_packet(1, flow_id=1), 0.0)
        assert not q.enqueue(data_packet(2, flow_id=2), 0.0)

    def test_overflow_fattest_evicts_longest_bucket(self):
        q = SfqCoDelQueue(capacity_packets=2, overflow="fattest")
        q.enqueue(data_packet(0, flow_id=1), 0.0)
        q.enqueue(data_packet(1, flow_id=1), 0.0)
        assert q.enqueue(data_packet(0, flow_id=2), 0.0)
        assert q.stats.dropped_packets == 1

    def test_invalid_overflow_policy(self):
        with pytest.raises(ValueError):
            SfqCoDelQueue(overflow="bogus")

    def test_total_packet_accounting(self):
        q = SfqCoDelQueue(capacity_packets=8)
        for seq in range(4):
            q.enqueue(data_packet(seq, flow_id=seq % 2), 0.0)
        assert len(q) == 4
        while q.dequeue(0.0) is not None:
            pass
        assert len(q) == 0


class TestXcpController:
    def test_positive_feedback_with_spare_capacity(self):
        controller = XcpController(capacity_bps=10e9)
        pkt = data_packet(0)
        pkt.xcp_rtt = 20e-6
        pkt.xcp_cwnd_bytes = 15000
        pkt.xcp_feedback = 1e9
        controller.on_forward(pkt, 0, 0.0)
        controller.end_interval(50e-6)
        pkt2 = data_packet(1)
        pkt2.xcp_rtt = 20e-6
        pkt2.xcp_cwnd_bytes = 15000
        pkt2.xcp_feedback = 1e9
        controller.on_forward(pkt2, 0, 60e-6)
        assert pkt2.xcp_feedback < 1e9   # clamped by the router
        assert pkt2.xcp_feedback > 0     # spare capacity -> growth

    def test_negative_feedback_when_overloaded(self):
        controller = XcpController(capacity_bps=1e9, initial_interval=50e-6)
        now = 0.0
        # Saturate: 2x capacity of input plus a standing queue.
        for round_index in range(4):
            for i in range(20):
                pkt = data_packet(i)
                pkt.xcp_rtt = 20e-6
                pkt.xcp_cwnd_bytes = 30000
                pkt.xcp_feedback = 1e9
                controller.on_forward(pkt, 100_000, now)
                now += 5e-6
            controller.end_interval(now)
        probe = data_packet(99)
        probe.xcp_rtt = 20e-6
        probe.xcp_cwnd_bytes = 30000
        probe.xcp_feedback = 1e9
        controller.on_forward(probe, 100_000, now)
        assert probe.xcp_feedback < 0

    def test_ignores_acks(self):
        controller = XcpController(capacity_bps=1e9)
        flow = SimFlow(1, 0, 1, 1500, 0.0)
        ack = Packet(flow, 0, 64, Packet.ACK, ())
        ack.xcp_feedback = 123.0
        controller.on_forward(ack, 0, 0.0)
        assert ack.xcp_feedback == 123.0
