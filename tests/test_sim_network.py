"""Packet network plumbing: delays, routing, RTTs, flow startup."""

import pytest

from repro.sim import MSS_BYTES, SimFlow, packets_for
from repro.sim.experiments import build_network


class TestPacketsFor:
    def test_one_packet_minimum(self):
        assert packets_for(1) == 1
        assert packets_for(0) == 1

    def test_mss_boundary(self):
        assert packets_for(MSS_BYTES) == 1
        assert packets_for(MSS_BYTES + 1) == 2

    def test_segment_bytes_last_partial(self):
        flow = SimFlow(1, 0, 1, MSS_BYTES + 100, 0.0)
        assert flow.n_packets == 2
        assert flow.segment_bytes(0) == MSS_BYTES + 58
        assert flow.segment_bytes(1) == 100 + 58


class TestNetworkBuild:
    def test_links_match_topology(self, small_clos):
        network = build_network("tcp", topology=small_clos)
        assert len(network.links) == small_clos.n_links
        # edge links carry folded host delay
        up = network.links[small_clos.host_up_link(0)]
        assert up.delay == pytest.approx(1.5e-6 + 2e-6)
        fabric = network.links[small_clos.fabric_up_link(0, 0)]
        assert fabric.delay == pytest.approx(1.5e-6)

    def test_scheme_queue_selection(self, tiny_clos):
        from repro.sim import (DropTailQueue, EcnQueue, PFabricQueue,
                               SfqCoDelQueue)
        expected = {"tcp": DropTailQueue, "dctcp": EcnQueue,
                    "pfabric": PFabricQueue, "sfqcodel": SfqCoDelQueue,
                    "flowtune": DropTailQueue, "xcp": DropTailQueue}
        for scheme, queue_cls in expected.items():
            network = build_network(scheme, topology=tiny_clos)
            assert type(network.links[0].queue) is queue_cls

    def test_xcp_gets_controllers(self, tiny_clos):
        network = build_network("xcp", topology=tiny_clos)
        assert all(link.xcp is not None for link in network.links)

    def test_flowtune_gets_control_plane(self, tiny_clos):
        network = build_network("flowtune", topology=tiny_clos)
        assert network.allocator_device is not None
        assert all(h.control_agent is not None for h in network.hosts)

    def test_unknown_scheme_rejected(self, tiny_clos):
        with pytest.raises(ValueError):
            build_network("carrier-pigeon", topology=tiny_clos)


class TestEndToEndTiming:
    def test_single_packet_intra_rack_latency(self, tiny_clos):
        """One data packet takes prop + serialization per §6.2 math."""
        network = build_network("tcp", topology=tiny_clos)
        flow = network.make_flow("f", 0, 1, 100)
        network.start_flow(flow)
        network.sim.run()
        assert flow.finish_time is not None
        # 2 hops: (1.5+2)us x2 prop + 2 serializations of 158B at 10G.
        serialization = 2 * (100 + 58) * 8 / 10e9
        expected = 2 * 3.5e-6 + serialization
        assert flow.finish_time == pytest.approx(expected, rel=0.01)

    def test_measured_rtt_near_paper_values(self, tiny_clos):
        """The sender's srtt should approximate 14 µs (2-hop path)."""
        network = build_network("tcp", topology=tiny_clos)
        flow = network.make_flow("f", 0, 1, 10 * MSS_BYTES)
        sender = network.start_flow(flow)
        network.sim.run()
        assert sender.srtt == pytest.approx(14e-6, rel=0.35)

    def test_cross_rack_slower_than_intra(self, tiny_clos):
        network = build_network("tcp", topology=tiny_clos)
        near = network.make_flow("near", 0, 1, 3000)
        far = network.make_flow("far", 0, tiny_clos.n_hosts - 1, 3000)
        network.start_flow(near)
        network.start_flow(far)
        network.sim.run()
        assert far.fct > near.fct

    def test_link_serialization_rate(self, tiny_clos):
        """Back-to-back packets drain at exactly the link rate."""
        network = build_network("tcp", topology=tiny_clos,
                                initial_cwnd=64.0)
        flow = network.make_flow("f", 0, 1, 64 * MSS_BYTES)
        network.start_flow(flow)
        network.sim.run()
        wire = 64 * (MSS_BYTES + 58) * 8
        lower_bound = wire / 10e9
        assert flow.fct >= lower_bound

    def test_stats_register_all_flows(self, tiny_clos):
        network = build_network("tcp", topology=tiny_clos)
        for i in range(4):
            network.start_flow(network.make_flow(i, 0, 1 + i % 3, 2000))
        network.sim.run()
        assert len(network.stats.flows) == 4
        assert network.stats.completion_fraction() == 1.0
