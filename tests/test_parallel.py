"""§5 multicore machinery: partitioning, schedule, engine, cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import (PAPER_TABLE, BenchConfig, BlockPartition,
                            MulticoreNedEngine, aggregation_schedule,
                            cpu_of, distribution_schedule, final_down_holder,
                            final_up_holder, fit_cost_model, step_breakdown)
from repro.topology import TwoTierClos


def clos_for_blocks(n_blocks, racks_per_block=2, hosts_per_rack=4):
    return TwoTierClos(n_racks=n_blocks * racks_per_block,
                       hosts_per_rack=hosts_per_rack, n_spines=2)


class TestPartition:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BlockPartition(clos_for_blocks(3), 3)

    def test_equal_link_block_sizes(self):
        partition = BlockPartition(clos_for_blocks(4), 4)
        assert partition.links_per_block == 2 * (4 + 2)  # hosts + fabric

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_flow_locality_invariant(self, seed):
        """Every flow's route lies in its FlowBlock's two LinkBlocks —
        the property §5's coherence-free design rests on."""
        topo = clos_for_blocks(4)
        partition = BlockPartition(topo, 4)
        rng = np.random.default_rng(seed)
        src = int(rng.integers(topo.n_hosts))
        dst = int(rng.integers(topo.n_hosts - 1))
        if dst >= src:
            dst += 1
        route = topo.route(src, dst, seed)
        assert partition.verify_locality(src, dst, route)


class TestSchedule:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_step_count_is_log2(self, n):
        assert len(aggregation_schedule(n)) == int(np.log2(n))

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_final_holders_accumulate_complete_sums(self, n):
        """Symbolically aggregate singleton sets and check coverage."""
        holders = {(r, c): {"up": {(r, c)}, "down": {(r, c)}}
                   for r in range(n) for c in range(n)}
        for step in aggregation_schedule(n):
            staged = []
            for t in step:
                key = "up" if t.upward else "down"
                staged.append((t, key, set(holders[t.src][key])))
            for t, key, contribution in staged:
                holders[t.dst][key] |= contribution
        for block in range(n):
            up = holders[final_up_holder(n, block)]["up"]
            assert up == {(block, c) for c in range(n)}, \
                f"up block {block} incomplete"
            down = holders[final_down_holder(n, block)]["down"]
            assert down == {(r, block) for r in range(n)}, \
                f"down block {block} incomplete"

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_messages_per_step(self, n):
        # Step m has 2 * n^2 / 2^m transfers (uniform per group).
        for m, step in enumerate(aggregation_schedule(n), start=1):
            assert len(step) == 2 * n * n // (2 ** m)

    def test_distribution_mirrors_aggregation(self):
        agg = aggregation_schedule(4)
        dist = distribution_schedule(4)
        assert len(dist) == len(agg)
        first_reversed = {(t.dst, t.src, t.block, t.upward)
                          for t in agg[-1]}
        assert {(t.src, t.dst, t.block, t.upward)
                for t in dist[0]} == first_reversed

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            aggregation_schedule(3)


class TestEngine:
    @pytest.mark.parametrize("n_blocks", [2, 4])
    def test_equivalent_to_single_core(self, n_blocks):
        topo = clos_for_blocks(n_blocks)
        engine = MulticoreNedEngine(topo, n_blocks)
        rng = np.random.default_rng(0)
        for i in range(80):
            src = int(rng.integers(topo.n_hosts))
            dst = int(rng.integers(topo.n_hosts - 1))
            if dst >= src:
                dst += 1
            engine.add_flow(i, src, dst)
        reference = engine.reference_optimizer()
        engine.iterate(20)
        reference.iterate(20)
        expected = dict(zip(reference.table.flow_ids(),
                            reference.rate_update()))
        for flow_id, rate in engine.rates().items():
            assert rate == pytest.approx(expected[flow_id], rel=1e-9)

    def test_equivalent_under_churn(self):
        topo = clos_for_blocks(2)
        engine = MulticoreNedEngine(topo, 2)
        rng = np.random.default_rng(1)
        for i in range(40):
            src = int(rng.integers(topo.n_hosts))
            dst = int(rng.integers(topo.n_hosts - 1))
            if dst >= src:
                dst += 1
            engine.add_flow(i, src, dst)
        engine.iterate(5)
        for i in range(0, 40, 3):
            engine.remove_flow(i)
        engine.iterate(5)
        reference = engine.reference_optimizer()
        reference.prices = engine.global_prices().copy()
        expected = dict(zip(reference.table.flow_ids(),
                            reference.rate_update()))
        for flow_id, rate in engine.rates().items():
            assert rate == pytest.approx(expected[flow_id], rel=1e-9)

    def test_stats_structure(self):
        topo = clos_for_blocks(4)
        engine = MulticoreNedEngine(topo, 4)
        engine.add_flow(0, 0, topo.n_hosts - 1)
        stats = engine.iterate(1)
        assert stats.aggregation_steps == 2          # log2(4)
        # aggregate + distribute move the same number of LinkBlocks.
        per_phase = 16 + 8                            # fig. 3 for n=4
        assert stats.messages == 2 * per_phase
        assert stats.max_flows_per_processor == 1

    def test_inter_cpu_message_accounting(self):
        # 2x2 grid: one CPU, so no inter-CPU transfers; 4x4 grid: two
        # CPUs, the final step's transfers cross between them.
        engine_small = MulticoreNedEngine(clos_for_blocks(2), 2)
        engine_small.add_flow(0, 0, engine_small.partition.topology.n_hosts - 1)
        assert engine_small.iterate(1).inter_cpu_messages == 0
        topo = clos_for_blocks(4)
        engine = MulticoreNedEngine(topo, 4)
        engine.add_flow(0, 0, topo.n_hosts - 1)
        stats = engine.iterate(1)
        assert 0 < stats.inter_cpu_messages < stats.messages


class TestCostModel:
    def test_fit_quality_within_ten_percent(self):
        model, configs, predictions = fit_cost_model()
        for row, predicted in zip(PAPER_TABLE, predictions):
            assert predicted == pytest.approx(row.cycles, rel=0.10)

    def test_constants_nonnegative(self):
        model, _, _ = fit_cost_model()
        assert np.all(model.constants >= 0)

    def test_time_conversion(self):
        model, configs, _ = fit_cost_model()
        first = model.time_us(configs[0])
        assert first == pytest.approx(PAPER_TABLE[0].time_us, rel=0.10)

    def test_throughput_headline(self):
        # §6.1: 4 cores allocate 15.36 Tbit/s (384 nodes x 40 G).
        model, configs, _ = fit_cost_model()
        assert model.throughput_tbps(configs[0]) == pytest.approx(15.36)
        assert model.throughput_tbps(configs[-1]) == pytest.approx(184.32)

    def test_step_breakdown_matches_paper_narrative(self):
        # 4 cores on one CPU: no inter-CPU steps.
        assert step_breakdown(2) == (1, 0)
        # 64 cores on 8 CPUs: communication dominated by inter-CPU.
        intra, inter = step_breakdown(8)
        assert intra + inter == 3 and inter >= 1

    def test_cpu_mapping_two_groups_per_cpu(self):
        # 4x4 grid -> 2 CPUs, each with two adjacent 2x2 groups.
        cpus = {cpu_of((r, c), 4) for r in range(4) for c in range(4)}
        assert cpus == {0, 1}

    def test_config_rejects_non_square_cores(self):
        with pytest.raises(ValueError):
            BenchConfig.from_row(6, 384, 100)
