"""Kernel-tier dispatch: selection, fallback, and bitwise equality.

`repro.core.kernels` puts the CSR scatter kernels behind pluggable
tiers (numpy / threads / optional numba).  This suite pins the
contracts the dispatcher makes:

* ``REPRO_KERNEL_TIER`` is honored (and unknown values degrade to
  ``auto`` with a warning, never an exception);
* an explicit ``compiled`` request without a working numba warns and
  falls back instead of crashing;
* every tier produces **bitwise identical** results across a
  multi-chunk reduction (the canonical chunk grid is the same for all
  tiers and all thread counts — ``BLOCK_ROWS`` is monkeypatched small
  here so a few hundred rows exercise many chunks);
* the threads tier's persistent pool survives ``fork`` (workers
  rebuild it on first use) and propagates helper exceptions;
* worker processes inherit the parent's tier through the shipped
  consts and stay numerically aligned with the simulated engine.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core import kernels
from repro.core.kernels import NumpyTier, ThreadsTier
from repro.core.kernels import _base
from repro.core.kernels._threads import _FanOut, _split


@pytest.fixture(autouse=True)
def restore_active_tier():
    """Leave the process-global active tier the way we found it."""
    saved = kernels._active
    yield
    kernels._active = saved


def tier_cases():
    """Fresh instances of every tier available on this host, with the
    threads tier forced to several workers even on 1-CPU machines."""
    cases = [NumpyTier(), ThreadsTier(n_threads=4)]
    if kernels.available_tiers()["compiled"]:
        from repro.core.kernels import _compiled
        cases.append(_compiled.make_tier())
    return cases


# ----------------------------------------------------------------------
# selection / environment / fallback
# ----------------------------------------------------------------------
class TestTierSelection:
    def test_env_var_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "numpy")
        assert kernels.select().name == "numpy"
        monkeypatch.setenv("REPRO_KERNEL_TIER", "threads")
        assert kernels.select().name == "threads"

    def test_auto_resolves_to_an_available_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "auto")
        tier = kernels.select()
        assert kernels.available_tiers()[tier.name]

    def test_unknown_name_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "gpu9000")
        with pytest.warns(RuntimeWarning, match="unknown"):
            tier = kernels.select()
        assert tier.name in ("numpy", "threads", "compiled")

    def test_explicit_compiled_degrades_gracefully(self):
        if kernels.available_tiers()["compiled"]:
            assert kernels.select("compiled").name == "compiled"
        else:
            with pytest.warns(RuntimeWarning, match="falling back"):
                tier = kernels.select("compiled")
            assert tier.name in ("threads", "numpy")

    def test_use_restores_previous_tier(self):
        before = kernels.active()
        with kernels.use("numpy") as tier:
            assert tier.name == "numpy"
            assert kernels.active() is tier
        assert kernels.active() is before

    def test_describe_names_the_tier(self):
        with kernels.use("threads"):
            assert kernels.describe().startswith("threads(")
        with kernels.use("numpy"):
            assert kernels.describe() == "numpy"

    def test_instances_are_cached(self):
        assert kernels.select("threads") is kernels.select("threads")


# ----------------------------------------------------------------------
# the canonical chunk grid
# ----------------------------------------------------------------------
class TestChunkSpans:
    def test_covers_every_row_once(self, monkeypatch):
        monkeypatch.setattr(_base, "BLOCK_ROWS", 7)
        spans = kernels.chunk_spans(40)
        assert spans[0][0] == 0 and spans[-1][1] == 40
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 == b0 and a0 < a1
        assert all(r0 % 7 == 0 for r0, _ in spans)

    def test_small_n_is_one_span(self):
        assert kernels.chunk_spans(100) == [(0, 100)]

    def test_empty(self):
        assert kernels.chunk_spans(0) == []


# ----------------------------------------------------------------------
# multi-chunk bitwise equality across tiers
# ----------------------------------------------------------------------
class TestMultiChunkBitwise:
    """With BLOCK_ROWS shrunk, a few hundred rows span many chunks —
    the regime where a naive per-thread reduction would diverge."""

    @pytest.fixture(autouse=True)
    def small_blocks(self, monkeypatch):
        monkeypatch.setattr(_base, "BLOCK_ROWS", 7)

    def case(self, seed=3, n=500, width=3, n_links=64):
        rng = np.random.default_rng(seed)
        indices = rng.integers(0, n_links + 1,
                               size=n * width).astype(np.int64)
        padded = np.append(rng.random(n_links), 0.0)
        values_a = rng.random(n)
        values_b = rng.random(n)
        buf = np.empty(n * width)
        return indices, padded, values_a, values_b, buf, n, width, n_links

    def test_all_kernels_match_numpy_bitwise(self):
        indices, padded, va, vb, buf, n, width, n_links = self.case()
        reference = NumpyTier()
        want = {
            "price_sums": reference.price_sums(padded, indices, n,
                                               width, buf),
            "link_totals": reference.link_totals(va, indices, n, width,
                                                 n_links + 1, buf),
            "max": reference.max_link_value(padded, indices, n, width,
                                            buf, np.empty(n)).copy(),
        }
        want2 = reference.link_totals2(va, vb, indices, n, width,
                                       n_links + 1, buf)
        for tier in tier_cases():
            label = tier.name
            np.testing.assert_array_equal(
                tier.price_sums(padded, indices, n, width, buf),
                want["price_sums"], err_msg=label)
            np.testing.assert_array_equal(
                tier.link_totals(va, indices, n, width, n_links + 1,
                                 buf),
                want["link_totals"], err_msg=label)
            np.testing.assert_array_equal(
                tier.max_link_value(padded, indices, n, width, buf,
                                    np.empty(n)),
                want["max"], err_msg=label)
            got2 = tier.link_totals2(va, vb, indices, n, width,
                                     n_links + 1, buf)
            np.testing.assert_array_equal(got2[0], want2[0],
                                          err_msg=label)
            np.testing.assert_array_equal(got2[1], want2[1],
                                          err_msg=label)

    def test_min_link_value_and_row_copies_match(self):
        rng = np.random.default_rng(9)
        n, width, n_links = 200, 4, 32
        rows = rng.integers(0, n_links, size=(n, width))
        padded = np.append(rng.random(n_links), np.inf)
        reference = NumpyTier()
        want = reference.min_link_value(padded, rows,
                                        np.empty((n, width)),
                                        np.empty(n)).copy()
        src = rng.random((n, width + 2))
        patch = rng.choice(n, size=n // 3, replace=False)
        for tier in tier_cases():
            got = tier.min_link_value(padded, rows, np.empty((n, width)),
                                      np.empty(n))
            np.testing.assert_array_equal(got, want, err_msg=tier.name)
            dst = np.zeros((n, width))
            tier.copy_rows(dst, src, 0, n, width)
            np.testing.assert_array_equal(dst, src[:, :width],
                                          err_msg=tier.name)
            dst2 = np.zeros((n, width))
            tier.patch_rows(dst2, src, patch, width)
            np.testing.assert_array_equal(dst2[patch], src[patch, :width],
                                          err_msg=tier.name)

    def test_thread_count_cannot_change_a_bit(self):
        indices, padded, va, vb, buf, n, width, n_links = self.case(seed=5)
        results = []
        for n_threads in (1, 2, 3, 8):
            tier = ThreadsTier(n_threads=n_threads)
            results.append((
                tier.price_sums(padded, indices, n, width, buf).copy(),
                tier.link_totals(va, indices, n, width, n_links + 1,
                                 buf).copy()))
        for got_prices, got_totals in results[1:]:
            np.testing.assert_array_equal(got_prices, results[0][0])
            np.testing.assert_array_equal(got_totals, results[0][1])


# ----------------------------------------------------------------------
# the threads tier's pool mechanics
# ----------------------------------------------------------------------
class TestThreadsPool:
    def test_split_is_contiguous_and_complete(self):
        for n, shares in [(10, 3), (3, 10), (1, 1), (16, 4)]:
            bounds = _split(n, shares)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            assert all(lo < hi for lo, hi in bounds)

    def test_helper_exceptions_propagate(self):
        pool = _FanOut(n_helpers=2)

        def work(share):
            if share == 1:
                raise ValueError("helper boom")

        with pytest.raises(ValueError, match="helper boom"):
            pool.run(work, n_shares=3)
        # the pool stays usable after an error
        seen = []
        pool.run(seen.append, n_shares=3)
        assert sorted(seen) == [0, 1, 2]

    def test_pool_is_rebuilt_after_fork(self, monkeypatch):
        monkeypatch.setattr(_base, "BLOCK_ROWS", 7)
        tier = ThreadsTier(n_threads=3)
        rng = np.random.default_rng(1)
        n, width = 100, 2
        indices = rng.integers(0, 9, size=n * width).astype(np.int64)
        padded = np.append(rng.random(8), 0.0)
        buf = np.empty(n * width)
        tier.price_sums(padded, indices, n, width, buf)
        pool = tier._pool
        assert pool is not None
        pool._pid = os.getpid() - 1  # pretend we are a fork child
        tier.price_sums(padded, indices, n, width, buf)
        assert tier._pool is not pool

    def test_single_thread_runs_inline(self):
        tier = ThreadsTier(n_threads=1)
        rng = np.random.default_rng(2)
        n, width = 50, 2
        indices = rng.integers(0, 5, size=n * width).astype(np.int64)
        padded = np.append(rng.random(4), 0.0)
        tier.price_sums(padded, indices, n, width, np.empty(n * width))
        assert tier._pool is None


# ----------------------------------------------------------------------
# worker processes inherit the parent's tier
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method")
class TestWorkerTierInheritance:
    def test_process_backend_matches_simulated_under_threads_tier(self):
        from repro.parallel import MulticoreNedEngine
        from repro.topology import TwoTierClos

        topology = TwoTierClos(n_racks=4, hosts_per_rack=4, n_spines=2)
        rng = np.random.default_rng(0)
        starts = []
        for i in range(60):
            src = int(rng.integers(topology.n_hosts))
            dst = int(rng.integers(topology.n_hosts - 1))
            dst += dst >= src
            starts.append((i, src, dst))

        simulated = MulticoreNedEngine(topology, 2)
        simulated.apply_churn(starts=starts)
        simulated.iterate(10)
        with kernels.use("threads"):
            with MulticoreNedEngine(topology, 2, backend="process",
                                    n_workers=2) as engine:
                engine.apply_churn(starts=starts)
                engine.iterate(10)
                rates = engine.rates()
                reference = simulated.rates()
        assert rates.keys() == reference.keys()
        for flow_id, rate in rates.items():
            assert rate == pytest.approx(reference[flow_id], rel=1e-9)
