"""Cross-backend equivalence: worker processes == simulated == NED.

The §5 design claim is that the FlowBlock/LinkBlock partitioning makes
the parallel allocator *numerically equivalent* to single-core NED.
The simulated engine asserts that in one process; this suite closes
the loop for the real worker-process backend — over **both
coordination fabrics**: shared memory (sense-reversing barrier, data
read in place) and sockets (LinkBlock slices as TCP frames, no shared
state at all).  Same grids, same churn schedules, same floats (up to
float associativity — in practice the fabrics ship byte-exact slices
through the very same kernels, so the tolerance is loose cover for an
exact match), across worker counts that do and don't divide the grid
evenly, before and after mid-run churn batches, and across the
shared-buffer re-allocation (regrow → re-attach / re-snapshot) path.
The socket cases double as the fast-lane multi-host smoke: nothing in
the worker protocol assumes a shared machine.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.ned import NedOptimizer
from repro.core.network import FlowTable
from repro.parallel import MulticoreNedEngine, SharedArena
from repro.topology import TwoTierClos

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method")

RTOL = 1e-9


def clos_for_blocks(n_blocks, racks_per_block=2, hosts_per_rack=4):
    return TwoTierClos(n_racks=n_blocks * racks_per_block,
                       hosts_per_rack=hosts_per_rack, n_spines=2)


def random_starts(topology, rng, flow_ids):
    starts = []
    for flow_id in flow_ids:
        src = int(rng.integers(topology.n_hosts))
        dst = int(rng.integers(topology.n_hosts - 1))
        if dst >= src:
            dst += 1
        starts.append((flow_id, src, dst))
    return starts


def churn_schedule(topology, seed, rounds, burst, n_initial):
    """Deterministic (starts, ends) batches shared by all backends."""
    rng = np.random.default_rng(seed)
    alive = list(range(n_initial))
    next_id = n_initial
    batches = [(random_starts(topology, rng, alive), [])]
    for _ in range(rounds):
        n_ends = min(len(alive), int(rng.integers(0, burst)))
        ends = [alive.pop(int(rng.integers(len(alive))))
                for _ in range(n_ends)]
        new_ids = list(range(next_id, next_id + int(rng.integers(1, burst))))
        next_id = new_ids[-1] + 1
        alive.extend(new_ids)
        batches.append((random_starts(topology, rng, new_ids), ends))
    return batches


def run_schedule(engine, batches, iters_per_batch):
    for starts, ends in batches:
        engine.apply_churn(starts=starts, ends=ends)
        engine.iterate(iters_per_batch)
    return engine.rates(), engine.global_prices()


def single_core_rates(engine):
    """Rates a single-core NED with the engine's prices would emit."""
    reference = engine.reference_optimizer()
    reference.prices = engine.global_prices().copy()
    return dict(zip(reference.table.flow_ids(),
                    (float(r) for r in reference.rate_update())))


class TestCrossBackendEquivalence:
    """The headline suite: process == simulated == single-core NED."""

    @pytest.mark.parametrize("n_blocks,n_workers,fabric", [
        (2, 1, "shm"),
        (2, 2, "shm"),
        (2, 3, "shm"),   # does not divide the 4-cell grid
        (2, 4, "shm"),
        (2, 2, "socket"),
        (2, 3, "socket"),  # uneven ownership over TCP frames
    ])
    def test_static_flows_match_simulated_and_single_core(
            self, n_blocks, n_workers, fabric):
        topology = clos_for_blocks(n_blocks)
        batches = [(random_starts(topology, np.random.default_rng(0),
                                  range(60)), [])]
        simulated = MulticoreNedEngine(topology, n_blocks)
        r_sim, p_sim = run_schedule(simulated, batches, 15)
        with MulticoreNedEngine(topology, n_blocks, backend="process",
                                n_workers=n_workers,
                                fabric=fabric) as engine:
            r_proc, p_proc = run_schedule(engine, batches, 15)
            assert r_proc.keys() == r_sim.keys()
            for flow_id, rate in r_proc.items():
                assert rate == pytest.approx(r_sim[flow_id], rel=RTOL)
            np.testing.assert_allclose(p_proc, p_sim, rtol=RTOL)
            expected = single_core_rates(engine)
            for flow_id, rate in r_proc.items():
                assert rate == pytest.approx(expected[flow_id], rel=RTOL)

    @pytest.mark.parametrize("n_blocks,n_workers,seed,fabric", [
        (2, 2, 1, "shm"),
        (2, 3, 2, "shm"),
        (2, 2, 1, "socket"),
        (2, 3, 2, "socket"),
    ])
    def test_mid_run_churn_batches_match(self, n_blocks, n_workers, seed,
                                         fabric):
        topology = clos_for_blocks(n_blocks)
        batches = churn_schedule(topology, seed, rounds=5, burst=25,
                                 n_initial=40)
        simulated = MulticoreNedEngine(topology, n_blocks)
        r_sim, p_sim = run_schedule(simulated, batches, 4)
        with MulticoreNedEngine(topology, n_blocks, backend="process",
                                n_workers=n_workers,
                                fabric=fabric) as engine:
            r_proc, p_proc = run_schedule(engine, batches, 4)
            assert r_proc.keys() == r_sim.keys()
            for flow_id, rate in r_proc.items():
                assert rate == pytest.approx(r_sim[flow_id], rel=RTOL)
            np.testing.assert_allclose(p_proc, p_sim, rtol=RTOL)

    @pytest.mark.parametrize("fabric", ["shm", "socket"])
    def test_refresh_capacity_stays_equivalent(self, fabric):
        """§7 path: in-place capacity changes must reach workers —
        the bottleneck column is flushed and the capacity/idle-price
        vectors republished (in place for shm, framed for sockets)."""
        topology = clos_for_blocks(2)
        batches = [(random_starts(topology, np.random.default_rng(2),
                                  range(50)), [])]
        simulated = MulticoreNedEngine(topology, 2)
        run_schedule(simulated, batches, 5)
        with MulticoreNedEngine(topology, 2, backend="process",
                                n_workers=2, fabric=fabric) as engine:
            run_schedule(engine, batches, 5)
            for target in (simulated, engine):
                target.links.capacity *= 0.5
                target.refresh_capacity()
                target.iterate(5)
            r_sim, r_proc = simulated.rates(), engine.rates()
            assert r_proc.keys() == r_sim.keys()
            for flow_id, rate in r_proc.items():
                assert rate == pytest.approx(r_sim[flow_id], rel=RTOL)
            np.testing.assert_allclose(engine.global_prices(),
                                       simulated.global_prices(),
                                       rtol=RTOL)

    @pytest.mark.parametrize("fabric", ["shm", "socket"])
    def test_dead_worker_raises_instead_of_hanging(self, fabric):
        topology = clos_for_blocks(2)
        engine = MulticoreNedEngine(topology, 2, backend="process",
                                    n_workers=2, fabric=fabric)
        try:
            engine.add_flow(0, 0, topology.n_hosts - 1)
            engine.iterate(1)
            engine.backend._workers[0].terminate()
            engine.backend._workers[0].join(5.0)
            with pytest.raises(RuntimeError):
                engine.iterate(1)
            # the failed run tore the pool down; peers must have exited
            assert engine.backend._closed
            for worker in engine.backend._workers:
                worker.join(5.0)
                assert not worker.is_alive()
        finally:
            engine.close()

    @pytest.mark.parametrize("fabric", ["shm", "socket"])
    def test_regrow_reattaches_shared_buffers(self, fabric):
        """Bursts past the initial 64-slot capacity re-allocate a
        block's arrays; shm workers must follow via re-attach, socket
        workers via a fresh cell snapshot."""
        topology = clos_for_blocks(2)
        rng = np.random.default_rng(9)
        with MulticoreNedEngine(topology, 2, backend="process",
                                n_workers=2, fabric=fabric) as engine:
            engine.apply_churn(
                starts=random_starts(topology, rng, range(30)))
            engine.iterate(3)
            initial_capacity = max(len(p.table._weights)
                                   for p in engine.processors.values())
            engine.apply_churn(
                starts=random_starts(topology, rng, range(1000, 1400)))
            engine.iterate(3)
            assert max(len(p.table._weights)
                       for p in engine.processors.values()) \
                > initial_capacity
            expected = single_core_rates(engine)
            for flow_id, rate in engine.rates().items():
                assert rate == pytest.approx(expected[flow_id], rel=RTOL)

    def test_small_socket_buffers_cannot_deadlock_a_step(self):
        """The socket-fabric deadlock regression: ``SO_SNDBUF`` /
        ``SO_RCVBUF`` clamped far below one step's per-pair traffic on
        a 16-block grid.  The sendall-first protocol this repo used to
        ship wedges here — each worker blocked writing before reading
        anything — so completion itself is the assertion, plus the
        usual 1e-9 equivalence to the simulated engine through mid-run
        churn."""
        sockbuf = 2048
        # One direction's in-flight bytes are bounded by the sender's
        # send buffer plus the receiver's receive buffer; Linux doubles
        # the setsockopt request but also enforces floors (4608 snd /
        # 2304 rcv), so this is what the clamped mesh can absorb.
        in_flight = max(2 * sockbuf, 4608) + max(2 * sockbuf, 2304)
        topology = clos_for_blocks(4, racks_per_block=2,
                                   hosts_per_rack=128)
        batches = churn_schedule(topology, seed=6, rounds=2, burst=30,
                                 n_initial=60)
        simulated = MulticoreNedEngine(topology, 4)
        r_sim, p_sim = run_schedule(simulated, batches, 3)
        with MulticoreNedEngine(
                topology, 4, backend="process", n_workers=2,
                fabric="socket",
                fabric_options={"sockbuf": sockbuf,
                                "timeout": 120.0}) as engine:
            # The premise: one step's batched traffic between the two
            # workers really exceeds what the clamped mesh can hold.
            row_of = engine.backend._row_of
            owner = engine.backend._owner_of_row
            links = engine.partition.links_per_block
            worst = 0
            for step in engine._agg_steps:
                counts = {}
                for t in step:
                    pair = (owner[row_of[t.src]], owner[row_of[t.dst]])
                    if pair[0] != pair[1]:
                        counts[pair] = counts.get(pair, 0) + 1
                worst = max(worst, max(counts.values(), default=0))
            assert worst * 2 * links * 8 > 1.5 * in_flight, \
                "test premise broken: step traffic fits the buffers"
            r_proc, p_proc = run_schedule(engine, batches, 3)
            assert r_proc.keys() == r_sim.keys()
            for flow_id, rate in r_proc.items():
                assert rate == pytest.approx(r_sim[flow_id], rel=RTOL)
            np.testing.assert_allclose(p_proc, p_sim, rtol=RTOL)

    @pytest.mark.slow
    @pytest.mark.parametrize("n_workers,fabric", [
        (4, "shm"), (5, "shm"), (16, "shm"), (4, "socket"),
    ])
    def test_larger_grid_under_churn(self, n_workers, fabric):
        """16-cell grid, worker counts below/at/not dividing it."""
        topology = clos_for_blocks(4)
        batches = churn_schedule(topology, seed=3, rounds=4, burst=60,
                                 n_initial=200)
        simulated = MulticoreNedEngine(topology, 4)
        r_sim, p_sim = run_schedule(simulated, batches, 3)
        with MulticoreNedEngine(topology, 4, backend="process",
                                n_workers=n_workers,
                                fabric=fabric) as engine:
            r_proc, p_proc = run_schedule(engine, batches, 3)
            assert r_proc.keys() == r_sim.keys()
            for flow_id, rate in r_proc.items():
                assert rate == pytest.approx(r_sim[flow_id], rel=RTOL)
            np.testing.assert_allclose(p_proc, p_sim, rtol=RTOL)
            expected = single_core_rates(engine)
            for flow_id, rate in r_proc.items():
                assert rate == pytest.approx(expected[flow_id], rel=RTOL)


class TestProcessBackendMechanics:
    @pytest.mark.parametrize("fabric", ["shm", "socket"])
    def test_stats_match_simulated_engine(self, fabric):
        topology = clos_for_blocks(4)
        simulated = MulticoreNedEngine(topology, 4)
        simulated.add_flow(0, 0, topology.n_hosts - 1)
        s_sim = simulated.iterate(2)
        with MulticoreNedEngine(topology, 4, backend="process",
                                n_workers=2, fabric=fabric) as engine:
            engine.add_flow(0, 0, topology.n_hosts - 1)
            s_proc = engine.iterate(2)
        for field in ("messages", "inter_cpu_messages",
                      "link_entries_moved", "aggregation_steps",
                      "max_flows_per_processor", "total_flows"):
            assert getattr(s_proc, field) == getattr(s_sim, field), field

    def test_worker_count_clamped_to_grid(self):
        topology = clos_for_blocks(2)
        with MulticoreNedEngine(topology, 2, backend="process",
                                n_workers=64) as engine:
            assert engine.backend.n_workers == 4
            engine.add_flow(0, 0, topology.n_hosts - 1)
            engine.iterate(1)

    def test_close_is_idempotent_and_workers_exit(self):
        topology = clos_for_blocks(2)
        engine = MulticoreNedEngine(topology, 2, backend="process",
                                    n_workers=2)
        engine.add_flow(0, 0, topology.n_hosts - 1)
        engine.iterate(1)
        workers = list(engine.backend._workers)
        engine.close()
        engine.close()
        assert all(not worker.is_alive() for worker in workers)
        with pytest.raises(RuntimeError):
            engine.iterate(1)

    def test_simulated_rejects_n_workers(self):
        with pytest.raises(ValueError):
            MulticoreNedEngine(clos_for_blocks(2), 2, n_workers=2)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            MulticoreNedEngine(clos_for_blocks(2), 2, backend="threads")

    def test_unknown_fabric_rejected(self):
        with pytest.raises(ValueError):
            MulticoreNedEngine(clos_for_blocks(2), 2, backend="process",
                               fabric="carrier-pigeon")

    def test_reserve_per_block_avoids_regrow(self):
        topology = clos_for_blocks(2)
        rng = np.random.default_rng(4)
        with MulticoreNedEngine(topology, 2, backend="process",
                                n_workers=2,
                                reserve_per_block=1024) as engine:
            capacities = [len(p.table._weights)
                          for p in engine.processors.values()]
            assert min(capacities) >= 1024
            engine.apply_churn(
                starts=random_starts(topology, rng, range(600)))
            engine.iterate(2)
            assert [len(p.table._weights)
                    for p in engine.processors.values()] == capacities

    def test_reserve_per_block_applies_to_simulated_backend(self):
        engine = MulticoreNedEngine(clos_for_blocks(2), 2,
                                    reserve_per_block=512)
        assert all(len(p.table._weights) >= 512
                   for p in engine.processors.values())


class TestEngineApplyChurn:
    """engine.apply_churn (batched) == add_flow/remove_flow loops."""

    def test_matches_per_event_churn(self):
        topology = clos_for_blocks(2)
        rng = np.random.default_rng(5)
        starts = random_starts(topology, rng, range(50))
        batched = MulticoreNedEngine(topology, 2)
        sequential = MulticoreNedEngine(topology, 2)
        batched.apply_churn(starts=starts)
        for flow_id, src, dst in starts:
            sequential.add_flow(flow_id, src, dst)
        batched.iterate(5)
        sequential.iterate(5)
        ends = [flow_id for flow_id, _, _ in starts[::3]]
        batched.apply_churn(ends=ends)
        for flow_id in ends:
            sequential.remove_flow(flow_id)
        batched.iterate(5)
        sequential.iterate(5)
        r_batched, r_sequential = batched.rates(), sequential.rates()
        assert r_batched.keys() == r_sequential.keys()
        for flow_id, rate in r_batched.items():
            assert rate == pytest.approx(r_sequential[flow_id], rel=RTOL)

    def test_restart_id_in_both_lists(self):
        topology = clos_for_blocks(2)
        engine = MulticoreNedEngine(topology, 2)
        engine.add_flow("a", 0, topology.n_hosts - 1)
        engine.apply_churn(starts=[("a", 1, 2)], ends=["a"])
        assert engine.n_flows == 1
        cell = engine._flow_home["a"]
        assert "a" in engine.processors[cell].table

    def test_bad_end_id_leaves_engine_unchanged(self):
        topology = clos_for_blocks(2)
        engine = MulticoreNedEngine(topology, 2)
        engine.apply_churn(starts=[(0, 0, 5), (1, 1, 6)])
        with pytest.raises(KeyError):
            engine.apply_churn(ends=[0, "ghost"])
        assert engine.n_flows == 2
        assert 0 in engine._flow_home
        engine.apply_churn(ends=[0, 1])  # still removable: no orphan
        assert engine.n_flows == 0

    def test_duplicate_start_leaves_engine_unchanged(self):
        topology = clos_for_blocks(2)
        engine = MulticoreNedEngine(topology, 2)
        engine.apply_churn(starts=[(0, 0, 5)])
        for bad in ([(1, 1, 6), (1, 2, 7)],   # dup within batch
                    [(0, 1, 6)]):             # dup of active flow
            with pytest.raises(KeyError):
                engine.apply_churn(starts=bad)
            assert engine.n_flows == 1
            assert sum(p.table.n_flows
                       for p in engine.processors.values()) == 1

    def test_bad_weight_leaves_engine_unchanged(self):
        topology = clos_for_blocks(2)
        engine = MulticoreNedEngine(topology, 2)
        with pytest.raises(ValueError):
            engine.apply_churn(starts=[(0, 0, 5), (1, 1, 6, -1.0)])
        assert engine.n_flows == 0
        assert all(p.table.n_flows == 0
                   for p in engine.processors.values())

    def test_weighted_starts(self):
        topology = clos_for_blocks(2)
        engine = MulticoreNedEngine(topology, 2)
        engine.apply_churn(starts=[("w", 0, topology.n_hosts - 1, 3.0)])
        cell = engine._flow_home["w"]
        table = engine.processors[cell].table
        assert table.weights[table.index_of("w")] == 3.0


class TestSharedArena:
    def test_allocate_manifest_attach_roundtrip(self):
        from repro.parallel.shm import attach
        arena = SharedArena()
        try:
            array = arena.zeros("cell0/data", (8,), np.float64)
            array[:] = np.arange(8)
            arrays, keepalive = attach(arena.manifest("cell0"))
            assert np.array_equal(arrays["data"], np.arange(8))
            arrays["data"][0] = 42.0
            assert array[0] == 42.0
            del arrays, keepalive
        finally:
            arena.close()

    def test_reallocate_supersedes_tag(self):
        arena = SharedArena()
        try:
            arena.zeros("cell0/data", (8,), np.float64)
            first = arena.manifest("cell0")["data"][0]
            bigger = arena.zeros("cell0/data", (16,), np.float64)
            name, shape, _ = arena.manifest("cell0")["data"]
            assert name != first and shape == (16,)
            assert bigger.shape == (16,)
        finally:
            arena.close()

    def test_flowtable_storage_in_shared_memory(self):
        """FlowTable's allocator hook places its columns in the arena,
        and growth re-allocates them under the same tags."""
        arena = SharedArena()
        try:
            links = TwoTierClos(n_racks=2, hosts_per_rack=4,
                                n_spines=2).link_set()
            table = FlowTable(links, allocator=arena.allocator("cell0"))
            manifest = arena.manifest("cell0")
            assert set(manifest) >= {"routes", "weights", "column0"}
            for i in range(100):  # past _INITIAL_CAPACITY: regrow
                table.add_flow(i, [0, 1])
            regrown = arena.manifest("cell0")
            assert regrown["routes"][0] != manifest["routes"][0]
            assert regrown["routes"][1][0] >= 100
            optimizer = NedOptimizer(table)
            optimizer.iterate(2)  # kernels work on shm-backed storage
        finally:
            arena.close()
