"""Fast-lane smoke tests for the hot-path benchmark harness.

These do not gate performance (the bench-smoke CI lane does); they
assert the harness *machinery* works: the new end-to-end fluid
tick-rate benchmark runs and emits a positive score, results land in
the JSON schema the trend tooling reads, and the gate's ungated set
keeps core-count-dependent benchmarks out of the comparison.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import harness  # noqa: E402


class TestHarnessSmoke:
    def test_fluid_ticks_runs_and_scores(self, tmp_path):
        """End-to-end: `harness.py --only fluid_ticks --quick` writes a
        result file with a positive ticks/sec score."""
        output = tmp_path / "bench.json"
        code = harness.main(["--quick", "--only", "fluid_ticks",
                             "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["mode"] == "quick"
        result = payload["results"]["fluid_ticks"]
        assert result["ops_per_sec"] > 0
        assert result["params"]["ticks_per_op"] > 0
        # the normalization denominator always runs alongside
        assert payload["results"]["calibration"]["ops_per_sec"] > 0

    def test_every_benchmark_is_registered(self):
        assert set(harness.BENCHMARKS) >= {
            "calibration", "iterate_churn_1k", "fluid_ticks",
            "parallel_speedup", "multicore_16proc"}

    def test_ungated_benchmarks_stay_out_of_the_gate(self):
        results = {
            "calibration": {"ops_per_sec": 100.0},
            "fluid_ticks": {"ops_per_sec": 50.0},
            "parallel_speedup": {"ops_per_sec": 10.0},
        }
        scores = harness.relative_scores(results)
        assert "parallel_speedup" not in scores
        assert scores["fluid_ticks"] == pytest.approx(0.5)
        # ...and symmetric on the baseline side: no MISSING regression.
        rows, regressions = harness.compare(results, results,
                                            tolerance=0.3)
        assert regressions == []
        assert all(name != "parallel_speedup" for name, *_ in rows)

    def test_missing_gated_benchmark_counts_as_regression(self):
        baseline = {
            "calibration": {"ops_per_sec": 100.0},
            "fluid_ticks": {"ops_per_sec": 50.0},
        }
        current = {"calibration": {"ops_per_sec": 100.0}}
        _, regressions = harness.compare(current, baseline, tolerance=0.3)
        assert regressions == ["fluid_ticks"]


import report  # noqa: E402
import trend  # noqa: E402


class TestReportRenderer:
    def test_text_table_aligns_columns(self):
        table = report.format_table(["name", "score"],
                                    [["a", 1.5], ["longer", None]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.5" in lines[1] and "-" in lines[2]

    def test_markdown_table_shape(self):
        table = report.format_table(["a", "b"], [[1, 2]], markdown=True)
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert set(lines[1]) <= set("|- ")
        assert lines[2] == "| 1 | 2 |"

    def test_step_summary_written_only_when_env_set(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        assert not report.write_step_summary("nope")
        target = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(target))
        assert report.write_step_summary("# hello")
        assert report.write_step_summary("more")
        assert target.read_text() == "# hello\nmore\n"


class TestCiLaneSurface:
    """The harness features the CI lanes lean on."""

    def test_only_accepts_multiple_names_in_one_flag(self, tmp_path):
        """bench-multicore passes `--only a b c` — one flag, three
        benchmarks (extend keeps repeated --only working too)."""
        output = tmp_path / "bench.json"
        code = harness.main([
            "--quick", "--only", "fluid_ticks", "iterate_churn_1k",
            "--output", str(output)])
        assert code == 0
        results = json.loads(output.read_text())["results"]
        assert {"calibration", "fluid_ticks",
                "iterate_churn_1k"} <= set(results)
        assert "iterate_churn_10k" not in results

    def test_step_summary_table_lands_in_the_run_page(self, tmp_path,
                                                      monkeypatch):
        target = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(target))
        code = harness.main(["--quick", "--only", "fluid_ticks",
                             "--output", str(tmp_path / "bench.json")])
        assert code == 0
        summary = target.read_text()
        assert "fluid_ticks" in summary and "| --- |" in summary

    def test_summary_rows_show_floor_delta_and_ungated_speedups(self):
        results = {
            "calibration": {"ops_per_sec": 100.0},
            "fluid_ticks": {"ops_per_sec": 80.0},
            "brand_new": {"ops_per_sec": 10.0},
            "parallel_speedup": {
                "ops_per_sec": 10.0,
                "speedup_vs_single_core": {"1": 0.9, "4": 2.1}},
        }
        baseline = {
            "calibration": {"ops_per_sec": 100.0},
            "fluid_ticks": {"ops_per_sec": 100.0},
        }
        summary = harness.step_summary_markdown(results, baseline,
                                                0.30, "quick")
        assert "0.7000" in summary          # floor = 1.0 * (1 - 0.30)
        assert "-20.0%" in summary          # 0.8 vs baseline 1.0
        assert "4w=2.10x" in summary        # §6.1 speedups surfaced
        assert "new" in summary

    def test_profile_mode_prints_kernel_breakdown(self, capsys):
        code = harness.profile_churn_iterate(1_000, "quick")
        assert code == 0
        out = capsys.readouterr().out
        for label in ("csr_sync", "price_sums", "link_totals2",
                      "max_link_value", "churn_apply"):
            assert label in out
        assert "ms/op" in out


class TestFabricBenchmarks:
    def test_new_benchmarks_are_registered(self):
        assert {"barrier_step", "parallel_speedup_socket"} \
            <= set(harness.BENCHMARKS)

    def test_barrier_step_is_gated_and_socket_speedup_is_not(self):
        results = {
            "calibration": {"ops_per_sec": 100.0},
            "barrier_step": {"ops_per_sec": 400.0},
            "parallel_speedup": {"ops_per_sec": 10.0},
            "parallel_speedup_socket": {"ops_per_sec": 5.0},
        }
        scores = harness.relative_scores(results)
        assert scores == {"barrier_step": pytest.approx(4.0)}

    def test_barrier_step_runs_and_reports_the_mp_comparison(self):
        result = harness.bench_barrier_step("quick", n_workers=2)
        assert result["ops_per_sec"] > 0
        assert result["mp_barrier_ops_per_sec"] > 0
        assert result["speedup_vs_mp_barrier"] == pytest.approx(
            result["ops_per_sec"] / result["mp_barrier_ops_per_sec"])

    def test_socket_frame_batch_is_registered_and_gated(self):
        assert "socket_frame_batch" in harness.BENCHMARKS
        assert "socket_frame_batch" not in harness.UNGATED

    def test_socket_frame_batch_coalesces_syscalls(self):
        """The tentpole claim in miniature: the batched step exchange
        must issue strictly fewer syscalls per step than per-frame
        sendall/recv, and the per-frame comparison ships alongside."""
        result = harness.bench_socket_frame_batch(
            "quick", n_transfers=4, slice_len=64)
        assert result["ops_per_sec"] > 0
        assert result["per_frame_ops_per_sec"] > 0
        assert result["send_recv_syscalls_per_step"] \
            < result["per_frame_send_recv_syscalls_per_step"]


class TestTrend:
    def artifact(self, tmp_path, run, scores, mode="quick"):
        directory = tmp_path / f"bench-hotpath-{run}-1"
        directory.mkdir()
        results = {name: {"ops_per_sec": ops}
                   for name, ops in scores.items()}
        (directory / "BENCH_hotpath.json").write_text(json.dumps(
            {"schema": 2, "mode": mode, "results": results}))
        return directory

    def test_series_ordered_by_run_number_and_normalized(self, tmp_path):
        # Written out of order; run number must win over mtime.
        self.artifact(tmp_path, 12, {"calibration": 100.0,
                                     "fluid_ticks": 80.0})
        self.artifact(tmp_path, 3, {"calibration": 200.0,
                                    "fluid_ticks": 100.0})
        series = trend.load_series(trend.discover([str(tmp_path)]))
        assert [label for label, _ in series] == ["run 3", "run 12"]
        assert series[0][1]["fluid_ticks"] == pytest.approx(0.5)
        assert series[1][1]["fluid_ticks"] == pytest.approx(0.8)

    def test_run_numbers_sort_numerically_across_digit_boundaries(
            self, tmp_path):
        for run in (99, 105):
            self.artifact(tmp_path, run, {"calibration": 100.0,
                                          "fluid_ticks": float(run)})
        series = trend.load_series(trend.discover([str(tmp_path)]))
        assert [label for label, _ in series] == ["run 99", "run 105"]
        assert trend.run_number("bench-hotpath-105-1") \
            > trend.run_number("bench-hotpath-99-2")

    def test_other_modes_and_junk_files_are_skipped(self, tmp_path):
        self.artifact(tmp_path, 1, {"calibration": 1.0}, mode="full")
        (tmp_path / "junk.json").write_text("{not json")
        assert trend.load_series(trend.discover([str(tmp_path)])) == []

    def test_committed_baseline_layout_is_accepted(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"schema": 2, "modes": {
            "quick": {"results": {
                "calibration": {"ops_per_sec": 100.0},
                "fluid_ticks": {"ops_per_sec": 25.0}}}}}))
        series = trend.load_series([baseline])
        assert series == [("baseline", {"fluid_ticks": pytest.approx(0.25)})]

    def test_render_flags_scores_below_the_gate_floor(self, tmp_path):
        import io
        series = [("run 1", {"fluid_ticks": 1.0}),
                  ("run 2", {"fluid_ticks": 0.5})]
        out = io.StringIO()
        breaching = trend.render(series, {"fluid_ticks": 1.0},
                                 tolerance=0.3, out=out)
        assert breaching == ["fluid_ticks"]
        assert "fluid_ticks" in out.getvalue()

    def test_main_end_to_end(self, tmp_path, capsys):
        self.artifact(tmp_path, 1, {"calibration": 100.0,
                                    "fluid_ticks": 50.0})
        self.artifact(tmp_path, 2, {"calibration": 100.0,
                                    "fluid_ticks": 60.0})
        code = trend.main([str(tmp_path),
                           "--baseline", str(tmp_path / "missing.json")])
        assert code == 0
        captured = capsys.readouterr().out
        assert "fluid_ticks" in captured and "run 1 .. run 2" in captured
