"""Fast-lane smoke tests for the hot-path benchmark harness.

These do not gate performance (the bench-smoke CI lane does); they
assert the harness *machinery* works: the new end-to-end fluid
tick-rate benchmark runs and emits a positive score, results land in
the JSON schema the trend tooling reads, and the gate's ungated set
keeps core-count-dependent benchmarks out of the comparison.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import harness  # noqa: E402


class TestHarnessSmoke:
    def test_fluid_ticks_runs_and_scores(self, tmp_path):
        """End-to-end: `harness.py --only fluid_ticks --quick` writes a
        result file with a positive ticks/sec score."""
        output = tmp_path / "bench.json"
        code = harness.main(["--quick", "--only", "fluid_ticks",
                             "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["mode"] == "quick"
        result = payload["results"]["fluid_ticks"]
        assert result["ops_per_sec"] > 0
        assert result["params"]["ticks_per_op"] > 0
        # the normalization denominator always runs alongside
        assert payload["results"]["calibration"]["ops_per_sec"] > 0

    def test_every_benchmark_is_registered(self):
        assert set(harness.BENCHMARKS) >= {
            "calibration", "iterate_churn_1k", "fluid_ticks",
            "parallel_speedup", "multicore_16proc"}

    def test_ungated_benchmarks_stay_out_of_the_gate(self):
        results = {
            "calibration": {"ops_per_sec": 100.0},
            "fluid_ticks": {"ops_per_sec": 50.0},
            "parallel_speedup": {"ops_per_sec": 10.0},
        }
        scores = harness.relative_scores(results)
        assert "parallel_speedup" not in scores
        assert scores["fluid_ticks"] == pytest.approx(0.5)
        # ...and symmetric on the baseline side: no MISSING regression.
        rows, regressions = harness.compare(results, results,
                                            tolerance=0.3)
        assert regressions == []
        assert all(name != "parallel_speedup" for name, *_ in rows)

    def test_missing_gated_benchmark_counts_as_regression(self):
        baseline = {
            "calibration": {"ops_per_sec": 100.0},
            "fluid_ticks": {"ops_per_sec": 50.0},
        }
        current = {"calibration": {"ops_per_sec": 100.0}}
        _, regressions = harness.compare(current, baseline, tolerance=0.3)
        assert regressions == ["fluid_ticks"]
