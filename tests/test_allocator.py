"""FlowtuneAllocator: notification thresholds, headroom, churn."""

import numpy as np
import pytest

from repro.core import (FlowtuneAllocator, GradientOptimizer, LinkSet,
                        NullNormalizer, UNormalizer)


def make_allocator(**kwargs):
    return FlowtuneAllocator(LinkSet([10.0, 10.0]), **kwargs)


class TestLifecycle:
    def test_new_flow_always_notified(self):
        allocator = make_allocator()
        allocator.flowlet_start("a", [0])
        result = allocator.iterate(5)
        assert any(u.flow_id == "a" for u in result.updates)

    def test_flowlet_end_removes_state(self):
        allocator = make_allocator()
        allocator.flowlet_start("a", [0])
        allocator.iterate(2)
        allocator.flowlet_end("a")
        assert "a" not in allocator
        assert allocator.current_rates() == {}

    def test_duplicate_start_raises(self):
        allocator = make_allocator()
        allocator.flowlet_start("a", [0])
        with pytest.raises(KeyError):
            allocator.flowlet_start("a", [1])

    def test_result_vector_aligned_with_ids(self):
        allocator = make_allocator()
        allocator.flowlet_start("a", [0])
        allocator.flowlet_start("b", [1])
        result = allocator.iterate(3)
        for flow_id, rate in zip(result.flow_ids, result.rate_vector):
            assert result.rates[flow_id] == float(rate)


class TestThreshold:
    def test_headroom_reduces_effective_capacity(self):
        allocator = make_allocator(update_threshold=0.05)
        assert np.allclose(allocator.table.links.capacity, 9.5)

    def test_steady_state_sends_no_updates(self):
        allocator = make_allocator(update_threshold=0.01)
        allocator.flowlet_start("a", [0])
        allocator.flowlet_start("b", [0])
        allocator.iterate(100)
        result = allocator.iterate(1)
        assert result.updates == []

    def test_churn_triggers_updates_for_affected_flows(self):
        allocator = make_allocator(update_threshold=0.01)
        allocator.flowlet_start("a", [0])
        allocator.flowlet_start("b", [0])
        allocator.iterate(100)
        allocator.flowlet_start("c", [0])
        result = allocator.iterate(20)
        notified = {u.flow_id for u in result.updates}
        assert "c" in notified          # the new flow
        assert {"a", "b"} & notified    # rates moved by ~1/3

    def test_higher_threshold_sends_fewer_updates(self):
        def count_updates(threshold):
            allocator = make_allocator(update_threshold=threshold)
            total = 0
            for i in range(12):
                allocator.flowlet_start(i, [0])
                total += len(allocator.iterate(3).updates)
            return total

        assert count_updates(0.2) <= count_updates(0.01)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            make_allocator(update_threshold=1.0)

    def test_zero_threshold_notifies_every_change(self):
        allocator = make_allocator(update_threshold=0.0)
        allocator.flowlet_start("a", [0])
        allocator.iterate(1)
        allocator.flowlet_start("b", [0])
        result = allocator.iterate(1)
        assert {u.flow_id for u in result.updates} == {"a", "b"}


class TestConfigurability:
    def test_custom_optimizer(self):
        allocator = make_allocator(optimizer_cls=GradientOptimizer,
                                   optimizer_kwargs={"gamma": 0.01})
        allocator.flowlet_start("a", [0])
        rates = [allocator.iterate(200).rates["a"] for _ in range(3)]
        assert rates[-1] == pytest.approx(9.9, rel=0.05)

    def test_custom_normalizer(self):
        allocator = make_allocator(normalizer=NullNormalizer())
        assert allocator.normalizer.name == "none"

    def test_u_norm_keeps_relative_rates(self):
        allocator = FlowtuneAllocator(LinkSet([10.0]),
                                      normalizer=UNormalizer(),
                                      update_threshold=0.0)
        allocator.flowlet_start("light", [0], weight=1.0)
        allocator.flowlet_start("heavy", [0], weight=3.0)
        result = allocator.iterate(200)
        assert result.rates["heavy"] == pytest.approx(
            3 * result.rates["light"], rel=1e-3)

    def test_raw_rates_exposed(self):
        allocator = make_allocator()
        allocator.flowlet_start("a", [0])
        allocator.iterate(10)
        assert "a" in allocator.raw_rates()

    def test_feasible_after_normalization(self):
        allocator = make_allocator(update_threshold=0.01)
        for i in range(9):
            allocator.flowlet_start(i, [i % 2])
        result = allocator.iterate(5)
        load = allocator.table.link_totals(np.asarray(result.rate_vector))
        assert np.all(load <= allocator.full_links.capacity + 1e-9)
