"""FlowtuneAllocator: notification thresholds, headroom, churn."""

import numpy as np
import pytest

from repro.core import (FlowtuneAllocator, GradientOptimizer, LinkSet,
                        NullNormalizer, UNormalizer)


def make_allocator(**kwargs):
    return FlowtuneAllocator(LinkSet([10.0, 10.0]), **kwargs)


class ScriptedOptimizer:
    """Test double returning a controllable rate per flow id, so
    notification logic can be exercised with exact rate sequences."""

    def __init__(self, table, utility=None):
        self.table = table
        self.rates = {}
        self.default = 1.0

    def iterate(self, n=1):
        return np.array([float(self.rates.get(fid, self.default))
                         for fid in self.table.flow_ids()])

    rate_update = iterate


def make_scripted(threshold=0.5):
    allocator = FlowtuneAllocator(LinkSet([10.0, 10.0]),
                                  optimizer_cls=ScriptedOptimizer,
                                  normalizer=NullNormalizer(),
                                  update_threshold=threshold)
    return allocator, allocator.optimizer


class TestLifecycle:
    def test_new_flow_always_notified(self):
        allocator = make_allocator()
        allocator.flowlet_start("a", [0])
        result = allocator.iterate(5)
        assert any(u.flow_id == "a" for u in result.updates)

    def test_flowlet_end_removes_state(self):
        allocator = make_allocator()
        allocator.flowlet_start("a", [0])
        allocator.iterate(2)
        allocator.flowlet_end("a")
        assert "a" not in allocator
        assert allocator.current_rates() == {}

    def test_duplicate_start_raises(self):
        allocator = make_allocator()
        allocator.flowlet_start("a", [0])
        with pytest.raises(KeyError):
            allocator.flowlet_start("a", [1])

    def test_result_vector_aligned_with_ids(self):
        allocator = make_allocator()
        allocator.flowlet_start("a", [0])
        allocator.flowlet_start("b", [1])
        result = allocator.iterate(3)
        for flow_id, rate in zip(result.flow_ids, result.rate_vector):
            assert result.rates[flow_id] == float(rate)


class TestThreshold:
    def test_headroom_reduces_effective_capacity(self):
        allocator = make_allocator(update_threshold=0.05)
        assert np.allclose(allocator.table.links.capacity, 9.5)

    def test_steady_state_sends_no_updates(self):
        allocator = make_allocator(update_threshold=0.01)
        allocator.flowlet_start("a", [0])
        allocator.flowlet_start("b", [0])
        allocator.iterate(100)
        result = allocator.iterate(1)
        assert result.updates == []

    def test_churn_triggers_updates_for_affected_flows(self):
        allocator = make_allocator(update_threshold=0.01)
        allocator.flowlet_start("a", [0])
        allocator.flowlet_start("b", [0])
        allocator.iterate(100)
        allocator.flowlet_start("c", [0])
        result = allocator.iterate(20)
        notified = {u.flow_id for u in result.updates}
        assert "c" in notified          # the new flow
        assert {"a", "b"} & notified    # rates moved by ~1/3

    def test_higher_threshold_sends_fewer_updates(self):
        def count_updates(threshold):
            allocator = make_allocator(update_threshold=threshold)
            total = 0
            for i in range(12):
                allocator.flowlet_start(i, [0])
                total += len(allocator.iterate(3).updates)
            return total

        assert count_updates(0.2) <= count_updates(0.01)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            make_allocator(update_threshold=1.0)

    def test_zero_threshold_notifies_every_change(self):
        allocator = make_allocator(update_threshold=0.0)
        allocator.flowlet_start("a", [0])
        allocator.iterate(1)
        allocator.flowlet_start("b", [0])
        result = allocator.iterate(1)
        assert {u.flow_id for u in result.updates} == {"a", "b"}


class TestNotificationEdgeCases:
    """The §6.4 threshold filter under churn, driven by exact rates."""

    def test_readded_flow_with_same_rate_is_renotified(self):
        allocator, opt = make_scripted(threshold=0.5)
        opt.rates["a"] = 1.0
        allocator.flowlet_start("a", [0])
        allocator.iterate(1)
        assert allocator.iterate(1).updates == []   # steady state
        allocator.flowlet_end("a")
        allocator.flowlet_start("a", [0])           # same id, same rate
        result = allocator.iterate(1)
        assert [u.flow_id for u in result.updates] == ["a"]

    def test_zero_to_positive_transition_notified(self):
        allocator, opt = make_scripted(threshold=0.5)
        opt.rates["a"] = 0.0
        allocator.flowlet_start("a", [0])
        result = allocator.iterate(1)
        assert [u.rate for u in result.updates] == [0.0]
        assert allocator.iterate(1).updates == []
        # A relative threshold can never fire from last=0; the
        # explicit zero->positive rule must.
        opt.rates["a"] = 1e-6
        result = allocator.iterate(1)
        assert [u.flow_id for u in result.updates] == ["a"]
        assert allocator.current_rates()["a"] == 1e-6

    def test_within_threshold_move_suppressed(self):
        allocator, opt = make_scripted(threshold=0.5)
        opt.rates["a"] = 1.0
        allocator.flowlet_start("a", [0])
        allocator.iterate(1)
        opt.rates["a"] = 1.4                        # +40% < 50%
        assert allocator.iterate(1).updates == []
        opt.rates["a"] = 2.2                        # beyond 50% of 1.0
        assert [u.rate for u in allocator.iterate(1).updates] == [2.2]

    def test_zero_threshold_unchanged_rate_not_renotified(self):
        allocator, opt = make_scripted(threshold=0.0)
        opt.rates["a"] = 2.0
        allocator.flowlet_start("a", [0])
        allocator.iterate(1)
        assert allocator.iterate(1).updates == []   # identical rate
        opt.rates["a"] = 2.0 + 1e-12                # any move notifies
        assert len(allocator.iterate(1).updates) == 1

    def test_last_sent_alignment_survives_swap_remove(self):
        allocator, opt = make_scripted(threshold=0.5)
        for fid, rate in zip("abcd", (1.0, 2.0, 3.0, 4.0)):
            opt.rates[fid] = rate
            allocator.flowlet_start(fid, [0])
        allocator.iterate(1)
        # Removing "b" swap-moves "d" into its slot; every survivor's
        # last_sent must move with it, so unchanged rates stay silent.
        allocator.flowlet_end("b")
        assert allocator.iterate(1).updates == []
        assert allocator.current_rates() == {"a": 1.0, "c": 3.0, "d": 4.0}
        opt.rates["d"] = 40.0
        result = allocator.iterate(1)
        assert [u.flow_id for u in result.updates] == ["d"]

    def test_update_indices_align_with_flow_ids(self):
        allocator, opt = make_scripted(threshold=0.5)
        for fid in "abc":
            allocator.flowlet_start(fid, [0])
        result = allocator.iterate(1)
        assert [result.flow_ids[i] for i in result.update_indices] == \
            [u.flow_id for u in result.updates]

    def test_apply_churn_restarts_id_in_both_lists(self):
        allocator, opt = make_scripted(threshold=0.5)
        opt.rates["a"] = 1.0
        allocator.apply_churn(starts=[("a", [0])])
        allocator.iterate(1)
        assert allocator.iterate(1).updates == []
        allocator.apply_churn(starts=[("a", [1])], ends=["a"])
        result = allocator.iterate(1)
        assert [u.flow_id for u in result.updates] == ["a"]
        assert list(allocator.table.route_of("a")) == [1]

    def test_apply_churn_batch_matches_sequential(self):
        """Batched churn must land in the same positional order (and
        therefore the same rates) as the per-event calls it replaces."""
        batched = make_allocator()
        sequential = make_allocator()
        for i in range(8):
            batched.flowlet_start(i, [i % 2])
            sequential.flowlet_start(i, [i % 2])
        batched.iterate(3)
        sequential.iterate(3)
        sequential.flowlet_end(2)
        sequential.flowlet_end(5)
        for i in (8, 9):
            sequential.flowlet_start(i, [i % 2])
        batched.apply_churn(starts=[(8, [0]), (9, [1])], ends=[2, 5])
        r_batched = batched.iterate(2)
        r_sequential = sequential.iterate(2)
        assert r_batched.flow_ids == r_sequential.flow_ids
        assert np.array_equal(np.asarray(r_batched.rate_vector),
                              np.asarray(r_sequential.rate_vector))


class TestConfigurability:
    def test_custom_optimizer(self):
        allocator = make_allocator(optimizer_cls=GradientOptimizer,
                                   optimizer_kwargs={"gamma": 0.01})
        allocator.flowlet_start("a", [0])
        rates = [allocator.iterate(200).rates["a"] for _ in range(3)]
        assert rates[-1] == pytest.approx(9.9, rel=0.05)

    def test_custom_normalizer(self):
        allocator = make_allocator(normalizer=NullNormalizer())
        assert allocator.normalizer.name == "none"

    def test_u_norm_keeps_relative_rates(self):
        allocator = FlowtuneAllocator(LinkSet([10.0]),
                                      normalizer=UNormalizer(),
                                      update_threshold=0.0)
        allocator.flowlet_start("light", [0], weight=1.0)
        allocator.flowlet_start("heavy", [0], weight=3.0)
        result = allocator.iterate(200)
        assert result.rates["heavy"] == pytest.approx(
            3 * result.rates["light"], rel=1e-3)

    def test_raw_rates_exposed(self):
        allocator = make_allocator()
        allocator.flowlet_start("a", [0])
        allocator.iterate(10)
        assert "a" in allocator.raw_rates()

    def test_feasible_after_normalization(self):
        allocator = make_allocator(update_threshold=0.01)
        for i in range(9):
            allocator.flowlet_start(i, [i % 2])
        result = allocator.iterate(5)
        load = allocator.table.link_totals(np.asarray(result.rate_vector))
        assert np.all(load <= allocator.full_links.capacity + 1e-9)


class TestAllocationResultLaziness:
    """iterate() must not rebuild the id list; the result renders ids
    lazily from the table's positionally-cached column."""

    def make_allocator(self, n=30):
        links = LinkSet(np.full(8, 10.0))
        allocator = FlowtuneAllocator(links, update_threshold=0.01)
        allocator.apply_churn(starts=[(("f", i), [i % 8])
                                      for i in range(n)])
        return allocator

    def test_flow_ids_materializes_as_a_stable_list(self):
        allocator = self.make_allocator()
        result = allocator.iterate()
        ids = result.flow_ids
        assert isinstance(ids, list)
        assert ids == [("f", i) for i in range(30)]
        assert result.flow_ids is ids  # cached, not rebuilt

    def test_updates_and_rates_follow_positional_order_under_churn(self):
        allocator = self.make_allocator()
        allocator.iterate()
        # Swap-removes scramble positions; the rendered ids must track.
        allocator.apply_churn(ends=[("f", 0), ("f", 13)],
                              starts=[(("f", 50), [2], 2.0)])
        result = allocator.iterate()
        assert set(result.rates) == \
            {("f", i) for i in range(1, 30) if i != 13} | {("f", 50)}
        for update in result.updates:
            assert result.rates[update.flow_id] == \
                pytest.approx(update.rate)
        # the new flow is always notified
        assert ("f", 50) in {u.flow_id for u in result.updates}

    def test_result_consumed_within_the_tick_is_consistent(self):
        """The documented contract: materialize what you need before
        the next churn batch (as every driver in-repo does)."""
        allocator = self.make_allocator(n=5)
        result = allocator.iterate()
        updates = result.updates     # materialized now
        ids = result.flow_ids
        allocator.apply_churn(ends=[("f", 0)])
        assert ids == [("f", i) for i in range(5)]
        assert len(updates) == 5
