"""The always-on allocator service: wire schema, churn queue, server.

Three layers, tested bottom-up: the binary codec (round-trips, strict
rejection of skewed/malformed frames), the coalescing churn queue
(batch semantics equal to direct apply_churn), and the live service —
manual-mode determinism against an in-process allocator, auto-mode
pushes, the auth/validation/dead-client drop paths, and a real
two-process run via ``python -m repro.service``.
"""

import struct
import time

import numpy as np
import pytest

from repro import (FlowtuneAllocator, FlowtuneClient, FlowtuneService,
                   TwoTierClos)
from repro.core.allocator import ChurnQueue
from repro.parallel.fabric import FabricError, _connect_retry, send_frame
from repro.service import ServiceError, WireError, spawn_service
from repro.service import wire
from repro.service.wire import TAG_SERVICE, FrameBuffer


@pytest.fixture
def topo():
    return TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)


def triangle_churn(topo):
    """Three flows sharing links (so rates interact), plus a follow-up
    batch that restarts one and ends another."""
    first = [(0, topo.route(0, 4), 1.0), (1, topo.route(1, 5), 1.0),
             (2, topo.route(0, 5), 2.0)]
    second_starts = [(3, topo.route(2, 6), 1.0), (1, topo.route(1, 6), 1.0)]
    second_ends = [2, 1]
    return first, second_starts, second_ends


# ----------------------------------------------------------------------
# wire codec
# ----------------------------------------------------------------------
class TestWireCodec:
    def test_start_round_trip(self):
        flows = [(7, np.array([1, 2, 3], dtype=np.uint32), 2.5),
                 (2**40, np.array([9], dtype=np.uint32), 1.0)]
        kind, decoded = wire.decode_message(wire.encode_start(flows))
        assert kind == wire.START
        assert len(decoded) == 2
        for (fid, route, weight), (efid, eroute, eweight) in zip(decoded,
                                                                 flows):
            assert fid == efid and weight == eweight
            np.testing.assert_array_equal(route, eroute)

    def test_end_round_trip(self):
        kind, ids = wire.decode_message(wire.encode_end([3, 1, 2**50]))
        assert kind == wire.END
        assert ids == [3, 1, 2**50]

    def test_usage_round_trip(self):
        reports = [(5, 1234.0), (6, 7.5e9)]
        kind, decoded = wire.decode_message(wire.encode_usage(reports))
        assert kind == wire.USAGE
        assert decoded == reports

    def test_rates_round_trip_preserves_float64(self):
        rates = [1.0 / 3.0, 9.9, 1e-17]
        payload = wire.encode_rates(4, 5, [1, 2, 3], rates)
        kind, (base, seq, ids, vals) = wire.decode_message(payload)
        assert kind == wire.RATES and (base, seq) == (4, 5)
        assert ids.tolist() == [1, 2, 3]
        np.testing.assert_array_equal(vals, np.float64(rates))

    def test_snapshot_step_error_round_trip(self):
        kind, (seq, ids, vals) = wire.decode_message(
            wire.encode_snapshot(9, [1], [2.0]))
        assert kind == wire.SNAPSHOT and seq == 9
        assert wire.decode_message(wire.encode_step(17)) == (wire.STEP, 17)
        assert wire.decode_message(wire.encode_error("boom")) == (
            wire.ERROR, "boom")
        for payload, kind in ((wire.encode_hello(), wire.HELLO),
                              (wire.encode_bye(), wire.BYE),
                              (wire.encode_shutdown(), wire.SHUTDOWN),
                              (wire.encode_replay_done(),
                               wire.REPLAY_DONE)):
            assert wire.decode_message(payload) == (kind, None)

    def test_version_skew_rejected(self):
        payload = bytearray(wire.encode_step(1))
        payload[0] = wire.WIRE_VERSION + 1
        with pytest.raises(WireError, match="version skew"):
            wire.decode_message(payload)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireError, match="unknown message kind"):
            wire.decode_message(struct.pack("!BB", wire.WIRE_VERSION, 200))

    def test_truncated_frames_rejected(self):
        for full in (wire.encode_start([(1, [2, 3], 1.0)]),
                     wire.encode_rates(0, 1, [1, 2], [0.5, 0.25]),
                     wire.encode_end([4]), wire.encode_step(3)):
            for cut in range(1, len(full)):
                with pytest.raises(WireError):
                    wire.decode_message(full[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(WireError, match="trailing"):
            wire.decode_message(wire.encode_step(3) + b"\0")

    def test_count_overstatement_rejected(self):
        payload = bytearray(wire.encode_end([1, 2]))
        # Bump the count field without supplying the extra id.
        struct.pack_into("!I", payload, 2, 3)
        with pytest.raises(WireError, match="truncated"):
            wire.decode_message(payload)

    def test_paper_wire_bytes_matches_control_plane(self):
        from repro.control.messages import (FLOWLET_START_BYTES,
                                            batched_wire_bytes)
        assert wire.paper_wire_bytes(wire.START, 5) == batched_wire_bytes(
            [FLOWLET_START_BYTES] * 5)
        assert wire.paper_wire_bytes(wire.HELLO, 5) == 0
        assert wire.paper_wire_bytes(wire.RATES, 0) == 0


class TestFrameBuffer:
    def test_byte_at_a_time_reassembly(self):
        payloads = [wire.encode_hello(), wire.encode_step(4),
                    wire.encode_end([1, 2, 3])]
        stream = b"".join(struct.pack("!II", len(p), TAG_SERVICE) + p
                          for p in payloads)
        buf = FrameBuffer()
        frames = []
        for i in range(len(stream)):
            frames.extend(buf.feed(stream[i:i + 1]))
        assert [p for _, p in frames] == payloads
        assert len(buf) == 0

    def test_oversized_frame_rejected(self):
        buf = FrameBuffer(max_frame=64)
        with pytest.raises(WireError, match="exceeds"):
            buf.feed(struct.pack("!II", 65, TAG_SERVICE))


# ----------------------------------------------------------------------
# the churn queue
# ----------------------------------------------------------------------
class TestChurnQueue:
    def test_start_then_end_vanishes(self):
        q = ChurnQueue()
        q.push_start(1, [0, 1])
        q.push_end(1)
        assert q.drain() == ([], [])
        assert not q

    def test_end_then_start_is_restart(self):
        q = ChurnQueue()
        q.push_end(1)
        q.push_start(1, [2, 3], 1.5)
        starts, ends = q.drain()
        assert ends == [1]
        assert starts == [(1, [2, 3], 1.5)]

    def test_repeated_start_last_route_wins(self):
        q = ChurnQueue()
        q.push_start(1, [0])
        q.push_start(1, [5], 2.0)
        assert q.drain() == ([(1, [5], 2.0)], [])

    def test_plain_end_and_idempotence(self):
        q = ChurnQueue()
        q.push_end(1)
        q.push_end(1)
        assert q.drain() == ([], [1])

    def test_restart_then_end_is_plain_end(self):
        q = ChurnQueue()
        q.push_end(1)
        q.push_start(1, [0])
        q.push_end(1)
        assert q.drain() == ([], [1])

    def test_drain_clears_and_len_tracks(self):
        q = ChurnQueue()
        q.push_start(1, [0])
        q.push_end(2)
        assert len(q) == 2 and bool(q)
        q.drain()
        assert len(q) == 0 and not q

    def test_queue_equals_direct_apply_churn(self, topo):
        """Feeding a churn trace through the queue produces the same
        allocator state as the direct apply_churn calls."""
        first, second_starts, second_ends = triangle_churn(topo)
        direct = FlowtuneAllocator(topo.link_set())
        queued = FlowtuneAllocator(topo.link_set())
        q = ChurnQueue()

        direct.apply_churn(starts=first)
        for fid, route, weight in first:
            q.push_start(fid, route, weight)
        queued.apply_churn(*q.drain())
        np.testing.assert_array_equal(direct.iterate(20).rate_vector,
                                      queued.iterate(20).rate_vector)

        direct.apply_churn(starts=second_starts, ends=second_ends)
        for fid in second_ends:
            q.push_end(fid)
        for fid, route, weight in second_starts:
            q.push_start(fid, route, weight)
        queued.apply_churn(*q.drain())
        res_d = direct.iterate(20)
        res_q = queued.iterate(20)
        assert res_d.rates == res_q.rates


# ----------------------------------------------------------------------
# the live service (in-process)
# ----------------------------------------------------------------------
class TestServiceInProcess:
    def test_manual_mode_equals_in_process_allocator(self, topo):
        """The acceptance bar: same churn trace + same iterate counts
        over the wire converge to the in-process rates within 1e-9
        (they agree bitwise: both run the identical float pipeline)."""
        first, second_starts, second_ends = triangle_churn(topo)
        ref = FlowtuneAllocator(topo.link_set())
        with FlowtuneService(topo, mode="manual") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.apply_churn(starts=first)
                snap = cli.step(50)
                ref.apply_churn(starts=first)
                expected = ref.iterate(50).rates
                assert snap.keys() == expected.keys()
                for fid, rate in expected.items():
                    assert abs(snap[fid] - rate) < 1e-9

                cli.apply_churn(starts=second_starts, ends=second_ends)
                snap = cli.step(30)
                ref.apply_churn(starts=second_starts, ends=second_ends)
                expected = ref.iterate(30).rates
                assert snap.keys() == expected.keys()
                for fid, rate in expected.items():
                    assert abs(snap[fid] - rate) < 1e-9

    def test_auto_mode_pushes_rates(self, topo):
        with FlowtuneService(topo, mode="auto") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_start(7, topo.route(0, 4))
                rates = cli.wait_for_rates([7], timeout=10.0)
                assert rates[7] > 0
                assert svc.stats["paper_bytes_out"] > 0

    def test_two_clients_namespaced_and_updated(self, topo):
        with FlowtuneService(topo, mode="auto") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as a, \
                    FlowtuneClient(svc.address, svc.token_hex) as b:
                assert a.client_id != b.client_id
                a.flowlet_start(0, topo.route(0, 4))
                b.flowlet_start(0, topo.route(1, 5))  # same local fid
                ra = a.wait_for_rates([0], timeout=10.0)
                rb = b.wait_for_rates([0], timeout=10.0)
                assert ra[0] > 0 and rb[0] > 0
                assert svc.n_flows == 2

    def test_usage_reports_recorded(self, topo):
        with FlowtuneService(topo, mode="manual") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_start(3, topo.route(0, 4))
                cli.report_usage([(3, 4096.0)])
                cli.step(1)  # round-trip barrier: usage frame arrived
                assert svc.usage_bytes(cli.client_id, 3) == 4096.0

    def test_duplicate_start_rejected(self, topo):
        with FlowtuneService(topo, mode="manual") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_start(1, topo.route(0, 4))
                cli.flowlet_start(1, topo.route(1, 5))
                with pytest.raises(ServiceError, match="duplicate"):
                    cli.poll(timeout=10.0)

    def test_unknown_end_rejected(self, topo):
        with FlowtuneService(topo, mode="manual") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_end(99)
                with pytest.raises(ServiceError, match="unknown"):
                    cli.poll(timeout=10.0)

    def test_bad_token_dropped_silently(self, topo):
        with FlowtuneService(topo, mode="manual") as svc:
            with pytest.raises((FabricError, TimeoutError)):
                FlowtuneClient(svc.address, b"\0" * 16, timeout=2.0)

    def test_malformed_frame_drops_connection(self, topo):
        """A frame that fails to decode closes the connection — the
        stream can't be trusted after it."""
        with FlowtuneService(topo, mode="manual") as svc:
            sock = _connect_retry(svc.address)
            try:
                sock.sendall(bytes.fromhex(svc.token_hex))
                send_frame(sock, TAG_SERVICE, b"\xff\xff garbage")
                sock.settimeout(10.0)
                # Server sends best-effort ERROR then closes; either
                # way recv eventually reports EOF.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if sock.recv(4096) == b"":
                        break
                else:  # pragma: no cover
                    pytest.fail("connection not closed")
            finally:
                sock.close()

    def test_wrong_wire_version_rejected(self, topo):
        with FlowtuneService(topo, mode="manual") as svc:
            sock = _connect_retry(svc.address)
            try:
                sock.sendall(bytes.fromhex(svc.token_hex))
                skewed = bytearray(wire.encode_hello())
                skewed[0] = wire.WIRE_VERSION + 1
                send_frame(sock, TAG_SERVICE, bytes(skewed))
                sock.settimeout(10.0)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if sock.recv(4096) == b"":
                        break
                else:  # pragma: no cover
                    pytest.fail("connection not closed")
            finally:
                sock.close()

    def test_dead_client_flows_are_ended(self, topo):
        """Hard-closing a client's socket ends its flows (the
        poisoned/dead-connection path), so capacity returns to the
        survivors."""
        with FlowtuneService(topo, mode="auto") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as survivor:
                survivor.flowlet_start(0, topo.route(0, 4))
                victim = FlowtuneClient(svc.address, svc.token_hex)
                victim.flowlet_start(0, topo.route(0, 4))
                survivor.wait_for_rates([0], timeout=10.0)
                victim.wait_for_rates([0], timeout=10.0)
                assert svc.n_flows == 2
                # Kill without BYE: RST/EOF is all the server sees.
                victim._sock.close()
                victim._closed = True
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline and svc.n_flows != 1:
                    survivor.poll(timeout=0.05)
                assert svc.n_flows == 1
                # The survivor is re-notified of the freed capacity.
                rates = survivor.wait_for_rates([0], timeout=10.0)
                assert rates[0] > 5.0

    def test_sequence_skew_detected_by_client(self, topo):
        """Dropping a delta frame breaks the chain — the client must
        refuse to apply later deltas rather than compound the gap."""
        with FlowtuneService(topo, mode="auto") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_start(0, topo.route(0, 4))
                cli.wait_for_rates([0], timeout=10.0)
                cli._last_seq += 7  # simulate a missed RATES frame
                cli.flowlet_start(1, topo.route(1, 5))
                with pytest.raises(WireError, match="sequence skew"):
                    cli.poll(timeout=10.0)

    def test_non_service_tag_rejected(self, topo):
        with FlowtuneService(topo, mode="manual") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                send_frame(cli._sock, 1, b"\x80\x04N.")  # TAG_CTRL pickle
                deadline = time.monotonic() + 10.0
                with pytest.raises((FabricError, ServiceError)):
                    while time.monotonic() < deadline:
                        cli.poll(timeout=0.1)
                    raise TimeoutError  # pragma: no cover

    def test_shutdown_frame_stops_service(self, topo):
        svc = FlowtuneService(topo, mode="manual")
        svc.start()
        with FlowtuneClient(svc.address, svc.token_hex) as cli:
            cli.shutdown_service()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and svc._thread.is_alive():
            time.sleep(0.01)
        assert not svc._thread.is_alive()
        svc.close()


# ----------------------------------------------------------------------
# two-process (the deployment model, end to end)
# ----------------------------------------------------------------------
class TestTwoProcess:
    def test_two_process_smoke(self, topo):
        """Spawn `python -m repro.service`, converge over the real
        socket, match the in-process allocator, shut down cleanly."""
        first, second_starts, second_ends = triangle_churn(topo)
        ref = FlowtuneAllocator(topo.link_set())
        with spawn_service(racks=2, hosts_per_rack=4, spines=2,
                           mode="manual") as handle:
            with FlowtuneClient(handle.address, handle.token_hex) as cli:
                cli.apply_churn(starts=first)
                snap = cli.step(40)
                ref.apply_churn(starts=first)
                expected = ref.iterate(40).rates
                assert snap.keys() == expected.keys()
                for fid, rate in expected.items():
                    assert abs(snap[fid] - rate) < 1e-9
                cli.shutdown_service()
            handle.process.wait(timeout=10.0)
            assert handle.process.returncode == 0
