"""Cross-module integration: full experiment pipelines at small scale."""

import pytest

from repro.analysis import (flow_rates, normalized_fcts,
                            relative_fairness, speedup_by_bin)
from repro.sim.experiments import (convergence_experiment, fct_experiment)

ALL_SCHEMES = ("tcp", "dctcp", "pfabric", "sfqcodel", "xcp", "flowtune")


@pytest.mark.slow
class TestFctPipeline:
    @pytest.fixture(scope="class")
    def runs(self, request):
        results = {}
        for scheme in ("flowtune", "dctcp", "pfabric"):
            net, stats, duration = fct_experiment(
                scheme, workload="web", load=0.5, duration=2.5e-3,
                drain=5e-3, seed=11)
            results[scheme] = (net, stats, duration)
        return results

    def test_all_flows_complete(self, runs):
        for scheme, (net, stats, _) in runs.items():
            assert stats.completion_fraction() > 0.97, scheme

    def test_same_seed_same_flow_population(self, runs):
        ids = [set(stats.flows) for _, stats, _ in runs.values()]
        assert ids[0] == ids[1] == ids[2]

    def test_flowtune_beats_dctcp_on_short_flows(self, runs):
        net_ft, stats_ft, _ = runs["flowtune"]
        net_d, stats_d, _ = runs["dctcp"]
        speedups = speedup_by_bin(
            normalized_fcts(stats_d, net_d.topology),
            normalized_fcts(stats_ft, net_ft.topology))
        assert speedups.get("1 packet", 99.0) > 1.5

    def test_flowtune_and_pfabric_low_queueing(self, runs):
        _, stats_ft, _ = runs["flowtune"]
        _, stats_d, _ = runs["dctcp"]
        assert stats_ft.p99_queue_delay(4) < stats_d.p99_queue_delay(4)

    def test_flowtune_near_zero_drops(self, runs):
        net_ft, stats_ft, duration = runs["flowtune"]
        assert stats_ft.drop_gbps(net_ft.links, duration) < 0.5

    def test_fairness_relative_to_flowtune(self, runs):
        _, stats_ft, _ = runs["flowtune"]
        _, stats_d, _ = runs["dctcp"]
        _, stats_p, _ = runs["pfabric"]
        dctcp_gap = relative_fairness(flow_rates(stats_d),
                                      flow_rates(stats_ft))
        pfabric_gap = relative_fairness(flow_rates(stats_p),
                                        flow_rates(stats_ft))
        assert dctcp_gap < 0.0      # DCTCP clearly less fair
        assert pfabric_gap < 1.0    # pFabric never wildly fairer


@pytest.mark.slow
class TestConvergencePipeline:
    def test_flowtune_reaches_fair_shares(self, tiny_clos):
        network, flow_ids = convergence_experiment(
            "flowtune", n_senders=3, join_interval=3e-3,
            topology=tiny_clos, flow_gbits=0.5)
        t_end = network.sim.now
        # During the 3-flow phase (t in [6, 9) ms) each gets ~1/3.
        sample_at = 8.0e-3
        for flow_id in flow_ids:
            times, gbps = network.stats.throughput_series(flow_id, t_end)
            idx = int(sample_at / 100e-6)
            assert gbps[idx] == pytest.approx(9.9 / 3, rel=0.25), flow_id

    def test_pfabric_starves_laggards(self, tiny_clos):
        network, flow_ids = convergence_experiment(
            "pfabric", n_senders=3, join_interval=3e-3,
            topology=tiny_clos, flow_gbits=0.5)
        t_end = network.sim.now
        idx = int(8.0e-3 / 100e-6)
        rates = sorted(network.stats.throughput_series(f, t_end)[1][idx]
                       for f in flow_ids)
        assert rates[0] < 0.2 * max(rates[-1], 1e-9)


@pytest.mark.slow
class TestFluidVsPacketConsistency:
    def test_allocator_rates_agree_across_substrates(self, tiny_clos):
        """The same allocator logic runs in fluid and packet models;
        for a static flow set both must settle on the same rates."""
        from repro.core import FlowtuneAllocator
        from repro.sim.experiments import build_network
        from repro.sim import MSS_BYTES

        allocator = FlowtuneAllocator(tiny_clos.link_set(), gamma=0.4)
        pairs = [(1, 0), (2, 0), (3, 0)]
        for i, (src, dst) in enumerate(pairs):
            allocator.flowlet_start(i, tiny_clos.route(src, dst, i))
        fluid_result = allocator.iterate(300)

        network = build_network("flowtune", topology=tiny_clos)
        senders = [network.start_flow(network.make_flow(
            i, src, dst, 4000 * MSS_BYTES))
            for i, (src, dst) in enumerate(pairs)]
        network.run_until(2e-3)
        for i, sender in enumerate(senders):
            packet_rate = sender.rate_bps / 1e9
            assert packet_rate == pytest.approx(fluid_result.rates[i],
                                                rel=0.1)
