"""§7 discussion features: external traffic, intermediaries, traces."""

import numpy as np
import pytest

from repro.control import direct_update_plane, intermediary_update_plane
from repro.core import (ExternalTrafficManager, FlowtuneAllocator, LinkSet)
from repro.workloads import (FlowletTrace, PoissonFlowletGenerator,
                             record_trace, web_workload)


class TestExternalTraffic:
    def make(self):
        allocator = FlowtuneAllocator(LinkSet([10.0, 10.0]),
                                      update_threshold=0.0)
        return allocator, ExternalTrafficManager(allocator)

    def test_external_load_squeezes_scheduled_flows(self):
        allocator, manager = self.make()
        allocator.flowlet_start("a", [0])
        before = allocator.iterate(200).rates["a"]
        manager.set_external(0, 4.0)
        after = allocator.iterate(200).rates["a"]
        assert before == pytest.approx(10.0, rel=0.01)
        assert after == pytest.approx(6.0, rel=0.01)

    def test_clear_restores_capacity(self):
        allocator, manager = self.make()
        allocator.flowlet_start("a", [0])
        manager.set_external(0, 5.0)
        allocator.iterate(100)
        manager.clear()
        rates = allocator.iterate(200).rates
        assert rates["a"] == pytest.approx(10.0, rel=0.01)

    def test_capacity_never_reaches_zero(self):
        allocator, manager = self.make()
        manager.set_external(0, 100.0)
        assert manager.effective_capacity()[0] > 0

    def test_closed_loop_observation_smoothing(self):
        allocator, manager = self.make()
        manager.observe(0, 8.0)
        first = manager.external[0]
        manager.observe(0, 8.0)
        second = manager.external[0]
        assert 0 < first < 8.0
        assert first < second < 8.0

    def test_negative_values_rejected(self):
        _, manager = self.make()
        with pytest.raises(ValueError):
            manager.set_external(0, -1.0)
        with pytest.raises(ValueError):
            manager.observe(0, -1.0)

    def test_dummy_flow_equivalence(self):
        """A capacity adjustment equals a pinned-rate dummy flow (§7)."""
        allocator, manager = self.make()
        allocator.flowlet_start("real", [0])
        manager.set_external(0, 5.0)
        squeezed = allocator.iterate(300).rates["real"]
        assert squeezed == pytest.approx(5.0, rel=0.01)


class TestIntermediaries:
    def test_direct_plane_matches_paper_arithmetic(self):
        # §6.4: 1.12 % overhead per server on 10 G -> "each allocator
        # NIC can update 89 servers".
        updates = 0.0112 * 10e9 / 8.0 / 84.0  # updates/s per server
        plane = direct_update_plane(updates, nic_gbps=10.0)
        assert plane.endpoints_per_nic == pytest.approx(89, abs=2)

    def test_intermediaries_scale_order_of_magnitude(self):
        # §7: "A straightforward solution to scale the allocator 10x".
        updates = 0.0112 * 10e9 / 8.0 / 84.0
        direct = direct_update_plane(updates)
        relayed = intermediary_update_plane(updates)
        assert 8.0 <= relayed.scaling_vs(direct) <= 20.0

    def test_intermediary_count_positive(self):
        relayed = intermediary_update_plane(10_000.0)
        assert relayed.intermediaries >= 1

    def test_allocator_bytes_drop_with_batching(self):
        updates = 100_000.0
        direct = direct_update_plane(updates)
        relayed = intermediary_update_plane(updates)
        assert relayed.allocator_bytes_per_endpoint < \
            direct.allocator_bytes_per_endpoint


class TestTraces:
    def test_record_and_iterate(self):
        generator = PoissonFlowletGenerator(web_workload(), 8, 0.5, seed=3)
        trace = record_trace(generator, 2e-3)
        assert len(trace) > 0
        arrivals = list(trace)
        assert arrivals[0].time <= arrivals[-1].time
        assert all(a.src != a.dst for a in arrivals)

    def test_save_load_roundtrip(self, tmp_path):
        generator = PoissonFlowletGenerator(web_workload(), 8, 0.5, seed=3)
        trace = record_trace(generator, 1e-3)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = FlowletTrace.load(path)
        assert len(loaded) == len(trace)
        assert np.allclose(loaded.times, trace.times)
        assert np.array_equal(loaded.sizes, trace.sizes)

    def test_offered_load_near_target(self):
        generator = PoissonFlowletGenerator(web_workload(), 16, 0.6,
                                            seed=4)
        trace = record_trace(generator, 20e-3)
        load = trace.offered_load(16, 10.0)
        assert load == pytest.approx(0.6, rel=0.3)

    def test_slice(self):
        generator = PoissonFlowletGenerator(web_workload(), 8, 0.5, seed=5)
        trace = record_trace(generator, 4e-3)
        window = trace.slice(1e-3, 2e-3)
        assert all(1e-3 <= t < 2e-3 for t in window.times)

    def test_unsorted_times_rejected(self):
        with pytest.raises(ValueError):
            FlowletTrace([2.0, 1.0], [0, 1], [1, 0], [100, 100])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            FlowletTrace([1.0], [0, 1], [1], [100])
