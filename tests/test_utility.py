"""Utility-function laws: Equation 3's inverse relations and concavity."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.utility import AlphaFairUtility, LogUtility

POSITIVE = st.floats(min_value=1e-6, max_value=1e6)


class TestLogUtility:
    def test_rate_is_inverse_of_marginal_utility(self):
        u = LogUtility()
        x = np.array([0.5, 1.0, 2.0, 10.0])
        assert np.allclose(u.rate(u.inverse_rate(x)), x)

    def test_weighted_rate_scales_linearly(self):
        u = LogUtility()
        rho = np.array([1.0, 2.0])
        assert np.allclose(u.rate(rho, 3.0), 3.0 * u.rate(rho, 1.0))

    def test_rate_derivative_is_negative(self):
        u = LogUtility()
        assert np.all(u.rate_derivative(np.array([0.1, 1.0, 10.0])) < 0)

    @given(rho=POSITIVE, w=st.floats(min_value=0.1, max_value=10))
    def test_derivative_matches_finite_difference(self, rho, w):
        u = LogUtility()
        eps = rho * 1e-6
        numeric = (u.rate(rho + eps, w) - u.rate(rho - eps, w)) / (2 * eps)
        analytic = u.rate_derivative(rho, w)
        assert numeric == pytest.approx(analytic, rel=1e-3)

    def test_value_is_weighted_log(self):
        u = LogUtility()
        assert u.value(np.e, 2.0) == pytest.approx(2.0)

    def test_price_sum_clamp_bounds_rates(self):
        u = LogUtility()
        assert np.isfinite(u.rate(np.array([0.0])))[0]


class TestAlphaFairUtility:
    def test_rejects_alpha_one(self):
        with pytest.raises(ValueError):
            AlphaFairUtility(1.0)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            AlphaFairUtility(0.0)

    @pytest.mark.parametrize("alpha", [0.5, 2.0, 3.0])
    def test_rate_inverts_marginal_utility(self, alpha):
        u = AlphaFairUtility(alpha)
        x = np.array([0.25, 1.0, 4.0])
        assert np.allclose(u.rate(u.inverse_rate(x)), x)

    @pytest.mark.parametrize("alpha", [0.5, 2.0])
    def test_rate_decreases_with_price(self, alpha):
        u = AlphaFairUtility(alpha)
        rho = np.array([0.5, 1.0, 2.0, 4.0])
        rates = u.rate(rho)
        assert np.all(np.diff(rates) < 0)

    @given(rho=POSITIVE)
    def test_alpha2_derivative_finite_difference(self, rho):
        u = AlphaFairUtility(2.0)
        eps = rho * 1e-6
        numeric = (u.rate(rho + eps) - u.rate(rho - eps)) / (2 * eps)
        assert numeric == pytest.approx(u.rate_derivative(rho), rel=1e-3)

    def test_near_max_min_allocates_more_evenly_than_log(self):
        # Higher alpha compresses the rate ratio between cheap and
        # expensive paths.
        cheap, expensive = 0.5, 2.0
        log_ratio = (LogUtility().rate(cheap) / LogUtility().rate(expensive))
        a3 = AlphaFairUtility(3.0)
        a3_ratio = a3.rate(cheap) / a3.rate(expensive)
        assert a3_ratio < log_ratio
