"""Fluid flowlet-level simulator: conservation and metric plumbing."""

import pytest

from repro.core import NullNormalizer
from repro.core.gradient import GradientOptimizer
from repro.fluid import (build_fluid_setup, measure_update_traffic,
                         normalization_throughput,
                         over_allocation_by_algorithm, threshold_reduction)

SCALE = dict(n_racks=2, hosts_per_rack=4, n_spines=2)


class TestSimulator:
    def test_flows_complete_and_conserve_bytes(self):
        _, _, _, simulator = build_fluid_setup(load=0.4, seed=0, **SCALE)
        metrics = simulator.run(2e-3)
        assert metrics.completed, "no flowlet completed"
        for record in metrics.completed:
            assert record.remaining_bytes <= 1e-6
            assert record.fct >= 0

    def test_message_accounting(self):
        _, _, _, simulator = build_fluid_setup(load=0.4, seed=0, **SCALE)
        metrics = simulator.run(2e-3)
        assert metrics.n_start_messages >= metrics.n_end_messages
        assert metrics.bytes_to_allocator > 0
        assert metrics.bytes_from_allocator > 0
        # Every flowlet triggers at least one rate update (its first).
        assert metrics.n_rate_updates >= metrics.n_end_messages

    def test_warmup_excluded_from_metrics(self):
        _, _, _, sim_a = build_fluid_setup(load=0.4, seed=0, **SCALE)
        full = sim_a.run(2e-3, warmup=0.0)
        _, _, _, sim_b = build_fluid_setup(load=0.4, seed=0, **SCALE)
        trimmed = sim_b.run(2e-3, warmup=1e-3)
        assert trimmed.n_start_messages < full.n_start_messages
        assert trimmed.duration == pytest.approx(1e-3)

    def test_active_flow_count_tracks_population(self):
        _, allocator, _, simulator = build_fluid_setup(load=0.4, seed=0,
                                                       **SCALE)
        simulator.run(2e-3)
        assert simulator.n_active == allocator.n_flows

    def test_over_allocation_nonnegative(self):
        _, _, _, simulator = build_fluid_setup(
            load=0.6, seed=1, normalizer=NullNormalizer(), threshold=0.0,
            **SCALE)
        metrics = simulator.run(1e-3)
        assert all(v >= 0 for v in metrics.over_allocation)

    def test_f_norm_eliminates_over_allocation_in_effective_caps(self):
        _, _, _, simulator = build_fluid_setup(load=0.6, seed=1, **SCALE)
        metrics = simulator.run(1e-3)
        assert metrics.peak_over_allocation() <= 1e-6


class TestExperiments:
    def test_update_traffic_fraction_small(self):
        point = measure_update_traffic(load=0.6, duration=1.5e-3,
                                       warmup=0.5e-3, **SCALE)
        assert 0 < point["from_allocator"] < 0.1
        assert 0 < point["to_allocator"] < 0.1

    def test_workload_overhead_ordering(self):
        # §6.4 (C): web needs the most update traffic, hadoop the least.
        fractions = {}
        for workload in ("web", "hadoop"):
            point = measure_update_traffic(workload=workload, load=0.6,
                                           duration=1.5e-3, warmup=0.5e-3,
                                           **SCALE)
            fractions[workload] = point["from_allocator"]
        assert fractions["hadoop"] < fractions["web"]

    def test_threshold_reduces_traffic(self):
        reductions = threshold_reduction(load=0.6, thresholds=(0.01, 0.05),
                                         duration=1.5e-3, warmup=0.5e-3,
                                         **SCALE)
        assert reductions[0.01] == pytest.approx(0.0)
        assert reductions[0.05] > 0.0

    def test_over_allocation_by_algorithm_keys(self):
        results = over_allocation_by_algorithm(
            load=0.4, duration=0.8e-3, warmup=0.2e-3,
            algorithms={"NED": (type(
                build_fluid_setup(**SCALE)[1].optimizer), {"gamma": 1.0}),
                "Gradient": (GradientOptimizer, {"gamma": 0.02})},
            **SCALE)
        assert set(results) == {"NED", "Gradient"}
        assert all(v >= 0 for v in results.values())

    @pytest.mark.slow
    def test_f_norm_beats_u_norm(self):
        results = normalization_throughput(load=0.5, duration=1.5e-3,
                                           warmup=0.5e-3, optimal_every=30,
                                           **SCALE)
        assert results[("NED", "F-NORM")] > results[("NED", "U-NORM")]
