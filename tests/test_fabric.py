"""The coordination fabric itself: barrier, framing, costs, teardown.

The cross-backend equivalence suite (``test_process_backend.py``)
proves both fabrics reproduce the simulated engine's floats; this file
tests the fabric *mechanisms* — the sense-reversing barrier's phase
discipline under adversarial scheduling, the TCP framing layer, the
per-fabric step-cost model, and the resource-teardown guarantees
(no leaked ``/dev/shm`` segments or listening ports, even when a
worker dies mid-run).
"""

import multiprocessing
import os
import socket as socketlib
import time

import numpy as np
import pytest

from repro.parallel import (FABRIC_COSTS, FabricError, LocalCluster,
                            MulticoreNedEngine, SenseReversingBarrier,
                            SharedArena, fabric_iteration_us,
                            measure_barrier_rate)
from repro.parallel.cost_model import BenchConfig
from repro.parallel.fabric import TAG_DATA, recv_frame, send_frame
from repro.topology import TwoTierClos

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fabrics need the fork start method")


def shm_names():
    try:
        return {name for name in os.listdir("/dev/shm")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def clos_for_blocks(n_blocks, racks_per_block=2, hosts_per_rack=4):
    return TwoTierClos(n_racks=n_blocks * racks_per_block,
                       hosts_per_rack=hosts_per_rack, n_spines=2)


def random_starts(topology, rng, flow_ids):
    starts = []
    for flow_id in flow_ids:
        src = int(rng.integers(topology.n_hosts))
        dst = int(rng.integers(topology.n_hosts - 1))
        if dst >= src:
            dst += 1
        starts.append((flow_id, src, dst))
    return starts


# ----------------------------------------------------------------------
# the sense-reversing barrier
# ----------------------------------------------------------------------
def _skew_worker(barrier, rounds, seed, violations, start):
    rng = np.random.default_rng(seed)
    start.wait()
    for t in range(1, rounds + 1):
        time.sleep(float(rng.uniform(0.0, 0.002)))
        barrier.wait()
        snapshot = barrier.peer_phases()
        # After completing phase t: every peer has entered t, and no
        # peer can have passed t + 1 (that would need *us* at t + 1).
        if snapshot.min() < t or snapshot.max() > t + 1:
            violations[barrier._id] = 1
            return


class TestSenseReversingBarrier:
    @pytest.mark.parametrize("mode", ["spin", "block"])
    def test_no_step_skew_under_random_delays(self, mode):
        """Adversarial scheduling: randomized per-worker delays must
        never let a worker observe a peer two phases ahead."""
        ctx = multiprocessing.get_context("fork")
        n_workers, rounds = 4, 150
        arena = SharedArena()
        try:
            phases, arrive, gates = SenseReversingBarrier.alloc(
                arena, ctx, n_workers)
            violations = arena.zeros("violations", (n_workers,), np.int64)
            parent = SenseReversingBarrier(phases, arrive, gates, 0,
                                           n_workers, mode=mode,
                                           timeout=120.0)
            start = ctx.Event()
            procs = [ctx.Process(
                target=_skew_worker,
                args=(parent.for_worker(w), rounds, w, violations, start),
                daemon=True) for w in range(n_workers)]
            for p in procs:
                p.start()
            start.set()
            for p in procs:
                p.join(timeout=120.0)
                assert not p.is_alive(), "barrier wedged"
            assert not violations.any(), "phase skew observed"
            assert phases[:n_workers].tolist() == [rounds] * n_workers
        finally:
            arena.close()

    @pytest.mark.parametrize("mode", ["spin", "block"])
    def test_abort_unwedges_a_waiter(self, mode):
        ctx = multiprocessing.get_context("fork")
        arena = SharedArena()
        try:
            phases, arrive, gates = SenseReversingBarrier.alloc(
                arena, ctx, 2)
            parent = SenseReversingBarrier(phases, arrive, gates, 0, 2,
                                           mode=mode, timeout=60.0)
            failed = arena.zeros("failed", (1,), np.int64)

            def lonely(barrier, failed):
                try:
                    barrier.wait()  # peer never arrives
                except FabricError:
                    failed[0] = 1

            proc = ctx.Process(target=lonely,
                               args=(parent.for_worker(1), failed),
                               daemon=True)
            proc.start()
            time.sleep(0.2)
            parent.abort()
            proc.join(timeout=30.0)
            assert not proc.is_alive()
            assert failed[0] == 1
            with pytest.raises(FabricError):
                parent.wait()
        finally:
            arena.close()

    def test_single_worker_is_trivial(self):
        ctx = multiprocessing.get_context("fork")
        arena = SharedArena()
        try:
            phases, arrive, gates = SenseReversingBarrier.alloc(
                arena, ctx, 1)
            barrier = SenseReversingBarrier(phases, arrive, gates, 0, 1)
            for _ in range(5):
                barrier.wait()
            assert barrier.phase == 5
        finally:
            arena.close()

    def test_measure_barrier_rate_smoke(self):
        sense = measure_barrier_rate("sense", 2, 50)
        mp_rate = measure_barrier_rate("mp", 2, 50)
        assert sense > 0 and mp_rate > 0

    @pytest.mark.slow
    def test_beats_mp_barrier_on_the_16_worker_grid(self):
        """The satellite claim: per-step cost at or below mp.Barrier's
        on the 16-worker grid (the §6.1 benchmark configuration)."""
        sense = measure_barrier_rate("sense", 16, 400)
        mp_rate = measure_barrier_rate("mp", 16, 400)
        assert sense >= mp_rate, (
            f"sense-reversing barrier {1e6 / sense:.0f}us/step vs "
            f"mp.Barrier {1e6 / mp_rate:.0f}us/step")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_frame_roundtrip(self):
        a, b = socketlib.socketpair()
        try:
            payload = np.arange(7, dtype=np.float64).tobytes()
            send_frame(a, TAG_DATA, payload)
            tag, received = recv_frame(b)
            assert tag == TAG_DATA
            np.testing.assert_array_equal(
                np.frombuffer(received, dtype=np.float64), np.arange(7))
        finally:
            a.close()
            b.close()

    def test_unexpected_tag_raises(self):
        a, b = socketlib.socketpair()
        try:
            send_frame(a, TAG_DATA, b"x")
            with pytest.raises(FabricError):
                recv_frame(b, expect=TAG_DATA + 1)
        finally:
            a.close()
            b.close()

    def test_slow_worker_reports_timeout_not_death(self):
        """socket.timeout is an OSError subclass; the framing layer
        must let it through so a hung worker is diagnosed as slow
        ("did not finish"), not as dead."""
        from repro.parallel.fabric import SocketFabric
        fabric = SocketFabric(timeout=0.2)
        silent, _held_peer = socketlib.socketpair()
        try:
            fabric._conns[0] = silent
            with pytest.raises(FabricError, match="did not finish"):
                fabric.iterate(1)
        finally:
            _held_peer.close()
            fabric.close()

    def test_peer_close_raises(self):
        a, b = socketlib.socketpair()
        a.close()
        try:
            with pytest.raises(FabricError):
                recv_frame(b)
        finally:
            b.close()


class _ShortWriteSock:
    """``sendmsg`` stub accepting ``chunk`` bytes per call; can fail
    after N calls.  Records every byte accepted, so tests can assert
    the partial-resume logic reassembles the exact frame."""

    def __init__(self, chunk, fail_after=None, error=TimeoutError):
        self.chunk = chunk
        self.fail_after = fail_after
        self.error = error
        self.calls = 0
        self.sent = bytearray()

    def sendmsg(self, buffers):
        self.calls += 1
        if self.fail_after is not None and self.calls > self.fail_after:
            raise self.error("stub failure")
        taken = 0
        for view in buffers:
            take = min(len(view), self.chunk - taken)
            self.sent += bytes(view[:take])
            taken += take
            if taken == self.chunk:
                break
        return taken


class TestSendFramePartialWrites:
    def test_short_writes_resume_from_the_unsent_tail(self):
        """A drip-feeding socket still gets the byte-exact frame: the
        fallback drops sent views and slices the partial one instead
        of re-flattening (and re-sending) the whole frame."""
        payload = np.arange(100, dtype=np.float64)
        sock = _ShortWriteSock(chunk=7)
        send_frame(sock, TAG_DATA, payload)
        from repro.parallel.fabric import _HEADER
        expected = _HEADER.pack(payload.nbytes, TAG_DATA) + payload.tobytes()
        assert bytes(sock.sent) == expected
        assert sock.calls == -(-len(expected) // 7)  # ceil: no resends

    def test_partial_frame_failure_poisons_the_connection(self):
        """A timeout after part of the frame hit the wire leaves the
        stream desynchronized — every later framed use must raise
        FabricError instead of corrupting the peer's stream."""
        sock = _ShortWriteSock(chunk=7, fail_after=2)
        with pytest.raises(TimeoutError):
            send_frame(sock, TAG_DATA, np.arange(100, dtype=np.float64))
        with pytest.raises(FabricError, match="poisoned"):
            send_frame(sock, TAG_DATA, b"anything")
        with pytest.raises(FabricError, match="poisoned"):
            recv_frame(sock)

    def test_clean_failure_does_not_poison(self):
        """If nothing reached the wire the stream is still framed —
        the connection stays usable (e.g. a transient ENOBUFS)."""
        sock = _ShortWriteSock(chunk=7, fail_after=0,
                               error=BrokenPipeError)
        with pytest.raises(FabricError):
            send_frame(sock, TAG_DATA, b"payload")
        sock.fail_after = None
        send_frame(sock, TAG_DATA, b"payload")  # not poisoned
        assert bytes(sock.sent).endswith(b"payload")


class TestBatchedExchange:
    """The tentpole mechanism: per-peer batch frames driven by the
    nonblocking selectors loop, deadlock-free at any buffer size."""

    @staticmethod
    def _clamped_pair(sockbuf=4096):
        a, b = socketlib.socketpair()
        for sock in (a, b):
            sock.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_SNDBUF,
                            sockbuf)
            sock.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_RCVBUF,
                            sockbuf)
            sock.setblocking(False)
        return a, b

    def test_exchange_far_beyond_clamped_buffers(self):
        """Both ends owe each other ~32x the clamped socket buffers
        within one step.  The sendall-first protocol this replaced
        wedges here (neither side reads until its writes complete);
        the interleaved loop must finish and deliver exact bytes."""
        import threading
        from repro.parallel.fabric import (PeerBatch, RecvBatch,
                                           exchange_batches)
        n = 64_000  # 512 KB per direction
        a, b = self._clamped_pair()
        try:
            payload_a = np.arange(n, dtype=np.float64)
            payload_b = -payload_a
            received = {}

            def run_side(name, sock, outgoing_data):
                out = PeerBatch()
                out.stage(n)[:] = outgoing_data
                inc = RecvBatch()
                inc.stage(8 * n)
                exchange_batches({0: sock}, {0: out}, {0: inc},
                                 timeout=60.0)
                received[name] = inc.payload().copy()

            thread = threading.Thread(
                target=run_side, args=("b", b, payload_b), daemon=True)
            thread.start()
            run_side("a", a, payload_a)
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "exchange wedged"
            np.testing.assert_array_equal(received["a"], payload_b)
            np.testing.assert_array_equal(received["b"], payload_a)
        finally:
            a.close()
            b.close()

    def test_asymmetric_exchange(self):
        """One side only sends, the other only receives — the loop
        must complete with single-direction registrations too."""
        import threading
        from repro.parallel.fabric import (PeerBatch, RecvBatch,
                                           exchange_batches)
        n = 32_000
        a, b = self._clamped_pair()
        try:
            data = np.linspace(0.0, 1.0, n)
            out = PeerBatch()
            out.stage(n)[:] = data
            inc = RecvBatch()
            inc.stage(8 * n)
            thread = threading.Thread(
                target=exchange_batches,
                args=({0: b}, {}, {0: inc}), kwargs={"timeout": 60.0},
                daemon=True)
            thread.start()
            exchange_batches({0: a}, {0: out}, {}, timeout=60.0)
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            np.testing.assert_array_equal(inc.payload(), data)
        finally:
            a.close()
            b.close()

    def test_dead_peer_raises_not_hangs(self):
        from repro.parallel.fabric import RecvBatch, exchange_batches
        a, b = self._clamped_pair()
        inc = RecvBatch()
        inc.stage(1024)
        a.close()
        try:
            with pytest.raises(FabricError):
                exchange_batches({0: b}, {}, {0: inc}, timeout=5.0)
        finally:
            b.close()


class TestDeltaChurnCodec:
    """encode/decode of the delta-encoded churn wire format."""

    @staticmethod
    def _table(n_links=8):
        from repro.core.network import FlowTable, LinkSet
        return FlowTable(LinkSet(np.full(n_links, 10.0)), max_route_len=3)

    @staticmethod
    def _mirror():
        from repro.parallel.process_backend import CellPlan
        plan = CellPlan(0)
        counts = np.zeros(1, dtype=np.int64)
        versions = np.full(1, -1, dtype=np.int64)
        return plan, counts, versions

    @staticmethod
    def _assert_mirrors(plan, counts, table):
        n = int(counts[0])
        assert n == table.n_flows
        np.testing.assert_array_equal(plan.routes[:n], table.routes)
        np.testing.assert_array_equal(plan.weights[:n], table.weights)
        np.testing.assert_array_equal(plan.bottleneck[:n],
                                      table.bottleneck_capacity())

    def test_snapshot_then_delta_roundtrip(self):
        from repro.parallel.fabric import (apply_cell_update,
                                           encode_cell_delta,
                                           encode_cell_snapshot)
        table = self._table()
        for i in range(6):
            table.add_flow(i, [i % 8, (i + 1) % 8], weight=1.0 + i)
        plan, counts, versions = self._mirror()
        apply_cell_update(encode_cell_snapshot(0, table), plan, counts,
                          versions)
        self._assert_mirrors(plan, counts, table)
        table.start_change_log()

        # Mixed churn: swap-remove holes + appended block.
        base = table.version
        table.apply_churn(starts=[(10, [3, 4], 2.5), (11, [5])],
                          ends=[1, 4])
        rows, all_changed = table.consume_changes()
        assert not all_changed and len(rows) < table.n_flows
        apply_cell_update(
            encode_cell_delta(0, table, rows, base), plan, counts,
            versions)
        self._assert_mirrors(plan, counts, table)

        # Growth far past the mirror's capacity (delta must regrow).
        base = table.version
        table.apply_churn(starts=[(100 + i, [i % 8]) for i in range(40)])
        rows, all_changed = table.consume_changes()
        apply_cell_update(
            encode_cell_delta(0, table, rows, base), plan, counts,
            versions)
        self._assert_mirrors(plan, counts, table)

    def test_empty_delta_ships_count_and_version_only(self):
        from repro.parallel.fabric import (apply_cell_update,
                                           encode_cell_delta,
                                           encode_cell_snapshot)
        table = self._table()
        for i in range(3):
            table.add_flow(i, [i])
        plan, counts, versions = self._mirror()
        apply_cell_update(encode_cell_snapshot(0, table), plan, counts,
                          versions)
        table.start_change_log()
        base = table.version
        table.remove_flow(2)  # last row: a pure tail shrink
        rows, all_changed = table.consume_changes()
        assert len(rows) == 0 and not all_changed
        update = encode_cell_delta(0, table, rows, base)
        apply_cell_update(update, plan, counts, versions)
        assert counts[0] == 2 and versions[0] == table.version
        self._assert_mirrors(plan, counts, table)

    def test_version_skew_raises(self):
        """A delta against the wrong base would corrupt the mirror —
        the receiver must refuse it loudly."""
        from repro.parallel.fabric import (apply_cell_update,
                                           encode_cell_delta,
                                           encode_cell_snapshot)
        table = self._table()
        table.add_flow(0, [0])
        plan, counts, versions = self._mirror()
        apply_cell_update(encode_cell_snapshot(0, table), plan, counts,
                          versions)
        table.start_change_log()
        table.add_flow(1, [1])
        rows, _ = table.consume_changes()
        stale = encode_cell_delta(0, table, rows,
                                  base_version=table.version + 7)
        with pytest.raises(FabricError, match="skew"):
            apply_cell_update(stale, plan, counts, versions)

    def test_capacity_refresh_falls_back_to_snapshot(self):
        """refresh_capacity rewrites every bottleneck entry, so the
        change log reports all_changed and the publisher snapshots."""
        table = self._table()
        for i in range(4):
            table.add_flow(i, [i])
        table.start_change_log()
        table.links.capacity *= 0.5
        table.refresh_capacity()
        _, all_changed = table.consume_changes()
        assert all_changed


class TestSocketWorkerTokenValidation:
    """A bad $REPRO_FABRIC_TOKEN must fail fast and loudly — not
    decode to b"" and get silently dropped by the parent's auth."""

    @staticmethod
    def _run_worker(token):
        import subprocess
        import sys as sysmod
        from pathlib import Path
        env = dict(os.environ)
        env.pop("REPRO_FABRIC_TOKEN", None)
        if token is not None:
            env["REPRO_FABRIC_TOKEN"] = token
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sysmod.executable, "-m", "repro.parallel.socket_worker",
             "127.0.0.1", "1", "0"],
            capture_output=True, text=True, env=env, timeout=60)

    @pytest.mark.parametrize("token", [None, "", "abc", "not-hex!"])
    def test_bad_token_fails_fast_naming_the_env_var(self, token):
        result = self._run_worker(token)
        assert result.returncode != 0
        assert "REPRO_FABRIC_TOKEN" in result.stderr

    def test_parse_token_accepts_valid_hex(self):
        from repro.parallel.socket_worker import parse_token
        assert parse_token("00ff" * 8) == bytes.fromhex("00ff" * 8)


# ----------------------------------------------------------------------
# per-fabric step costs
# ----------------------------------------------------------------------
class TestFabricStepCosts:
    def test_socket_batches_cost_more_than_shm(self):
        assert FABRIC_COSTS["socket"].per_batch_us \
            > FABRIC_COSTS["shm"].per_batch_us
        assert FABRIC_COSTS["socket"].per_entry_us \
            > FABRIC_COSTS["shm"].per_entry_us

    def test_socket_steps_need_no_barrier(self):
        assert FABRIC_COSTS["socket"].barrier_us == 0.0
        assert FABRIC_COSTS["shm"].barrier_us > 0.0

    def test_iteration_estimate_grows_with_the_grid(self):
        configs = [BenchConfig.from_row(cores, 1536, 12288)
                   for cores in (4, 16, 64)]
        for fabric in ("shm", "socket"):
            estimates = [fabric_iteration_us(c, fabric) for c in configs]
            assert estimates == sorted(estimates)
            assert estimates[0] > 0

    def test_fewer_workers_coalesce_socket_batches(self):
        """Per-peer batching: when few workers own many cells, a
        step's transfers collapse into at most W*(W-1) pair frames,
        so the fixed syscall term shrinks; the shm estimate (in-place
        reads, no framing) is indifferent to worker count."""
        config = BenchConfig.from_row(64, 1536, 12288)
        full = fabric_iteration_us(config, "socket")
        batched = fabric_iteration_us(config, "socket", n_workers=3)
        assert batched < full
        assert fabric_iteration_us(config, "shm", n_workers=3) \
            == fabric_iteration_us(config, "shm")

    def test_shm_barriers_dominate_small_grids(self):
        """On a small grid the shm cost is mostly synchronization —
        the term the sense-reversing barrier was built to shrink."""
        config = BenchConfig.from_row(4, 384, 3072)
        costs = FABRIC_COSTS["shm"]
        sync = (2 + 2 * config.intra_cpu_steps
                + 2 * config.inter_cpu_steps) * costs.barrier_us
        assert sync > fabric_iteration_us(config, "shm") / 2


# ----------------------------------------------------------------------
# teardown / leak regression
# ----------------------------------------------------------------------
class TestFabricTeardown:
    @pytest.mark.parametrize("fabric", ["shm", "socket"])
    def test_close_leaks_nothing_after_worker_death(self, fabric):
        """Kill a worker mid-run, exit the context manager, and assert
        no /dev/shm segment and no listening port survives."""
        before = shm_names()
        topology = clos_for_blocks(2)
        with MulticoreNedEngine(topology, 2, backend="process",
                                n_workers=2, fabric=fabric) as engine:
            engine.add_flow(0, 0, topology.n_hosts - 1)
            engine.iterate(1)
            backend = engine.backend
            backend._workers[0].terminate()
            backend._workers[0].join(5.0)
            with pytest.raises(RuntimeError):
                engine.iterate(1)
        engine.close()  # idempotent double close
        for worker in backend._workers:
            worker.join(5.0)
            assert not worker.is_alive()
        assert shm_names() <= before, "leaked /dev/shm segments"
        if fabric == "socket":
            listener = backend.fabric._listener
            assert listener.fileno() == -1, "listening port left open"

    @pytest.mark.parametrize("fabric", ["shm", "socket"])
    def test_dead_worker_detected_during_churn_sync(self, fabric):
        """A worker death can surface while the parent publishes churn
        (reattach/snapshot send hits a broken channel) — that path
        must tear the pool down as eagerly as a mid-iteration death."""
        topology = clos_for_blocks(2)
        rng = np.random.default_rng(7)
        engine = MulticoreNedEngine(topology, 2, backend="process",
                                    n_workers=2, fabric=fabric)
        try:
            engine.apply_churn(
                starts=random_starts(topology, rng, range(20)))
            engine.iterate(1)
            engine.backend._workers[0].terminate()
            engine.backend._workers[0].join(5.0)
            # Regrow every cell so the next _sync must message workers
            # (shm: reattach manifests; socket: cell snapshots).
            engine.apply_churn(
                starts=random_starts(topology, rng, range(1000, 1500)))
            with pytest.raises(RuntimeError):
                engine.iterate(1)
            assert engine.backend._closed
        finally:
            engine.close()

    def test_engine_close_is_idempotent_without_backend(self):
        engine = MulticoreNedEngine(clos_for_blocks(2), 2)
        engine.close()
        engine.close()

    def test_socket_fabric_close_releases_the_port(self):
        topology = clos_for_blocks(2)
        engine = MulticoreNedEngine(topology, 2, backend="process",
                                    n_workers=2, fabric="socket")
        port = engine.backend.fabric.port
        engine.add_flow(0, 0, topology.n_hosts - 1)
        engine.iterate(1)
        engine.close()
        probe = socketlib.socket()
        try:
            # Closed listener: either refused outright or (port reuse
            # by an unrelated process aside) not our fabric answering.
            with pytest.raises(OSError):
                probe.connect(("127.0.0.1", port))
        finally:
            probe.close()


# ----------------------------------------------------------------------
# LocalCluster: multiple "hosts" on localhost
# ----------------------------------------------------------------------
class TestBootstrapHandshake:
    def test_stray_connections_are_dropped_not_accepted(self):
        """Connections that cannot present the fabric token must be
        dropped before any pickled frame is read, without consuming
        an accept slot; the authenticated connection still gets in."""
        import threading
        from repro.parallel.fabric import _accept_authenticated

        token = b"s" * 16
        listener = socketlib.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]

        def clients():
            garbage = socketlib.create_connection(("127.0.0.1", port))
            garbage.sendall(b"x" * 16)  # wrong token
            eof = socketlib.create_connection(("127.0.0.1", port))
            eof.close()  # closes before sending anything
            good = socketlib.create_connection(("127.0.0.1", port))
            good.sendall(token)
            good.sendall(b"payload-after-auth")
            time.sleep(0.5)
            garbage.close()
            good.close()

        thread = threading.Thread(target=clients, daemon=True)
        thread.start()
        try:
            sock = _accept_authenticated(
                listener, token, time.monotonic() + 10.0)
            assert sock.recv(32) == b"payload-after-auth"
            sock.close()
        finally:
            thread.join(5.0)
            listener.close()

    def test_bootstrap_times_out_instead_of_hanging(self):
        from repro.parallel.fabric import _accept_authenticated
        listener = socketlib.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            with pytest.raises(FabricError, match="bootstrap timed out"):
                _accept_authenticated(listener, b"t" * 16,
                                      time.monotonic() + 0.2)
        finally:
            listener.close()

    def test_token_is_required_and_random(self):
        from repro.parallel.fabric import SocketFabric
        a, b = SocketFabric(), SocketFabric()
        try:
            assert a.token_hex != b.token_hex
            assert len(bytes.fromhex(a.token_hex)) == 16
        finally:
            a.close()
            b.close()


class TestLocalCluster:
    def test_subprocess_hosts_match_simulated_engine(self):
        """Two freshly exec'd interpreters (no fork inheritance — the
        exact protocol a remote host would speak) reproduce the
        simulated engine's rates."""
        topology = clos_for_blocks(2)
        starts = random_starts(topology, np.random.default_rng(0),
                               range(40))
        simulated = MulticoreNedEngine(topology, 2)
        simulated.apply_churn(starts=starts)
        simulated.iterate(6)
        with LocalCluster(topology, 2, n_hosts=2) as engine:
            engine.apply_churn(starts=starts)
            engine.iterate(6)
            rates = engine.rates()
            expected = simulated.rates()
            assert rates.keys() == expected.keys()
            for flow_id, rate in rates.items():
                assert rate == pytest.approx(expected[flow_id], rel=1e-9)
            np.testing.assert_allclose(engine.global_prices(),
                                       simulated.global_prices(),
                                       rtol=1e-9)
