"""NED-RT / Gradient-RT: float32 + approximate-reciprocal variants."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (FlowTable, GradientRtOptimizer, LinkSet,
                        NedOptimizer, NedRtOptimizer, fast_reciprocal)


def table_with(n, capacity=10.0):
    table = FlowTable(LinkSet([capacity]))
    for i in range(n):
        table.add_flow(i, [0])
    return table


class TestFastReciprocal:
    @given(st.floats(min_value=1e-3, max_value=1e6))
    def test_relative_error_below_float32_budget(self, x):
        approx = float(fast_reciprocal(np.float32(x)))
        assert approx == pytest.approx(1.0 / x, rel=5e-3)

    def test_is_not_exact(self):
        # The point of the RT variants: approximations perturb results.
        exact = 1.0 / 3.0
        approx = float(fast_reciprocal(np.float32(3.0)))
        assert approx != pytest.approx(exact, rel=1e-9)

    def test_vectorized(self):
        x = np.array([1.0, 2.0, 4.0], dtype=np.float32)
        assert fast_reciprocal(x).shape == (3,)


class TestRtOptimizers:
    def test_ned_rt_converges_near_reference(self):
        reference = NedOptimizer(table_with(4)).iterate(300)
        rt = NedRtOptimizer(table_with(4)).iterate(300)
        assert np.allclose(rt, reference, rtol=2e-2)

    def test_ned_rt_uses_float32_prices(self):
        opt = NedRtOptimizer(table_with(2))
        opt.iterate(5)
        assert opt.prices.dtype == np.float32

    def test_gradient_rt_converges(self):
        opt = GradientRtOptimizer(table_with(4), gamma=0.01)
        rates = opt.iterate(5000)
        assert np.allclose(rates, 2.5, rtol=0.05)

    def test_rt_trajectory_differs_from_reference(self):
        # Fig. 12 plots NED and NED-RT as separate curves: the numeric
        # approximations must actually change the trajectory.
        reference = NedOptimizer(table_with(7)).iterate(3)
        rt = NedRtOptimizer(table_with(7)).iterate(3)
        assert not np.array_equal(np.asarray(rt, dtype=np.float64),
                                  np.asarray(reference))

    def test_rt_rates_respect_caps(self):
        table = table_with(1)
        opt = NedRtOptimizer(table)
        opt.prices[:] = np.float32(0.0)
        assert float(opt.rate_update()[0]) <= 10.0 * (1 + 1e-3)


class TestNoPerIterationAllocation:
    """The RT discipline: steady-state iterations must not allocate
    per-flow buffers — the float32 rho staging buffer is preallocated
    and reused, replacing the old per-iteration ``astype`` copy."""

    def test_rho_buffer_reused_across_iterations(self):
        opt = NedRtOptimizer(table_with(6))
        opt.iterate(2)
        buffer = opt._rho32
        assert buffer is not None and buffer.dtype == np.float32
        for _ in range(10):
            opt.iterate(1)
            assert opt._rho32 is buffer, "rho32 buffer was reallocated"

    def test_rho_buffer_survives_shrinking_churn(self):
        table = table_with(8)
        opt = NedRtOptimizer(table)
        opt.iterate(2)
        buffer = opt._rho32
        table.remove_flow(3)
        table.remove_flow(5)
        opt.iterate(3)
        assert opt._rho32 is buffer

    def test_rho_buffer_grows_with_table_capacity(self):
        table = table_with(4)
        opt = NedRtOptimizer(table)
        opt.iterate(1)
        small = opt._rho32
        for i in range(100, 400):   # beyond initial capacity
            table.add_flow(i, [0])
        opt.iterate(1)
        assert opt._rho32 is not small
        assert len(opt._rho32) >= table.n_flows
        grown = opt._rho32
        opt.iterate(5)
        assert opt._rho32 is grown

    def test_cast_matches_astype_path(self):
        """Buffer staging must produce the exact floats the old
        ``astype(np.float32)`` copy did."""
        opt = NedRtOptimizer(table_with(5))
        opt.iterate(3)
        rho64 = opt.effective_price_sums()
        expected = opt._weights32() * fast_reciprocal(
            np.maximum(rho64.astype(np.float32), np.float32(1e-9)))
        assert np.array_equal(opt.rate_update(), expected)

    def test_gradient_rt_shares_the_discipline(self):
        opt = GradientRtOptimizer(table_with(3), gamma=0.01)
        opt.iterate(2)
        buffer = opt._rho32
        opt.iterate(5)
        assert opt._rho32 is buffer
