"""Uniform resource lifecycle across the public API.

Every resource-owning object in the top-level namespace —
:class:`MulticoreNedEngine`, the fabrics behind its process backend,
:class:`LocalCluster`, :class:`FlowtuneService`,
:class:`FlowtuneClient` — promises the same contract: usable as a
context manager, idempotent ``close()``, and *nothing leaked* after
the ``with`` block — no ``/dev/shm`` segments, no socket fds, no
child processes, no threads.  One shared harness asserts exactly that
for each of them.
"""

import multiprocessing
import os
import threading
import time

import pytest

from repro import (FlowtuneClient, FlowtuneService, LocalCluster,
                   MulticoreNedEngine, TwoTierClos)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-backed components need the fork start method")


def shm_names():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def socket_fds():
    """Inode labels of this process's open socket fds."""
    fds = set()
    try:
        for fd in os.listdir("/proc/self/fd"):
            try:
                target = os.readlink(f"/proc/self/fd/{fd}")
            except OSError:
                continue
            if target.startswith("socket:"):
                fds.add((fd, target))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        pass
    return fds


class Snapshot:
    """Resource census before a component runs; diffed after close."""

    def __init__(self):
        self.shm = shm_names()
        self.sockets = socket_fds()
        self.children = set(multiprocessing.active_children())
        self.threads = set(threading.enumerate())

    def assert_clean(self):
        assert shm_names() <= self.shm, "leaked /dev/shm segments"
        # Sockets and child processes can take a beat to disappear
        # after close() returns (TIME_WAIT never holds the fd, but a
        # reaped child's pipe fd close can race the assertion).
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked_socks = socket_fds() - self.sockets
            leaked_children = (set(multiprocessing.active_children())
                               - self.children)
            leaked_threads = {t for t in set(threading.enumerate())
                              - self.threads if t.is_alive()}
            if not (leaked_socks or leaked_children or leaked_threads):
                return
            time.sleep(0.05)
        assert not leaked_socks, f"leaked sockets: {leaked_socks}"
        assert not leaked_children, f"leaked processes: {leaked_children}"
        assert not leaked_threads, f"leaked threads: {leaked_threads}"


def topo():
    return TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)


def _use_engine(engine):
    engine.add_flow(0, 0, 7)
    engine.iterate(1)


def run_engine_shm():
    with MulticoreNedEngine(topo(), 2, backend="process", n_workers=2,
                            fabric="shm") as engine:
        _use_engine(engine)
        return engine


def run_engine_socket():
    with MulticoreNedEngine(topo(), 2, backend="process", n_workers=2,
                            fabric="socket") as engine:
        _use_engine(engine)
        return engine


def run_local_cluster():
    cluster = LocalCluster(topo(), 2, n_hosts=2)
    with cluster as engine:
        _use_engine(engine)
    return cluster


def run_service_and_client():
    t = topo()
    with FlowtuneService(t, mode="auto") as service:
        with FlowtuneClient(service.address, service.token_hex) as client:
            client.flowlet_start(0, t.route(0, 4))
            client.wait_for_rates([0], timeout=10.0)
    return service


COMPONENTS = {
    "engine-shm": run_engine_shm,
    "engine-socket": run_engine_socket,
    "service-client": run_service_and_client,
    "local-cluster": pytest.param(run_local_cluster, marks=pytest.mark.slow),
}


@pytest.mark.parametrize("component", COMPONENTS.values(),
                         ids=COMPONENTS.keys())
def test_with_block_leaves_no_residue(component):
    before = Snapshot()
    owner = component()
    before.assert_clean()
    # close() after __exit__ must be a no-op, not an error.
    owner.close()
    before.assert_clean()


def test_engine_close_idempotent_and_reentrant():
    engine = MulticoreNedEngine(topo(), 2, backend="process", n_workers=2)
    engine.close()
    engine.close()


def test_service_close_idempotent():
    service = FlowtuneService(topo(), mode="manual")
    service.start()
    service.close()
    service.close()
    with pytest.raises(RuntimeError, match="closed"):
        service.start()


def test_client_close_idempotent():
    t = topo()
    with FlowtuneService(t, mode="manual") as service:
        client = FlowtuneClient(service.address, service.token_hex)
        client.close()
        client.close()


def test_unstarted_service_closes_clean():
    before = Snapshot()
    service = FlowtuneService(topo())
    service.close()
    before.assert_clean()


def test_shared_arena_context_manager_releases_segments():
    """SharedArena joined the context-manager contract in PR 9."""
    from repro.parallel.shm import SharedArena

    before = shm_names()
    with SharedArena() as arena:
        arena.zeros("scratch", (64,))
        assert shm_names() - before, "arena allocated nothing"
    assert shm_names() <= before, "leaked /dev/shm segments"
    # close() after __exit__ must be a no-op, not an error.
    arena.close()


def test_threads_tier_close_idempotent_and_rebuilds(monkeypatch):
    """ThreadsTier.close() joins the fan-out helpers; the tier stays
    usable afterwards by lazily rebuilding the pool."""
    import numpy as np

    from repro.core.kernels import _base, _threads

    # Small chunks so a 64-row table spans several chunks and the
    # fan-out pool actually spins up.
    monkeypatch.setattr(_base, "BLOCK_ROWS", 8)
    tier = _threads.ThreadsTier(n_threads=2)
    n, width = 64, 2
    padded = np.arange(n * width, dtype=np.float64)
    indices = np.arange(n * width, dtype=np.int64) % (n * width)
    buf = np.empty(n * width)
    expected = tier.price_sums(padded, indices, n, width, buf)
    assert tier._pool is not None, "pool never spun up"
    # Only this tier's helpers — other suites may hold a live global
    # tier whose pool legitimately outlives this test.
    own_helpers = set(tier._pool._threads)

    tier.close()
    tier.close()
    deadline = time.monotonic() + 5.0
    helpers = set()
    while time.monotonic() < deadline:
        helpers = {t for t in own_helpers if t.is_alive()}
        if not helpers:
            break
        time.sleep(0.02)
    assert not helpers, f"fan-out helpers survived close(): {helpers}"

    # A closed tier transparently rebuilds its pool on next use.
    out2 = tier.price_sums(padded, indices, n, width, buf)
    assert np.array_equal(out2, expected)
    tier.close()
