"""The unreliable client: reconnect/replay, backpressure, slow readers.

PR 7's hardening paths, tested against live services: a killed socket
resumed mid-churn still matches the in-process allocator bitwise, a
stale resume nonce is rejected without disturbing the real session's
grace window, the ingest rate limiter answers with BUSY credits, a
grace-window expiry ends flows (and purges usage) exactly like the
old dead-client path, and a wedged reader is dropped without stalling
anyone else's rate pushes.  Plus the satellite regressions: usage
purged on flow end, duplicate ids inside one END batch rejected, and
``spawn_service`` surfacing a dead child's stderr instead of hanging.
Review regressions ride along: a poisoned START (bad route, NaN
weight) drops only its sender instead of killing the duty cycle,
REPLAY_DONE closes the resume reconcile window, and close() from
another thread waits out a caller-owned run() loop.
"""

import threading
import time

import pytest

from repro import (FlowtuneAllocator, FlowtuneClient, FlowtuneService,
                   TwoTierClos)
from repro.parallel.fabric import FabricError
from repro.service import ServiceError, spawn_service


@pytest.fixture
def topo():
    return TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)


def _wait(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.01)


# ----------------------------------------------------------------------
# reconnect / replay
# ----------------------------------------------------------------------
class TestReconnectReplay:
    def test_kill_mid_churn_replay_matches_in_process_bitwise(self, topo):
        """The acceptance bar: a churn trace with a socket kill and a
        RESUME in the middle reproduces the in-process allocator's
        rates bitwise — the replayed journal lands exactly the churn
        the reference saw, in the same batches."""
        first = [(0, topo.route(0, 4), 1.0), (1, topo.route(1, 5), 1.0),
                 (2, topo.route(0, 5), 2.0)]
        second_starts = [(3, topo.route(2, 6), 1.0)]
        second_ends = [2]
        ref = FlowtuneAllocator(topo.link_set())
        with FlowtuneService(topo, mode="manual", resume_grace=30.0) as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.apply_churn(starts=first)
                snap = cli.step(40)
                ref.apply_churn(starts=first)
                expected = ref.iterate(40).rates
                assert snap.keys() == expected.keys()
                assert all(snap[f] == r for f, r in expected.items())

                # The unreliable moment: hard socket death mid-churn —
                # the end is journaled but its send fails, so only the
                # replay can deliver it.
                cli.kill()
                with pytest.raises((FabricError, OSError)):
                    cli.flowlet_end(2)
                cli.reconnect()
                assert cli.reconnects == 1
                assert svc.stats["resumes"] == 1
                cli.apply_churn(starts=second_starts, ends=second_ends)
                snap = cli.step(30)
                ref.apply_churn(starts=second_starts, ends=second_ends)
                expected = ref.iterate(30).rates
                assert snap.keys() == expected.keys()
                worst = max(abs(snap[f] - r) for f, r in expected.items())
                assert worst == 0.0

    def test_replay_restores_unacked_flows(self, topo):
        """Flows started but never granted a rate (manual mode, no
        STEP yet) survive a kill: the journal replays them."""
        with FlowtuneService(topo, mode="manual", resume_grace=30.0) as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_start(5, topo.route(0, 4))
                cli.flowlet_start(6, topo.route(1, 5))
                assert cli.journal_depth[0] == 2
                cli.kill()
                cli.reconnect()
                snap = cli.step(20)
                assert set(snap) == {5, 6}
                ref = FlowtuneAllocator(topo.link_set())
                ref.apply_churn(starts=[(5, topo.route(0, 4), 1.0),
                                        (6, topo.route(1, 5), 1.0)])
                expected = ref.iterate(20).rates
                assert all(snap[f] == r for f, r in expected.items())

    def test_resume_stale_nonce_rejected(self, topo):
        with FlowtuneService(topo, mode="auto", resume_grace=30.0) as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_start(1, topo.route(0, 4))
                cli.wait_for_rates([1], timeout=10.0)
                cli.kill()
                good_nonce = cli.resume_nonce
                cli.resume_nonce = good_nonce ^ 0xDEAD
                with pytest.raises(ServiceError, match="stale resume"):
                    cli.reconnect()
                # The rejection must not disturb the real session: the
                # flow is still alive and the true nonce still resumes.
                assert svc.n_flows == 1
                cli.resume_nonce = good_nonce
                cli.reconnect()
                assert cli.wait_for_rates([1], timeout=10.0)[1] > 0

    def test_auto_reconnect_transparent(self, topo):
        with FlowtuneService(topo, mode="auto", resume_grace=30.0) as svc:
            with FlowtuneClient(svc.address, svc.token_hex,
                                auto_reconnect=True) as cli:
                cli.flowlet_start(1, topo.route(0, 4))
                cli.wait_for_rates([1], timeout=10.0)
                cli.kill()
                # Next send hits the dead socket, reconnects, replays,
                # and delivers the new start — no exception surfaces.
                cli.flowlet_start(2, topo.route(1, 5))
                rates = cli.wait_for_rates([1, 2], timeout=10.0)
                assert rates[1] > 0 and rates[2] > 0
                assert cli.reconnects >= 1
                assert svc.stats["resumes"] >= 1
                assert svc.n_flows == 2

    def test_replay_window_closes_after_resume(self, topo):
        """REPLAY_DONE ends the reconcile window: a genuine duplicate
        start on a long-lived resumed connection is a protocol
        violation again, not silently swallowed forever."""
        from repro.service import wire
        with FlowtuneService(topo, mode="manual", resume_grace=30.0) as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_start(1, topo.route(0, 4))
                cli.step(5)
                cli.kill()
                cli.reconnect()
                assert svc.stats["resumes"] == 1
                cli._send(wire.encode_start([(1, topo.route(0, 4), 1.0)]))
                with pytest.raises(ServiceError,
                                   match="duplicate flowlet start"):
                    cli.poll(10.0)

    def test_grace_window_expiry_ends_flows_and_purges_usage(self, topo):
        with FlowtuneService(topo, mode="auto", resume_grace=0.3) as svc:
            cli = FlowtuneClient(svc.address, svc.token_hex)
            cid = cli.client_id
            cli.flowlet_start(9, topo.route(0, 4))
            cli.report_usage([(9, 12345.0)])
            cli.wait_for_rates([9], timeout=10.0)
            _wait(lambda: svc.usage_bytes(cid, 9) == 12345.0, 5.0,
                  "usage report to land")
            cli.kill()    # no BYE: enters the grace window
            _wait(lambda: svc.n_flows == 0, 10.0, "grace expiry")
            assert svc.stats["sessions_expired"] == 1
            assert svc.usage_bytes(cid, 9) is None
            # The session is gone: a resume attempt must be rejected.
            with pytest.raises(ServiceError, match="stale resume"):
                cli.reconnect()


# ----------------------------------------------------------------------
# ingest backpressure / slow readers
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_busy_credit_round_trip(self, topo):
        with FlowtuneService(topo, mode="auto", churn_rate=5.0,
                             churn_burst=3.0) as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                for fid in range(6):   # twice the bucket in one gulp
                    cli.flowlet_start(fid, topo.route(fid % 4,
                                                      4 + fid % 4))
                def saw_busy():
                    cli.poll(0.2)
                    return cli.busy_count > 0

                _wait(saw_busy, 10.0, "a BUSY reply")
                assert cli.busy_count >= 1
                retry_after, credit = cli.last_busy
                assert retry_after > 0
                assert credit == 3
                assert svc.stats["busy_sent"] >= 1
                # The flows all still land (the pause delays, never
                # drops) and the paced client keeps working.
                rates = cli.wait_for_rates(range(6), timeout=15.0)
                assert all(r > 0 for r in rates.values())

    def test_slow_reader_dropped_without_stalling_others(self, topo):
        with FlowtuneService(topo, mode="auto", max_outbox=4096,
                             sockbuf=4096, resume_grace=0.0) as svc:
            victim = FlowtuneClient(svc.address, svc.token_hex,
                                    sockbuf=4096)
            with FlowtuneClient(svc.address, svc.token_hex) as survivor:
                # A victim holding many flows (big push frames) that
                # never reads, while the survivor churns shared links
                # so everyone's rates keep moving.
                for fid in range(150):
                    victim.flowlet_start(fid, topo.route(fid % 4,
                                                         4 + fid % 4))
                deadline = time.monotonic() + 30.0
                fid = 1000
                while (svc.stats["slow_readers_dropped"] == 0
                       and time.monotonic() < deadline):
                    survivor.apply_churn(
                        starts=[(fid, topo.route(0, 4), 5.0)],
                        ends=[fid - 1] if fid > 1000 else [])
                    survivor.poll(0.01)
                    fid += 1
                assert svc.stats["slow_readers_dropped"] >= 1
                # The survivor's pushes kept flowing throughout and
                # still do after the drop.
                survivor.flowlet_start(7, topo.route(1, 5))
                assert survivor.wait_for_rates([7], timeout=10.0)[7] > 0
            victim.kill()

    def test_max_pending_rejected_in_manual_mode(self, topo):
        with pytest.raises(ValueError, match="manual mode"):
            FlowtuneService(topo, mode="manual", max_pending=10)


# ----------------------------------------------------------------------
# churn validation: a poisoned frame drops its sender, not the loop
# ----------------------------------------------------------------------
class TestChurnValidation:
    @pytest.mark.parametrize("flow, match", [
        pytest.param((0, [10**6], 1.0), "unknown link index",
                     id="bad-link-index"),
        pytest.param((0, [], 1.0), "route must have", id="empty-route"),
        pytest.param((0, [0] * 9, 1.0), "route must have",
                     id="too-many-hops"),
        pytest.param((0, [0], float("nan")), "weight must be > 0",
                     id="nan-weight"),
    ])
    def test_poisoned_start_drops_only_sender(self, topo, flow, match):
        """A START that would blow up apply_churn is rejected at
        dispatch: the sender gets an ERROR and is dropped; the duty
        cycle — and every other client — keeps running."""
        from repro.service import wire
        with FlowtuneService(topo, mode="auto") as svc:
            victim = FlowtuneClient(svc.address, svc.token_hex)
            with FlowtuneClient(svc.address, svc.token_hex) as survivor:
                survivor.flowlet_start(1, topo.route(0, 4))
                survivor.wait_for_rates([1], timeout=10.0)
                victim._send(wire.encode_start([flow]))
                with pytest.raises(ServiceError, match=match):
                    victim.poll(10.0)
                # The poison never reached the allocator, and the
                # service still pushes rates for fresh churn.
                assert svc.stats["churn_rejected"] == 0
                survivor.flowlet_start(2, topo.route(1, 5))
                assert survivor.wait_for_rates([2], timeout=10.0)[2] > 0
            victim.kill()

    def test_apply_churn_exception_does_not_kill_loop(self, topo):
        """Defense in depth: even a poisoned batch that bypasses
        dispatch validation is rejected without taking down the
        serving loop for every client."""
        with FlowtuneService(topo, mode="auto") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_start(1, topo.route(0, 4))
                cli.wait_for_rates([1], timeout=10.0)
                # Straight into the queue, skipping the wire checks.
                svc.queue.push_start(("rogue", 99), [10**6], 1.0)
                _wait(lambda: svc.stats["churn_rejected"] >= 1, 10.0,
                      "the poisoned batch to be rejected")
                cli.flowlet_start(2, topo.route(1, 5))
                assert cli.wait_for_rates([2], timeout=10.0)[2] > 0
                assert svc.n_flows == 2


# ----------------------------------------------------------------------
# lifecycle: close() vs a caller-owned run() thread
# ----------------------------------------------------------------------
class TestCallerOwnedRun:
    def test_close_waits_for_run_on_foreign_thread(self, topo):
        """close() from another thread must let run() leave the loop
        before tearing down the selector — no exception may escape
        the serving thread."""
        svc = FlowtuneService(topo, mode="auto")
        errors = []

        def serve():
            try:
                svc.run()
            except BaseException as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        thread = threading.Thread(target=serve, name="caller-owned-run")
        thread.start()
        try:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_start(1, topo.route(0, 4))
                cli.wait_for_rates([1], timeout=10.0)
        finally:
            svc.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert errors == []
        # And run() after close() is a clean no-op, not a crash on
        # the closed selector.
        svc.run()


# ----------------------------------------------------------------------
# satellite regressions
# ----------------------------------------------------------------------
class TestSatelliteRegressions:
    def test_usage_purged_on_flow_end(self, topo):
        with FlowtuneService(topo, mode="auto") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cid = cli.client_id
                cli.flowlet_start(3, topo.route(0, 4))
                cli.report_usage([(3, 999.0)])
                _wait(lambda: svc.usage_bytes(cid, 3) == 999.0, 5.0,
                      "usage report to land")
                cli.flowlet_end(3)
                _wait(lambda: svc.usage_bytes(cid, 3) is None, 5.0,
                      "usage purge on flow end")

    def test_usage_purged_on_client_bye(self, topo):
        with FlowtuneService(topo, mode="auto") as svc:
            cli = FlowtuneClient(svc.address, svc.token_hex)
            cid = cli.client_id
            cli.flowlet_start(3, topo.route(0, 4))
            cli.report_usage([(3, 42.0)])
            _wait(lambda: svc.usage_bytes(cid, 3) == 42.0, 5.0,
                  "usage report to land")
            cli.close()   # BYE ends the session immediately
            _wait(lambda: svc.usage_bytes(cid, 3) is None, 5.0,
                  "usage purge on client drop")
            assert svc.n_flows == 0

    def test_end_batch_duplicate_id_rejected(self, topo):
        from repro.service import wire
        with FlowtuneService(topo, mode="auto") as svc:
            with FlowtuneClient(svc.address, svc.token_hex) as cli:
                cli.flowlet_start(4, topo.route(0, 4))
                cli.wait_for_rates([4], timeout=10.0)
                cli._send(wire.encode_end([4, 4]))
                with pytest.raises(ServiceError, match="unknown flowlet"):
                    cli.poll(10.0)

    def test_spawn_service_surfaces_child_stderr(self):
        t0 = time.monotonic()
        with pytest.raises(RuntimeError) as exc_info:
            spawn_service(extra_args=["--definitely-not-a-flag"],
                          ready_timeout=20.0)
        assert time.monotonic() - t0 < 25.0   # bounded, not a hang
        message = str(exc_info.value)
        assert "failed to start" in message
        assert "unrecognized arguments" in message
