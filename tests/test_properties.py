"""Cross-module property-based invariants (hypothesis).

These capture the algebraic identities and safety properties the
system's correctness rests on, checked over randomized inputs:

* the gather/scatter kernels are adjoint (flow-side and link-side
  accounting always agree),
* allocations stay feasible through arbitrary churn + iteration
  interleavings,
* queues never exceed capacity and pFabric dequeues in priority order,
* the allocator's notified rates stay within the threshold contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (FlowTable, FlowtuneAllocator, LinkSet,
                        NedOptimizer, f_norm)
from repro.sim import DropTailQueue, Packet, PFabricQueue, SimFlow


def random_table(data, n_links=5, max_flows=12):
    table = FlowTable(LinkSet(np.full(n_links, 10.0)), max_route_len=4)
    n_flows = data.draw(st.integers(1, max_flows))
    for i in range(n_flows):
        length = data.draw(st.integers(1, min(4, n_links)))
        route = data.draw(st.lists(st.integers(0, n_links - 1),
                                   min_size=length, max_size=length,
                                   unique=True))
        table.add_flow(i, route)
    return table


class TestKernelAdjointness:
    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_gather_scatter_duality(self, data):
        """<x, R^T p> == <R x, p>: per-flow price sums weighted by
        rates must equal per-link loads weighted by prices."""
        table = random_table(data)
        n = table.n_flows
        rates = np.array(data.draw(st.lists(
            st.floats(0.0, 100.0), min_size=n, max_size=n)))
        prices = np.array(data.draw(st.lists(
            st.floats(0.0, 10.0), min_size=5, max_size=5)))
        flow_side = float(np.dot(rates, table.price_sums(prices)))
        link_side = float(np.dot(table.link_totals(rates), prices))
        assert flow_side == pytest.approx(link_side, rel=1e-9, abs=1e-9)


class TestChurnSafety:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), steps=st.integers(1, 25))
    def test_f_norm_feasible_through_random_interleavings(self, seed,
                                                          steps):
        """Arbitrary interleavings of add/remove/iterate never yield an
        infeasible normalized allocation."""
        rng = np.random.default_rng(seed)
        table = FlowTable(LinkSet(rng.uniform(5, 40, 4)), max_route_len=3)
        optimizer = NedOptimizer(table, gamma=float(rng.uniform(0.2, 1.5)))
        next_id = 0
        alive = []
        for _ in range(steps):
            action = rng.integers(3)
            if action == 0 or not alive:
                length = int(rng.integers(1, 4))
                table.add_flow(next_id,
                               rng.choice(4, size=length, replace=False))
                alive.append(next_id)
                next_id += 1
            elif action == 1 and alive:
                victim = alive.pop(int(rng.integers(len(alive))))
                table.remove_flow(victim)
            if table.n_flows:
                rates = optimizer.iterate(int(rng.integers(1, 5)))
                normalized = f_norm(table, rates)
                load = table.link_totals(normalized)
                assert np.all(load <= table.links.capacity * (1 + 1e-9))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_allocator_threshold_contract(self, seed):
        """After iterate(), every flow's notified rate is within the
        threshold of its current rate (or was just notified)."""
        rng = np.random.default_rng(seed)
        allocator = FlowtuneAllocator(LinkSet(rng.uniform(5, 20, 3)),
                                      update_threshold=0.05)
        for i in range(int(rng.integers(2, 8))):
            length = int(rng.integers(1, 4))
            allocator.flowlet_start(i, rng.choice(3, size=length,
                                                  replace=False))
        result = allocator.iterate(int(rng.integers(1, 30)))
        notified = allocator.current_rates()
        for flow_id, rate in result.rates.items():
            last = notified[flow_id]
            assert abs(rate - last) <= 0.05 * max(last, 1e-12) + 1e-12


def make_packet(seq, priority, flow_id=1, size=1000):
    flow = SimFlow(flow_id, 0, 1, 10_000, 0.0)
    pkt = Packet(flow, seq, size, Packet.DATA, ())
    pkt.priority = priority
    return pkt


class TestQueueProperties:
    @settings(max_examples=50, deadline=None)
    @given(arrivals=st.lists(st.integers(0, 30), min_size=1, max_size=40),
           capacity=st.integers(1, 10))
    def test_droptail_never_exceeds_capacity(self, arrivals, capacity):
        queue = DropTailQueue(capacity_packets=capacity)
        admitted = 0
        for i, _ in enumerate(arrivals):
            if queue.enqueue(make_packet(i, 0.0), 0.0):
                admitted += 1
            assert len(queue) <= capacity
        assert admitted + queue.stats.dropped_packets == len(arrivals)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
    def test_pfabric_dequeues_in_priority_order(self, priorities):
        queue = PFabricQueue(capacity_packets=64)
        for i, priority in enumerate(priorities):
            queue.enqueue(make_packet(i, priority), 0.0)
        out = []
        while True:
            packet = queue.dequeue(0.0)
            if packet is None:
                break
            out.append(packet.priority)
        assert out == sorted(out)

    @settings(max_examples=50, deadline=None)
    @given(arrivals=st.lists(st.tuples(st.floats(0.0, 10.0),
                                       st.integers(0, 3)),
                             min_size=1, max_size=30),
           capacity=st.integers(1, 8))
    def test_pfabric_keeps_best_under_pressure(self, arrivals, capacity):
        """Whatever is dropped, the packets remaining are never worse
        than the ones evicted (the pFabric guarantee)."""
        queue = PFabricQueue(capacity_packets=capacity)
        dropped, kept_input = [], []
        for i, (priority, _) in enumerate(arrivals):
            before = queue.stats.dropped_packets
            queue.enqueue(make_packet(i, priority), 0.0)
        remaining = []
        while True:
            packet = queue.dequeue(0.0)
            if packet is None:
                break
            remaining.append(packet.priority)
        all_priorities = sorted(p for p, _ in arrivals)
        # The survivors are exactly the |remaining| best arrivals.
        assert remaining == all_priorities[:len(remaining)]
