"""Control-message encodings and §7's wire-overhead arithmetic."""

import pytest

from repro.control import (FLOWLET_END_BYTES, FLOWLET_START_BYTES,
                           RATE_UPDATE_BYTES, batched_wire_bytes,
                           control_frame_bytes, wire_bytes)


class TestEncodings:
    def test_paper_payload_sizes(self):
        # §6.2: start, end, rate updates are 16, 4 and 6 bytes.
        assert FLOWLET_START_BYTES == 16
        assert FLOWLET_END_BYTES == 4
        assert RATE_UPDATE_BYTES == 6


class TestWireBytes:
    def test_minimum_frame_cost(self):
        # §7: "Ethernet has 64-byte minimum frames and preamble and
        # interframe gaps, which cost 84 bytes, even if only one byte
        # is sent."
        assert wire_bytes(1) == 84

    def test_rate_update_overhead_factor(self):
        # §7: "When sending an 8-byte rate update there is a 10x
        # overhead" — 84 bytes of wire for 8 bytes of payload.
        assert wire_bytes(8) / 8 == pytest.approx(10.5, rel=0.05)

    def test_large_payload_scales_linearly(self):
        assert wire_bytes(1000) == 1000 + 40 + 18 + 20

    def test_batching_amortizes_overhead(self):
        single = 10 * wire_bytes(RATE_UPDATE_BYTES)
        batched = batched_wire_bytes([RATE_UPDATE_BYTES] * 10)
        assert batched < single

    def test_empty_batch_is_free(self):
        assert batched_wire_bytes([]) == 0

    def test_control_frame_floor(self):
        assert control_frame_bytes(1) == 64
        assert control_frame_bytes(100) == 158
