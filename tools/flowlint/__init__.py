"""flowlint — repo-aware static analysis for the Flowtune reproduction.

The codebase's hardest-won properties are enforced at runtime by the
tier-1 suite; flowlint enforces the *structural* side of the same
contracts at lint time, before any test runs:

``FL-DET``
    Determinism of the kernel hot path: no order-unstable reductions
    (``np.add.reduceat``), no float accumulation driven by set
    iteration, no ``bincount`` scatters bypassing the tier dispatcher.
``FL-LIFE``
    Resource lifecycle: classes that construct sockets, shared memory,
    threads, or child processes must carry the repo's close/context-
    manager contract; function-local acquisitions must be released.
``FL-WIRE``
    Wire safety: ``struct`` format strings must agree in arity with
    their pack arguments and unpack targets, every packed format must
    have a decode counterpart in the wire scan group, declared size
    constants must match ``calcsize``, and ``pickle`` never appears
    under ``repro/service/``.
``FL-LOCK``
    Concurrency discipline: state shared between the selectors loop
    and client threads stays under its owning lock; no blocking calls
    while a lock is held or inside a duty-cycle ``run()``.
``FL-API``
    Facade hygiene: everything reachable from ``repro.__init__`` is in
    ``__all__``, resolvable, and fully annotated.

Run it with ``python -m tools.flowlint src tests``.  Suppress a single
line with ``# flowlint: disable=FL-XXXNNN`` (a family prefix such as
``FL-LIFE`` or ``all`` also works); suppress pre-existing findings via
``tools/flowlint/baseline.json`` (each entry carries a justification).
"""

from .engine import (Baseline, Diagnostic, Module, Project,
                     load_project, run_rules)
from .rules import ALL_RULES, RULE_DOCS

__all__ = [
    "ALL_RULES", "Baseline", "Diagnostic", "Module", "Project",
    "RULE_DOCS", "load_project", "run_rules",
]
