"""CLI: ``python -m tools.flowlint [paths...]``.

Exit codes: 0 clean (baseline-suppressed findings allowed), 1 new
findings, 2 internal/usage error.  ``--format github`` emits workflow
annotation commands; ``--step-summary`` appends a findings table to
``$GITHUB_STEP_SUMMARY`` via the benchmark report formatter.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys
from pathlib import Path

from .engine import Baseline, load_project, run_rules
from .rules import RULE_DOCS

_DEFAULT_PATHS = ["src", "tests", "tools"]


def _load_report_module(root: Path):
    """benchmarks/report.py, loaded by path (it is not a package)."""
    path = root / "benchmarks" / "report.py"
    if not path.exists():
        return None
    spec = importlib.util.spec_from_file_location("_flowlint_report", path)
    if spec is None or spec.loader is None:  # pragma: no cover
        return None
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception:  # pragma: no cover - report helper is optional
        return None
    return module


def _emit_step_summary(root: Path, new, suppressed, stale) -> None:
    report = _load_report_module(root)
    headers = ["rule", "location", "finding"]
    rows = [[d.rule, f"{d.path}:{d.line}", d.message] for d in new]
    if report is not None and hasattr(report, "format_table"):
        table = report.format_table(headers, rows or
                                    [["—", "—", "no new findings"]],
                                    markdown=True)
    else:  # pragma: no cover - fallback when report.py moves
        lines = ["| " + " | ".join(headers) + " |",
                 "|" + "---|" * len(headers)]
        lines += ["| " + " | ".join(str(c) for c in row) + " |"
                  for row in (rows or [["—", "—", "no new findings"]])]
        table = "\n".join(lines)
    summary = (f"### flowlint\n\n{len(new)} new finding(s), "
               f"{len(suppressed)} baseline-suppressed, "
               f"{len(stale)} stale baseline entr(y/ies)\n\n{table}\n")
    if report is not None and hasattr(report, "write_step_summary"):
        report.write_step_summary(summary)
    else:  # pragma: no cover
        target = os.environ.get("GITHUB_STEP_SUMMARY")
        if target:
            with open(target, "a", encoding="utf-8") as fh:
                fh.write(summary)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.flowlint",
        description="Repo-aware static analysis for the Flowtune "
                    "reproduction (FL-DET/LIFE/WIRE/LOCK/API).")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to scan "
                             f"(default: {' '.join(_DEFAULT_PATHS)})")
    parser.add_argument("--root", default=".",
                        help="project root diagnostics are relative to")
    parser.add_argument("--baseline", default="tools/flowlint/baseline.json",
                        help="baseline suppression file "
                             "('none' disables)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current "
                             "finding set and exit 0")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text")
    parser.add_argument("--step-summary", action="store_true",
                        help="append a findings table to "
                             "$GITHUB_STEP_SUMMARY")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on stale baseline entries")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULE_DOCS):
            print(f"{rule}  {RULE_DOCS[rule]}")
        return 0

    root = Path(args.root).resolve()
    paths = args.paths or [p for p in _DEFAULT_PATHS
                           if (root / p).exists()]
    try:
        project = load_project(root, paths)
    except OSError as exc:
        print(f"flowlint: cannot load project: {exc}", file=sys.stderr)
        return 2
    diags = run_rules(project)

    baseline_path = None if args.baseline == "none" \
        else root / args.baseline
    if args.update_baseline:
        if baseline_path is None:
            print("flowlint: --update-baseline needs a baseline path",
                  file=sys.stderr)
            return 2
        existing = Baseline.load(baseline_path)
        justified = {existing._key(e): e.get("justification", "")
                     for e in existing.entries}
        updated = Baseline.from_diagnostics(diags)
        for entry in updated.entries:
            prior = justified.get(Baseline._key(entry))
            if prior:
                entry["justification"] = prior
        updated.save(baseline_path)
        print(f"flowlint: baseline rewritten with {len(diags)} entr(y/ies)"
              f" -> {baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    new, suppressed, stale = baseline.apply(diags)

    if args.format == "json":
        print(json.dumps({
            "new": [vars(d) for d in new],
            "suppressed": [vars(d) for d in suppressed],
            "stale_baseline_entries": stale,
        }, indent=2))
    else:
        for diag in new:
            if args.format == "github":
                print(f"::error file={diag.path},line={diag.line},"
                      f"title={diag.rule}::{diag.message}")
            else:
                print(diag.render())
        for entry in stale:
            print(f"flowlint: stale baseline entry (fixed? remove it): "
                  f"{entry.get('rule')} {entry.get('path')}: "
                  f"{entry.get('message')}", file=sys.stderr)
        if new:
            print(f"\nflowlint: {len(new)} new finding(s) "
                  f"({len(suppressed)} baseline-suppressed). "
                  "Fix them, add a `# flowlint: disable=RULE` pragma "
                  "with a reason, or (pre-existing only) baseline them.",
                  file=sys.stderr)
        else:
            print(f"flowlint: clean ({len(diags)} finding(s) total, "
                  f"{len(suppressed)} baseline-suppressed, "
                  f"{len(stale)} stale).")

    if args.step_summary:
        _emit_step_summary(root, new, suppressed, stale)

    if new:
        return 1
    if stale and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
