"""FL-LIFE — the resource-lifecycle contract.

Every resource owner in this repo promises the same thing (and
``tests/test_lifecycle.py`` asserts it at runtime): context-manager
usable, idempotent ``close()``, nothing leaked.  These rules enforce
the structural half of that promise:

FL-LIFE001
    A class that constructs an OS resource (socket, ``SharedMemory``,
    ``Thread``, ``Popen``, ``Process``, selector, pipe) must define
    ``close()``.
FL-LIFE002
    A *public* resource-owning class must additionally be a context
    manager (``__enter__`` + ``__exit__``) — the repo-wide contract
    the facade documents.
FL-LIFE003
    A function-local resource that never escapes (returned, stored,
    passed on, registered) and is never released (``close``/``join``/
    ``terminate``/…, ``with``, ``finally``) is a leak.
FL-LIFE004
    ``__exit__`` on a resource owner must delegate to ``close()`` —
    two cleanup paths drift apart.
"""

from __future__ import annotations

import ast

from ..engine import Diagnostic, Module, Project
from ._util import call_name, iter_class_functions, iter_classes

RULES = {
    "FL-LIFE001": "resource-owning class without close()",
    "FL-LIFE002": "public resource-owning class without __enter__/__exit__",
    "FL-LIFE003": "function-local resource acquired but never released",
    "FL-LIFE004": "__exit__ does not delegate to close()",
}

_SCOPE = ("repro", "tools")

#: Call names (last dotted component) that acquire an OS resource.
RESOURCE_CTORS = {
    "socket", "socketpair", "create_connection", "connect_retry",
    "SharedMemory", "Thread", "Popen", "Process", "DefaultSelector",
}
#: Method calls that count as releasing a resource.
RELEASE_CALLS = {
    "close", "join", "terminate", "kill", "unlink", "shutdown",
    "detach", "release", "stop",
}


def _is_resource_ctor(call: ast.Call) -> bool:
    name = call_name(call)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1]
    if last not in RESOURCE_CTORS:
        return False
    # `os.path.join`-style false friends: none of the ctor names
    # collide with common helpers, but `socket.socket()` vs a local
    # function named `socket` is accepted — the scope filter keeps
    # this to repo packages where the convention holds.
    return True


def check(project: Project) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for module in project.modules:
        if not module.in_pkg(*_SCOPE):
            continue
        diags.extend(_check_classes(module))
        diags.extend(_check_locals(module))
    return diags


# ----------------------------------------------------------------------
# class-level contract
# ----------------------------------------------------------------------

def _class_constructs_resource(cls: ast.ClassDef) -> int | None:
    """Line of the first resource construction inside the class."""
    for fn in iter_class_functions(cls):
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and _is_resource_ctor(node):
                return node.lineno
    return None


def _check_classes(module: Module) -> list[Diagnostic]:
    diags = []
    for cls in iter_classes(module.tree):
        line = _class_constructs_resource(cls)
        if line is None:
            continue
        defined = {fn.name for fn in iter_class_functions(cls)}
        public = not cls.name.startswith("_")
        # Private worker-protocol classes may release through their
        # protocol verb (`shutdown`/`stop`); public owners must carry
        # the facade's close() contract.
        release_verbs = {"close"} if public else {"close", "shutdown",
                                                  "stop"}
        if not release_verbs & defined:
            diags.append(Diagnostic(
                "FL-LIFE001", module.rel, cls.lineno,
                f"class {cls.name} constructs an OS resource (line "
                f"{line}) but defines no close()"))
            continue
        if public and not {"__enter__", "__exit__"} <= defined:
            diags.append(Diagnostic(
                "FL-LIFE002", module.rel, cls.lineno,
                f"public resource owner {cls.name} is not a context "
                "manager (missing __enter__/__exit__)"))
        if "__exit__" in defined:
            exit_fn = next(fn for fn in iter_class_functions(cls)
                           if fn.name == "__exit__")
            if not _calls_close(exit_fn):
                diags.append(Diagnostic(
                    "FL-LIFE004", module.rel, exit_fn.lineno,
                    f"{cls.name}.__exit__ does not call close(): two "
                    "cleanup paths will drift apart"))
    return diags


def _calls_close(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = call_name(node) or ""
            if name.rsplit(".", 1)[-1] == "close":
                return True
    return False


# ----------------------------------------------------------------------
# function-local leaks
# ----------------------------------------------------------------------

def _check_locals(module: Module) -> list[Diagnostic]:
    diags = []
    for fn in _all_functions(module.tree):
        diags.extend(_check_function_locals(module, fn))
    return diags


def _all_functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _check_function_locals(module: Module, fn: ast.FunctionDef,
                           ) -> list[Diagnostic]:
    acquisitions: dict[str, int] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call) \
                and _is_resource_ctor(node.value):
            acquisitions[node.targets[0].id] = node.lineno
    if not acquisitions:
        return []
    released = _released_names(fn)
    return [Diagnostic(
        "FL-LIFE003", module.rel, line,
        f"local resource `{name}` in {fn.name}() is neither released "
        "nor handed off (no close/join/with/return/store)")
        for name, line in acquisitions.items() if name not in released]


def _released_names(fn: ast.FunctionDef) -> set[str]:
    """Names that escape the function or are explicitly released."""
    released: set[str] = set()

    def mark(node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                released.add(sub.id)

    for node in ast.walk(fn):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) \
                and getattr(node, "value", None) is not None:
            mark(node.value)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                mark(item.context_expr)
        elif isinstance(node, ast.Call):
            # passed to another callable (ownership handed off) ...
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                mark(arg)
            # ... or explicitly released: `var.close()`, `var.join()`.
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in RELEASE_CALLS \
                    and isinstance(node.func.value, ast.Name):
                released.add(node.func.value.id)
        elif isinstance(node, ast.Assign):
            # stored onto an object/container, or re-bound into a
            # tuple/list that escapes: treat value names as escaping
            # when the target is not a plain local name.
            if not all(isinstance(t, ast.Name) for t in node.targets):
                mark(node.value)
        elif isinstance(node, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
            mark(node)
    return released
