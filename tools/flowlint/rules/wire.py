"""FL-WIRE — wire-format safety for the service codec and the fabric.

The service speaks a fixed-layout versioned codec (``service/wire.py``)
over the fabric's length+tag framing (``parallel/fabric.py``); both
sides of every format must agree *statically*.  Rules:

FL-WIRE001
    No ``pickle`` anywhere under ``repro/service/`` — the service wire
    path is fixed-layout by design (untrusted peers hold the token,
    not arbitrary code execution).
FL-WIRE002
    ``pack``/``pack_into`` argument count must match the format
    string's value count.
FL-WIRE003
    Tuple-unpacking an ``unpack``/``unpack_from`` result must bind
    exactly the format's value count.
FL-WIRE004
    Every format string packed somewhere in the wire scan group must
    be unpacked somewhere in the group, and vice versa — a one-sided
    format is an encoder without a decoder.
FL-WIRE005
    A ``<NAME>_SIZE``/``<NAME>_BYTES`` integer constant next to a
    ``Struct`` constant ``<NAME>`` must equal ``calcsize(format)``.
"""

from __future__ import annotations

import ast
import struct as structlib

from ..engine import Diagnostic, Module, Project
from ._util import call_name

RULES = {
    "FL-WIRE001": "pickle import under repro/service/",
    "FL-WIRE002": "struct.pack argument count != format value count",
    "FL-WIRE003": "unpack target count != format value count",
    "FL-WIRE004": "format packed without a decode counterpart (or v.v.)",
    "FL-WIRE005": "declared size constant != calcsize(format)",
}

#: Modules whose structs form one cross-checked codec group.
_GROUP = ("repro/service", "repro/parallel/fabric.py")
_SERVICE = ("repro/service",)


def _format_value_count(fmt: str) -> int | None:
    """Number of python values a struct format packs/unpacks."""
    try:
        return len(structlib.unpack(fmt, b"\0" * structlib.calcsize(fmt)))
    except structlib.error:
        return None


def _struct_constants(module: Module) -> dict[str, tuple[str, int]]:
    """Module-level ``NAME = struct.Struct("fmt")`` bindings."""
    consts: dict[str, tuple[str, int]] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            name = call_name(node.value) or ""
            if name.rsplit(".", 1)[-1] == "Struct" and node.value.args \
                    and isinstance(node.value.args[0], ast.Constant) \
                    and isinstance(node.value.args[0].value, str):
                consts[node.targets[0].id] = (node.value.args[0].value,
                                              node.lineno)
    return consts


def _int_constants(module: Module) -> dict[str, tuple[int, int]]:
    consts: dict[str, tuple[int, int]] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, int):
            consts[node.targets[0].id] = (node.value.value, node.lineno)
    return consts


def check(project: Project) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    group = [m for m in project.modules if m.in_pkg(*_GROUP)]
    group_rels = {m.rel for m in group}
    # Struct constants are resolvable across the group (names are
    # import-shared between wire.py / server.py / client.py).
    global_consts: dict[str, tuple[str, int]] = {}
    per_module: dict[str, dict[str, tuple[str, int]]] = {}
    for module in group:
        consts = _struct_constants(module)
        per_module[module.rel] = consts
        for name, value in consts.items():
            global_consts.setdefault(name, value)

    packed: dict[str, tuple[str, int]] = {}   # fmt -> first pack site
    unpacked: dict[str, tuple[str, int]] = {}  # fmt -> first unpack site

    for module in project.modules:
        # FL-WIRE001 — pickle under repro/service/.
        if module.in_pkg(*_SERVICE):
            diags.extend(_check_pickle(module))
        if module.rel not in group_rels:
            continue
        consts = {**global_consts, **per_module.get(module.rel, {})}
        diags.extend(_check_calls(module, consts, packed, unpacked))
        diags.extend(_check_sizes(module, per_module[module.rel]))

    # FL-WIRE004 — cross-group pairing.
    for fmt, (rel, line) in sorted(packed.items()):
        if fmt not in unpacked:
            diags.append(Diagnostic(
                "FL-WIRE004", rel, line,
                f"format {fmt!r} is packed here but never unpacked "
                "anywhere in the wire scan group"))
    for fmt, (rel, line) in sorted(unpacked.items()):
        if fmt not in packed:
            diags.append(Diagnostic(
                "FL-WIRE004", rel, line,
                f"format {fmt!r} is unpacked here but never packed "
                "anywhere in the wire scan group"))
    return diags


def _check_pickle(module: Module) -> list[Diagnostic]:
    diags = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "pickle":
                    diags.append(Diagnostic(
                        "FL-WIRE001", module.rel, node.lineno,
                        "pickle under repro/service/: the service wire "
                        "path is fixed-layout by design"))
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".")[0] == "pickle":
                diags.append(Diagnostic(
                    "FL-WIRE001", module.rel, node.lineno,
                    "pickle under repro/service/: the service wire "
                    "path is fixed-layout by design"))
    return diags


def _resolve_format(call: ast.Call, consts: dict[str, tuple[str, int]],
                    ) -> tuple[str | None, bool]:
    """(format, from_literal_arg) for a pack/unpack call site.

    ``struct.pack("fmt", ...)`` carries the format as arg 0;
    ``CONST.pack(...)`` resolves through the Struct constant table.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None, False
    owner = func.value
    if isinstance(owner, ast.Name) and owner.id in consts:
        return consts[owner.id][0], False
    # struct.pack / struct.unpack with a literal first argument
    name = call_name(call) or ""
    if name.split(".", 1)[0] in ("struct", "structlib") and call.args \
            and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        return call.args[0].value, True
    return None, False


def _check_calls(module: Module, consts: dict[str, tuple[str, int]],
                 packed: dict[str, tuple[str, int]],
                 unpacked: dict[str, tuple[str, int]]) -> list[Diagnostic]:
    diags = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or \
                not isinstance(node.func, ast.Attribute):
            continue
        op = node.func.attr
        if op not in ("pack", "pack_into", "unpack", "unpack_from",
                      "iter_unpack"):
            continue
        fmt, literal = _resolve_format(node, consts)
        if fmt is None:
            continue
        count = _format_value_count(fmt)
        if count is None:
            continue
        if op in ("pack", "pack_into"):
            packed.setdefault(fmt, (module.rel, node.lineno))
            if not any(isinstance(a, ast.Starred) for a in node.args):
                given = len(node.args)
                if literal:
                    given -= 1          # the format itself
                if op == "pack_into":
                    given -= 2 if literal else 2  # buffer, offset
                if given >= 0 and given != count:
                    diags.append(Diagnostic(
                        "FL-WIRE002", module.rel, node.lineno,
                        f"pack format {fmt!r} takes {count} value(s) "
                        f"but {given} were given"))
        else:
            unpacked.setdefault(fmt, (module.rel, node.lineno))
            parent = _assign_parent(module.tree, node)
            if parent is not None:
                targets = parent.targets[0]
                if isinstance(targets, ast.Tuple):
                    if len(targets.elts) != count:
                        diags.append(Diagnostic(
                            "FL-WIRE003", module.rel, node.lineno,
                            f"unpack of {fmt!r} yields {count} value(s) "
                            f"but {len(targets.elts)} target(s) bind it"))
    return diags


def _assign_parent(tree: ast.Module, call: ast.Call) -> ast.Assign | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and node.value is call \
                and len(node.targets) == 1:
            return node
    return None


def _check_sizes(module: Module, consts: dict[str, tuple[str, int]],
                 ) -> list[Diagnostic]:
    diags = []
    ints = _int_constants(module)
    for name, (fmt, _) in consts.items():
        base = name.lstrip("_")
        for suffix in ("_SIZE", "_BYTES"):
            for candidate in (base + suffix, "_" + base + suffix):
                hit = ints.get(candidate)
                if hit is None:
                    continue
                declared, line = hit
                actual = structlib.calcsize(fmt)
                if declared != actual:
                    diags.append(Diagnostic(
                        "FL-WIRE005", module.rel, line,
                        f"{candidate} = {declared} but calcsize"
                        f"({fmt!r}) = {actual}"))
    return diags
