"""FL-API — facade hygiene for the ``repro`` top-level namespace.

The top-level namespace is the supported public API; everything in it
must be deliberate and typed:

FL-API001
    ``__all__`` and the facade imports must agree both ways: every
    ``__all__`` name resolves to an import/definition, every imported
    public name is in ``__all__``.
FL-API002
    Every function/class reachable from the facade carries full type
    annotations — parameters and returns on functions, ``__init__``
    and public methods on classes (``__init__`` may omit its return).
"""

from __future__ import annotations

import ast

from ..engine import Diagnostic, Module, Project
from ._util import iter_class_functions

RULES = {
    "FL-API001": "facade __all__ / import mismatch",
    "FL-API002": "facade-reachable symbol lacks type annotations",
}

_ROOT_INIT = "repro/__init__.py"


def _all_names(tree: ast.Module) -> tuple[list[str], int] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "__all__" \
                and isinstance(node.value, (ast.List, ast.Tuple)):
            names = [e.value for e in node.value.elts
                     if isinstance(e, ast.Constant)
                     and isinstance(e.value, str)]
            return names, node.lineno
    return None


def _imports(tree: ast.Module) -> dict[str, tuple[str, int]]:
    """name -> (relative module path, line) for ``from .x import y``."""
    table: dict[str, tuple[str, int]] = {}
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.level >= 1:
            mod = (node.module or "").replace(".", "/")
            for alias in node.names:
                table[alias.asname or alias.name] = (mod, node.lineno)
    return table


def _module_for(project: Project, base: Module, relmod: str,
                ) -> Module | None:
    """Resolve a level-1 relative import against ``base``'s package."""
    pkg_dir = "/".join(base.rel.split("/")[:-1])
    prefix = f"{pkg_dir}/{relmod}" if relmod else pkg_dir
    for candidate in (prefix + ".py", prefix + "/__init__.py"):
        module = next((m for m in project.modules if m.rel == candidate),
                      None)
        if module is not None:
            return module
    return None


def _find_def(tree: ast.Module, name: str):
    for node in tree.body:
        if isinstance(node, (ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)) and node.name == name:
            return node
    return None


def _resolve(project: Project, module: Module, name: str, depth: int = 0):
    """Follow re-exports to the defining module; returns
    ``(module, def_node)`` or ``(None, None)``."""
    if depth > 4:
        return None, None
    node = _find_def(module.tree, name)
    if node is not None:
        return module, node
    target = _imports(module.tree).get(name)
    if target is None:
        return None, None
    sub = _module_for(project, module, target[0])
    if sub is None:
        return None, None
    return _resolve(project, sub, name, depth + 1)


def _unannotated(fn: ast.FunctionDef) -> list[str]:
    """Names of parameters lacking annotations (+ "return")."""
    missing = []
    args = fn.args
    all_args = list(args.posonlyargs) + list(args.args) \
        + list(args.kwonlyargs)
    for i, arg in enumerate(all_args):
        if i == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if fn.returns is None and fn.name != "__init__":
        missing.append("return")
    return missing


def check(project: Project) -> list[Diagnostic]:
    # Prefer the shortest match (the real package root, not a fixture
    # nested deeper).
    candidates = [m for m in project.modules if m.rel.endswith(_ROOT_INIT)]
    root = min(candidates, key=lambda m: len(m.rel), default=None)
    if root is None:
        return []
    diags: list[Diagnostic] = []
    allspec = _all_names(root.tree)
    imports = _imports(root.tree)
    if allspec is None:
        return [Diagnostic("FL-API001", root.rel, 1,
                           "facade module defines no __all__ list")]
    names, all_line = allspec

    # FL-API001 — both directions.
    module_defs = {n.name for n in root.tree.body
                   if isinstance(n, (ast.ClassDef, ast.FunctionDef))}
    assigned = {t.id for n in root.tree.body if isinstance(n, ast.Assign)
                for t in n.targets if isinstance(t, ast.Name)}
    for name in names:
        if name in imports or name in module_defs or name in assigned:
            continue
        diags.append(Diagnostic(
            "FL-API001", root.rel, all_line,
            f"__all__ lists {name!r} but the facade neither imports "
            "nor defines it"))
    for name, (_, line) in sorted(imports.items()):
        if not name.startswith("_") and name not in names:
            diags.append(Diagnostic(
                "FL-API001", root.rel, line,
                f"facade imports {name!r} but __all__ omits it"))

    # FL-API002 — annotations on everything reachable.
    for name in names:
        if name.startswith("_") or name not in imports:
            continue
        target_module, node = _resolve(project, root, name)
        if target_module is None:
            diags.append(Diagnostic(
                "FL-API001", root.rel, imports[name][1],
                f"facade name {name!r} does not resolve to a "
                "definition in the project"))
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            missing = _unannotated(node)
            if missing:
                diags.append(Diagnostic(
                    "FL-API002", target_module.rel, node.lineno,
                    f"public function {name}() is missing annotations "
                    f"for: {', '.join(missing)}"))
        elif isinstance(node, ast.ClassDef):
            for fn in iter_class_functions(node):
                public = not fn.name.startswith("_") \
                    or fn.name == "__init__"
                if not public:
                    continue
                if any(isinstance(d, ast.Name) and d.id == "overload"
                       for d in fn.decorator_list):
                    continue
                missing = _unannotated(fn)
                if missing:
                    diags.append(Diagnostic(
                        "FL-API002", target_module.rel, fn.lineno,
                        f"{name}.{fn.name}() is missing annotations "
                        f"for: {', '.join(missing)}"))
    return diags
