"""Shared AST helpers for the flowlint rule families."""

from __future__ import annotations

import ast

__all__ = [
    "call_name", "dotted", "iter_class_functions", "iter_classes",
    "iter_functions", "timeout_given",
]


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's callee (None for computed callees)."""
    return dotted(call.func)


def iter_classes(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def iter_functions(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def iter_class_functions(cls: ast.ClassDef):
    """Methods defined directly on the class (not nested functions)."""
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def timeout_given(call: ast.Call) -> bool:
    """True when a call passes any positional argument or a
    ``timeout=`` keyword — i.e. ``join(5)``, ``wait(timeout=1)``,
    ``select(0.2)`` are bounded; ``join()``/``wait()`` are not."""
    if call.args:
        return True
    return any(kw.arg == "timeout" for kw in call.keywords)
