"""FL-LOCK — concurrency discipline around locks and duty cycles.

The service threading model is: one selectors thread owns the duty
cycle (``FlowtuneService.run``), client threads own their send path,
and every attribute both sides touch is guarded by the owning lock.
The client mirrors it with ``_send_lock`` (reconnect can be triggered
from either side).  Rules:

FL-LOCK001
    Blocking call (``sendall``, unbounded ``join``/``wait``, ``recv``
    without a timeout discipline, ``sleep``, a blocking dial) while a
    lock is held — everything else queued on that lock stalls.
    ``cond.wait()`` *on the held lock itself* is exempt: condition
    variables release their lock while waiting.
FL-LOCK002
    Blocking call reachable from a selectors duty cycle (a ``run``
    method driving ``.select()``): one slow peer must never stall the
    cycle — that is the PR 7 outbox/backpressure contract.
FL-LOCK003
    An attribute written both under a lock and outside it (outside
    ``__init__``): either every writer holds the lock or the lock is
    decoration.  A method whose every intra-class call site sits in a
    locked region is itself treated as locked (one-level contextual
    propagation, iterated to fixpoint).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..engine import Diagnostic, Module, Project
from ._util import call_name, dotted, iter_class_functions, iter_classes, \
    timeout_given

RULES = {
    "FL-LOCK001": "blocking call while holding a lock",
    "FL-LOCK002": "blocking call inside a selectors duty cycle",
    "FL-LOCK003": "attribute written both under a lock and outside it",
}

_SCOPE = ("repro",)

_LOCK_CTORS = {"Lock", "RLock", "Condition"}
#: Socket-ish calls that block unless a timeout discipline is visible.
_SOCKET_BLOCKING = {"recv", "recvfrom", "recv_into", "accept"}
#: Calls that block unconditionally.
_ALWAYS_BLOCKING = {"sendall", "sleep", "create_connection",
                    "connect_retry", "connect"}
#: Calls that block unless called with a timeout argument.
_NEEDS_TIMEOUT = {"join", "wait", "select"}


@dataclass
class _Site:
    """One interesting node inside a method, with its lock context."""

    node: ast.AST
    line: int
    lock: str | None      # held lock attr ("self._lock") or None


@dataclass
class _MethodFacts:
    name: str
    fn: ast.FunctionDef
    attr_writes: list[tuple[str, _Site]] = field(default_factory=list)
    self_calls: list[tuple[str, _Site]] = field(default_factory=list)
    blocking: list[tuple[str, ast.Call, _Site]] = field(default_factory=list)
    has_timeout_discipline: bool = False   # settimeout/setblocking seen


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    locks: set[str] = set()
    for fn in iter_class_functions(cls):
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Attribute) \
                    and isinstance(node.targets[0].value, ast.Name) \
                    and node.targets[0].value.id == "self" \
                    and isinstance(node.value, ast.Call):
                name = call_name(node.value) or ""
                if name.rsplit(".", 1)[-1] in _LOCK_CTORS:
                    locks.add(node.targets[0].attr)
    return locks


class _MethodScanner(ast.NodeVisitor):
    """Single pass over one method, tracking the held-lock context."""

    def __init__(self, facts: _MethodFacts, locks: set[str]):
        self.facts = facts
        self.locks = locks
        self.held: list[str] = []

    def _current(self) -> str | None:
        return self.held[-1] if self.held else None

    def visit_With(self, node: ast.With) -> None:
        acquired = None
        for item in node.items:
            name = dotted(item.context_expr)
            if name is None and isinstance(item.context_expr, ast.Call):
                name = dotted(item.context_expr.func)
            if name and name.startswith("self.") \
                    and name.split(".")[1] in self.locks:
                acquired = name
        for item in node.items:
            self.visit(item.context_expr)
        if acquired:
            self.held.append(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            self.held.pop()

    visit_AsyncWith = visit_With

    def _site(self, node: ast.AST) -> _Site:
        return _Site(node=node, line=getattr(node, "lineno", 0),
                     lock=self._current())

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node)
        self.visit(node.value)

    def _record_target(self, target: ast.AST, stmt: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, stmt)
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            self.facts.attr_writes.append((target.attr, self._site(stmt)))

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node) or ""
        last = name.rsplit(".", 1)[-1]
        if last in ("settimeout", "setblocking"):
            self.facts.has_timeout_discipline = True
        if name.startswith("self.") and name.count(".") == 1:
            self.facts.self_calls.append((name.split(".")[1],
                                          self._site(node)))
        if self._is_blocking(node, name, last):
            self.facts.blocking.append((last, node, self._site(node)))
        self.generic_visit(node)

    def _is_blocking(self, node: ast.Call, name: str, last: str) -> bool:
        if last in _ALWAYS_BLOCKING:
            # `time.sleep` / bare `sleep`; dials; sendall.
            return True
        if last in _SOCKET_BLOCKING:
            return True   # may be waived later by timeout discipline
        if last in _NEEDS_TIMEOUT and not timeout_given(node):
            held = self._current()
            if last == "wait" and held is not None \
                    and (name == held + ".wait"
                         or name.startswith(held + ".")):
                return False    # cond.wait() releases the held lock
            return True
        return False


def _scan_class(cls: ast.ClassDef, locks: set[str],
                ) -> dict[str, _MethodFacts]:
    facts: dict[str, _MethodFacts] = {}
    for fn in iter_class_functions(cls):
        mf = _MethodFacts(name=fn.name, fn=fn)
        _MethodScanner(mf, locks).visit(fn)
        facts[fn.name] = mf
    return facts


def _locked_methods(facts: dict[str, _MethodFacts]) -> set[str]:
    """Methods whose every intra-class call site is in a locked
    region (lexically, or inside an already-locked method)."""
    call_sites: dict[str, list[tuple[str, _Site]]] = {}
    for mf in facts.values():
        for callee, site in mf.self_calls:
            call_sites.setdefault(callee, []).append((mf.name, site))
    locked: set[str] = set()
    for _ in range(len(facts) + 1):
        changed = False
        for name, sites in call_sites.items():
            if name in locked or name not in facts or name == "__init__":
                continue
            if all(site.lock is not None or caller in locked
                   for caller, site in sites):
                locked.add(name)
                changed = True
        if not changed:
            break
    return locked


def check(project: Project) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for module in project.modules:
        if not module.in_pkg(*_SCOPE):
            continue
        for cls in iter_classes(module.tree):
            diags.extend(_check_class(module, cls))
    return diags


def _check_class(module: Module, cls: ast.ClassDef) -> list[Diagnostic]:
    diags = []
    locks = _lock_attrs(cls)
    facts = _scan_class(cls, locks)
    class_nonblocking = any(
        isinstance(node, ast.Call)
        and (call_name(node) or "").endswith("setblocking")
        and node.args and isinstance(node.args[0], ast.Constant)
        and node.args[0].value is False
        for fn in iter_class_functions(cls) for node in ast.walk(fn))

    # FL-LOCK001 — blocking while holding a lock.
    if locks:
        for mf in facts.values():
            for kind, _call, site in mf.blocking:
                if site.lock is None:
                    continue
                if kind in _SOCKET_BLOCKING and \
                        (mf.has_timeout_discipline or class_nonblocking):
                    continue
                diags.append(Diagnostic(
                    "FL-LOCK001", module.rel, site.line,
                    f"blocking `{kind}` while holding {site.lock}: "
                    "everything queued on the lock stalls"))

    # FL-LOCK002 — blocking inside a selectors duty cycle.
    run = facts.get("run")
    if run is not None and any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "select"
            for node in ast.walk(run.fn)):
        reachable = _reachable(facts, "run")
        for name in sorted(reachable):
            mf = facts[name]
            for kind, _call, site in mf.blocking:
                if kind in _SOCKET_BLOCKING and \
                        (class_nonblocking or mf.has_timeout_discipline):
                    continue
                if kind == "select":
                    continue    # the cycle's own bounded select
                diags.append(Diagnostic(
                    "FL-LOCK002", module.rel, site.line,
                    f"blocking `{kind}` in {cls.name}.{name}() is "
                    "reachable from the run() duty cycle: one slow "
                    "peer stalls every client"))

    # FL-LOCK003 — dual-context attribute writes.
    if locks:
        locked_ctx = _locked_methods(facts)
        sites_by_attr: dict[str, list[tuple[str, _Site, bool]]] = {}
        for mf in facts.values():
            if mf.name == "__init__":
                continue
            for attr, site in mf.attr_writes:
                is_locked = site.lock is not None or mf.name in locked_ctx
                sites_by_attr.setdefault(attr, []).append(
                    (mf.name, site, is_locked))
        for attr, sites in sorted(sites_by_attr.items()):
            if attr in locks:
                continue
            has_locked = any(locked for _, _, locked in sites)
            unlocked = [(m, s) for m, s, locked in sites if not locked]
            if has_locked and unlocked:
                for method, site in unlocked:
                    diags.append(Diagnostic(
                        "FL-LOCK003", module.rel, site.line,
                        f"self.{attr} is written under a lock elsewhere "
                        f"in {cls.name} but not in {method}()"))
    return diags


def _reachable(facts: dict[str, _MethodFacts], start: str) -> set[str]:
    seen = {start}
    frontier = [start]
    while frontier:
        name = frontier.pop()
        for callee, _ in facts[name].self_calls:
            if callee in facts and callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return seen
