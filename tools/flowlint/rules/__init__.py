"""Rule registry: five families, one ``check(project)`` each."""

from __future__ import annotations

from . import api, determinism, lifecycle, locks, wire

_FAMILIES = (determinism, lifecycle, wire, locks, api)

#: Every rule family's entry point, in reporting order.
ALL_RULES = tuple(family.check for family in _FAMILIES)

#: rule id -> one-line description (CLI --list-rules, README table).
RULE_DOCS: dict[str, str] = {}
for _family in _FAMILIES:
    RULE_DOCS.update(_family.RULES)

__all__ = ["ALL_RULES", "RULE_DOCS"]
