"""FL-DET — determinism of the kernel hot path.

The bitwise-equality contract (numpy == threads == compiled, any
thread count, any machine) rests on the canonical chunked reduction in
``repro/core/kernels/_base.py``: accumulation order must depend only
on ``n`` and ``BLOCK_ROWS``.  These rules flag the constructs that
silently break that:

FL-DET001
    ``np.add.reduceat`` / ``ufunc.at`` reductions — their accumulation
    order is an implementation detail of numpy, not of the chunk grid.
FL-DET002
    Float accumulation driven by *set* iteration — set order varies
    with hash seeding and insertion history, so ``sum`` over a set of
    floats is run-to-run unstable.
FL-DET003
    ``np.bincount`` scatters outside ``repro/core/kernels/`` — every
    hot-path scatter must go through the tier dispatcher so all tiers
    replay the same canonical chunk fold.
"""

from __future__ import annotations

import ast

from ..engine import Diagnostic, Module, Project
from ._util import call_name

RULES = {
    "FL-DET001": "order-unstable ufunc reduction (reduceat / ufunc.at)",
    "FL-DET002": "set iteration feeding float accumulation",
    "FL-DET003": "bincount scatter bypassing the kernel tier dispatcher",
}

_SCOPE = ("repro/core",)
_KERNEL_PKG = "repro/core/kernels"


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


def _accumulates_float(body: list[ast.stmt]) -> ast.stmt | None:
    """First statement in ``body`` that looks like accumulation."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and \
                    isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
                return stmt
    return None


def check(project: Project) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for module in project.modules:
        if not module.in_pkg(*_SCOPE):
            continue
        diags.extend(_check_module(module))
    return diags


def _check_module(module: Module) -> list[Diagnostic]:
    diags = []
    in_kernels = module.in_pkg(_KERNEL_PKG)
    for node in ast.walk(module.tree):
        # FL-DET001 — reduceat / ufunc.at anywhere under core.
        if isinstance(node, ast.Attribute) and node.attr == "reduceat":
            diags.append(Diagnostic(
                "FL-DET001", module.rel, node.lineno,
                "reduceat accumulation order is not the canonical chunk "
                "fold; use the tier dispatcher's scatter kernels"))
        if isinstance(node, ast.Call):
            name = call_name(node) or ""
            if name.endswith("add.at") or name.endswith("subtract.at"):
                diags.append(Diagnostic(
                    "FL-DET001", module.rel, node.lineno,
                    f"in-place ufunc scatter `{name}` has unspecified "
                    "accumulation order; use the tier dispatcher"))
            # FL-DET003 — bincount outside the kernels package.
            if not in_kernels and (name == "bincount"
                                   or name.endswith(".bincount")):
                diags.append(Diagnostic(
                    "FL-DET003", module.rel, node.lineno,
                    "bincount scatter outside repro/core/kernels/ "
                    "bypasses the tier dispatcher (bitwise contract)"))
            # FL-DET002 (sum form) — sum() over a set expression.
            if name == "sum" and node.args and _is_set_expr(node.args[0]):
                diags.append(Diagnostic(
                    "FL-DET002", module.rel, node.lineno,
                    "sum() over a set: iteration order is hash-dependent, "
                    "so float accumulation is run-to-run unstable"))
        # FL-DET002 (loop form) — `for x in {...}` + `+=` in the body.
        if isinstance(node, (ast.For, ast.AsyncFor)) and \
                _is_set_expr(node.iter):
            hit = _accumulates_float(node.body)
            if hit is not None:
                diags.append(Diagnostic(
                    "FL-DET002", module.rel, node.lineno,
                    "accumulation inside set iteration: set order is "
                    "hash-dependent, the fold order is not canonical"))
    # Generator-expression sum over set comprehension target, e.g.
    # sum(f(x) for x in some_set_literal) — catch the common literal case.
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and call_name(node) == "sum" \
                and node.args and isinstance(node.args[0], ast.GeneratorExp):
            for gen in node.args[0].generators:
                if _is_set_expr(gen.iter):
                    diags.append(Diagnostic(
                        "FL-DET002", module.rel, node.lineno,
                        "sum() over a set-driven generator: fold order "
                        "is hash-dependent"))
    return diags
