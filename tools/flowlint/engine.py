"""The flowlint rule engine: modules, diagnostics, pragmas, baseline.

Pure stdlib (``ast`` + ``json``): the analyzer must run in the lint CI
lane before any third-party install and inside the tier-1 test suite.

A :class:`Project` is the unit of analysis — rules see every module at
once, because the contracts they check are cross-module (a format
string packed in ``server.py`` is decoded in ``wire.py``; the facade's
``__all__`` names live in submodules).  Scope predicates work on *path
suffixes* (:meth:`Module.in_pkg`), so test fixtures can mirror the
repo layout under a temp directory without replicating ``src/``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Baseline", "Diagnostic", "Module", "Project",
    "load_project", "run_rules",
]

_PRAGMA = re.compile(r"#\s*flowlint:\s*disable=([A-Za-z0-9_\-*,\s]+)")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule id anchored to a file and line."""

    rule: str
    path: str       # posix path relative to the project root
    line: int
    message: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity.  Line numbers are deliberately excluded
        so unrelated edits above a finding do not invalidate its
        baseline entry."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class Module:
    """One parsed source file plus its pragma map."""

    path: Path
    rel: str                      # posix, relative to project root
    source: str
    tree: ast.Module
    disabled: dict[int, set[str]] = field(default_factory=dict)

    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(self.rel.split("/"))

    def in_pkg(self, *suffixes: str) -> bool:
        """True when any ``suffix`` ("repro/core/kernels") appears as a
        contiguous run of this module's path parts."""
        parts = self.parts
        for suffix in suffixes:
            want = tuple(suffix.split("/"))
            n = len(want)
            for i in range(len(parts) - n + 1):
                if parts[i:i + n] == want:
                    return True
        return False

    def name_is(self, *names: str) -> bool:
        return self.parts[-1] in names

    def is_suppressed(self, diag: Diagnostic) -> bool:
        tokens = self.disabled.get(diag.line)
        if not tokens:
            return False
        return any(t in ("all", "*") or diag.rule == t
                   or diag.rule.startswith(t) for t in tokens)


@dataclass
class Project:
    root: Path
    modules: list[Module]

    def get(self, rel: str) -> Module | None:
        for module in self.modules:
            if module.rel == rel or module.rel.endswith("/" + rel):
                return module
        return None


def _parse_pragmas(source: str) -> dict[int, set[str]]:
    disabled: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match:
            # `disable=FL-X001 -- reason` keeps only the rule tokens:
            # everything from the first whitespace inside a token on is
            # the human explanation the CLI asks for.
            tokens = {t.strip().split()[0] for t in match.group(1).split(",")
                      if t.strip()}
            disabled[lineno] = {t for t in tokens if t}
    return disabled


def load_project(root: Path | str, paths: list[Path | str] | None = None,
                 ) -> Project:
    """Parse every ``*.py`` under ``paths`` (default: ``root``).

    Files that fail to parse are skipped with a synthetic FL-INT001
    diagnostic attached later by :func:`run_rules` — a syntax error is
    the interpreter's job to report, not the linter's to crash on.
    """
    root = Path(root).resolve()
    if paths is None:
        paths = [root]
    seen: set[Path] = set()
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if not entry.is_absolute():
            entry = root / entry
        candidates = ([entry] if entry.is_file()
                      else sorted(entry.rglob("*.py")))
        for file in candidates:
            file = file.resolve()
            if file in seen or "__pycache__" in file.parts:
                continue
            seen.add(file)
            files.append(file)
    modules = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError:
            continue
        try:
            rel = file.relative_to(root).as_posix()
        except ValueError:
            rel = file.as_posix()
        modules.append(Module(path=file, rel=rel, source=source, tree=tree,
                              disabled=_parse_pragmas(source)))
    return Project(root=root, modules=modules)


def run_rules(project: Project, rules=None) -> list[Diagnostic]:
    """Run every rule family; return pragma-filtered, sorted findings."""
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    by_rel = {m.rel: m for m in project.modules}
    diags: list[Diagnostic] = []
    for check in rules:
        for diag in check(project):
            module = by_rel.get(diag.path)
            if module is not None and module.is_suppressed(diag):
                continue
            diags.append(diag)
    return sorted(diags, key=lambda d: (d.path, d.line, d.rule))


class Baseline:
    """Committed suppression file: pre-existing findings ratchet down.

    Entries match on ``(rule, path, message)`` — never on line — and
    every entry must carry a human ``justification``.  Applying the
    baseline partitions findings into *new* (fail the build), and
    reports entries no longer matched as *stale* (so the file only
    ever shrinks; ``--update-baseline`` rewrites it).
    """

    def __init__(self, entries: list[dict] | None = None):
        self.entries = list(entries or [])

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(data.get("entries", []))

    def save(self, path: Path | str) -> None:
        data = {"version": 1, "entries": self.entries}
        Path(path).write_text(json.dumps(data, indent=2, sort_keys=True)
                              + "\n", encoding="utf-8")

    @staticmethod
    def _key(entry: dict) -> tuple[str, str, str]:
        return (entry.get("rule", ""), entry.get("path", ""),
                entry.get("message", ""))

    def apply(self, diags: list[Diagnostic],
              ) -> tuple[list[Diagnostic], list[Diagnostic], list[dict]]:
        """Partition into ``(new, suppressed, stale_entries)``."""
        keys = {self._key(e) for e in self.entries}
        new = [d for d in diags if d.fingerprint not in keys]
        suppressed = [d for d in diags if d.fingerprint in keys]
        live = {d.fingerprint for d in suppressed}
        stale = [e for e in self.entries if self._key(e) not in live]
        return new, suppressed, stale

    @classmethod
    def from_diagnostics(cls, diags: list[Diagnostic],
                         justification: str = "TODO: justify or fix",
                         ) -> "Baseline":
        entries = [{"rule": d.rule, "path": d.path, "message": d.message,
                    "justification": justification} for d in diags]
        return cls(entries)
