"""CLI entry for a standalone allocator service process.

Run on any machine the clients can reach::

    REPRO_SERVICE_TOKEN=<32 hex chars> \\
        python -m repro.service --host 0.0.0.0 --port 9930

Like the socket-fabric worker, the process carries no pre-shared
state beyond the token (never passed on the command line, where it
would leak via ``ps``).  Once listening it prints one line —
``SERVICE-READY <host> <port>`` — so spawners can scrape the bound
ephemeral port, then serves until killed or sent a SHUTDOWN frame.
"""

from __future__ import annotations

import argparse
import os

from ..parallel.socket_worker import parse_token
from ..topology import TwoTierClos
from .server import FlowtuneService

_TOKEN_ENV = "REPRO_SERVICE_TOKEN"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Always-on Flowtune allocator service")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks an ephemeral port (printed on the "
                             "SERVICE-READY line)")
    parser.add_argument("--racks", type=int, default=3)
    parser.add_argument("--hosts-per-rack", type=int, default=8)
    parser.add_argument("--spines", type=int, default=2)
    parser.add_argument("--mode", choices=("auto", "manual"),
                        default="auto")
    parser.add_argument("--scheduler-mode",
                        choices=("flowtune", "sampled", "ecmp"),
                        default="flowtune",
                        help="rate-assignment scheme: full Flowtune, "
                             "sieve-sampled Flowtune (elephants priced, "
                             "mice on ECMP) or pure ECMP fair share")
    parser.add_argument("--promote-bytes", type=float, default=float(1 << 20),
                        help="sampled mode: new-byte accumulation at "
                             "which a flow is promoted to elephant")
    parser.add_argument("--idle-epochs", type=int, default=100,
                        help="sampled mode: allocation epochs without "
                             "byte growth before an elephant is demoted")
    parser.add_argument("--gamma", type=float, default=1.0)
    parser.add_argument("--threshold", type=float, default=0.01)
    parser.add_argument("--iters-per-cycle", type=int, default=1)
    parser.add_argument("--min-cycle", type=float, default=0.0005)
    parser.add_argument("--resume-grace", type=float, default=2.0,
                        help="seconds a dropped client's flows stay "
                             "alive awaiting a RESUME (0 disables "
                             "resumption)")
    parser.add_argument("--churn-rate", type=float, default=None,
                        help="per-client churn-event budget, events/sec "
                             "(default: unlimited)")
    parser.add_argument("--churn-burst", type=float, default=None,
                        help="token-bucket depth for --churn-rate "
                             "(default: one second's worth)")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="per-client bound on queued-but-unapplied "
                             "churn events (auto mode only)")
    parser.add_argument("--max-outbox", type=int, default=1 << 23,
                        help="slow-reader bound: unsent push bytes "
                             "before a client is dropped")
    args = parser.parse_args(argv)

    token = parse_token(os.environ.get(_TOKEN_ENV), env_var=_TOKEN_ENV)
    topology = TwoTierClos(n_racks=args.racks,
                           hosts_per_rack=args.hosts_per_rack,
                           n_spines=args.spines)
    service = FlowtuneService(
        topology, host=args.host, port=args.port, token=token,
        mode=args.mode, gamma=args.gamma,
        scheduler_mode=args.scheduler_mode,
        promote_bytes=args.promote_bytes, idle_epochs=args.idle_epochs,
        update_threshold=args.threshold,
        iters_per_cycle=args.iters_per_cycle, min_cycle=args.min_cycle,
        resume_grace=args.resume_grace, churn_rate=args.churn_rate,
        churn_burst=args.churn_burst, max_pending=args.max_pending,
        max_outbox=args.max_outbox)
    print(f"SERVICE-READY {service.address[0]} {service.address[1]}",
          flush=True)
    try:
        service.run()
    finally:
        service.close()


if __name__ == "__main__":
    main()
