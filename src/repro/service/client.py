"""Client for the always-on allocator service.

Connects with the fabric's retrying connector, presents the raw token,
performs the HELLO/WELCOME version handshake, then speaks
:mod:`repro.service.wire` frames.  Receives are pumped through a
:class:`~repro.service.wire.FrameBuffer` so a timeout mid-frame never
desynchronizes the stream; sends are serialized by a lock so one
client object can be shared between a load-generating thread and a
rate-polling thread (the fan-out benchmarks do exactly that).

Rate state mirrors the server's delta chain: RATES frames apply only
when their ``base_seq`` matches the last applied sequence (skew
raises :class:`~repro.service.wire.WireError` — the stream missed a
frame and every later delta would silently compound the error) and
SNAPSHOT frames replace the state wholesale.

Surviving the unreliable network (the PR 7 hardening):

* The client journals churn it cannot yet prove the server applied:
  live flows that have never appeared in a rate frame, and ends whose
  application is unconfirmed.  :meth:`reconnect` dials a fresh
  socket, presents the token, sends RESUME ``(client_id,
  resume_nonce, last_applied_seq)`` and the journal replay in one
  burst closed by REPLAY_DONE, and waits for the WELCOME re-adoption.
  The server treats churn before the REPLAY_DONE idempotently, so
  replaying something it already applied is reconciled, not fatal —
  and after it duplicates are protocol violations again, so the
  replay window cannot mask real bugs.  The delta chain is void
  after a reconnect (``_last_seq`` is ``None``) until a fresh
  SNAPSHOT re-bases it; stray deltas in between are dropped.

* With ``auto_reconnect=True``, a send failure, a lost connection on
  the receive path, or rate-chain sequence skew triggers
  :meth:`reconnect` internally instead of raising.

* BUSY frames from the server's ingest rate limiter set a pacing
  deadline; subsequent sends sleep it off (``_pace``) instead of
  hammering a paused socket.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from typing import Any

import numpy.typing as npt

from ..parallel.fabric import FabricError, connect_retry, send_frame
from . import wire
from .wire import TAG_SERVICE, FrameBuffer, ServiceError, WireError

__all__ = ["FlowtuneClient"]

_RECV_CHUNK = 1 << 16
_PENDING_ENDS_CAP = 1 << 16


class FlowtuneClient:
    """Endpoint-side handle on a :class:`FlowtuneService`.

    Parameters
    ----------
    address:
        ``(host, port)`` of the service listener.
    token:
        The service's 16-byte token (raw bytes or hex string).
    timeout:
        Handshake and default blocking-receive timeout, seconds.
    auto_reconnect:
        When True, a dead connection (send failure, EOF, receive
        error) or rate-chain skew triggers :meth:`reconnect`
        transparently.  Default False: failures raise, and the caller
        decides (deterministic tests want the exception).
    sockbuf:
        Optional SO_SNDBUF/SO_RCVBUF clamp, applied before connect.

    Flow ids are client-local integers (the service namespaces them
    per session), so two clients can both use flow id 0.
    """

    def __init__(self, address: tuple[str, int], token: bytes | str, *,
                 timeout: float = 30.0, auto_reconnect: bool = False,
                 sockbuf: int | None = None) -> None:
        if isinstance(token, str):
            token = bytes.fromhex(token)
        self._token = bytes(token)
        self._address = tuple(address)
        self.timeout = float(timeout)
        self.auto_reconnect = bool(auto_reconnect)
        self.sockbuf = sockbuf
        self._rates = {}          # fid -> latest rate (Gbit/s)
        self._last_seq = 0        # None = chain void, awaiting SNAPSHOT
        self._applied_seq = 0     # last applied seq (survives the void)
        self._last_snapshot = None
        self._buf = FrameBuffer()
        # RLock: reconnect() must be callable from inside _send's
        # failure path without deadlocking.
        self._send_lock = threading.RLock()
        self._conn_gen = 0        # bumped per (re)connection
        self._closed = False
        self._welcomed = False
        self.client_id = None
        self.n_links = None
        self.resume_nonce = None
        self.reconnects = 0
        self.busy_count = 0
        self.last_busy = None     # (retry_after, credit) of latest BUSY
        self._busy_until = 0.0
        # --- the un-acked churn journal ---------------------------------
        # _journal_live: every flow the client believes is live, with
        # its route/weight — the replay source of truth.
        # _acked: live fids that have appeared in a rate frame since
        # their latest start, i.e. provably applied server-side (and
        # kept alive by the session across a drop), so replay skips
        # them.
        # _pending_ends: ends whose application is unconfirmed
        # (ordered dict-as-set, FIFO-capped); replayed first, in
        # order, like apply_churn applies ends before starts.
        self._journal_live = {}
        self._acked = set()
        self._pending_ends = {}
        self._sock = connect_retry(self._address, sockbuf=sockbuf)
        self._sock.settimeout(self.timeout)
        try:
            self._sock.sendall(self._token)
            self._send(wire.encode_hello())
            self._pump_until(lambda: self.client_id is not None,
                             self.timeout,
                             "no WELCOME from service (bad token?)")
        except BaseException:
            self._sock.close()
            self._closed = True
            raise

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _pace(self):
        """Honor the latest BUSY credit: sleep out the pause the
        server imposed rather than writing into a socket it has
        stopped reading."""
        wait = self._busy_until - time.monotonic()
        if wait > 0:
            time.sleep(wait)

    def _send(self, *payloads):
        if self._closed:
            raise FabricError("client is closed")
        self._pace()
        with self._send_lock:
            try:
                for payload in payloads:
                    send_frame(self._sock, TAG_SERVICE, payload)
            except FabricError:
                if not self.auto_reconnect or self.client_id is None:
                    raise
                # The journal replay covers journaled churn; the
                # originals ride inside the replay burst anyway —
                # before REPLAY_DONE, where duplicates are reconciled
                # — so un-journaled kinds like STEP and USAGE aren't
                # lost.
                self.reconnect(replay_extra=payloads)

    def flowlet_start(self, flow_id: int, route: npt.ArrayLike,
                      weight: float = 1.0) -> None:
        """Report one new backlogged flowlet on ``route``."""
        self._journal_start(flow_id, route, weight)
        self._send(wire.encode_start([(flow_id, route, weight)]))

    def flowlet_end(self, flow_id: int) -> None:
        """Report one flowlet's queue drained.

        Idempotent while the end is unconfirmed: re-ending a flow
        whose end is still journaled (e.g. retrying after a send
        failure — the journal replay already delivered it on
        reconnect) is a no-op, not a wire duplicate the server would
        reject once the replay window has closed."""
        if self._end_journaled(flow_id):
            return
        self._journal_end(flow_id)
        self._send(wire.encode_end([flow_id]))

    def apply_churn(self, starts: Iterable[tuple[Any, ...]] = (),
                    ends: Iterable[int] = ()) -> None:
        """Batch churn in one wire exchange: ends frame, then starts
        (matching :meth:`FlowtuneAllocator.apply_churn` order, so an
        id in both is a restart)."""
        starts = [s if len(s) == 3 else (s[0], s[1], 1.0) for s in starts]
        payloads = []
        if ends:
            fresh = [fid for fid in ends if not self._end_journaled(fid)]
            for fid in fresh:
                self._journal_end(fid)
            if fresh:
                payloads.append(wire.encode_end(fresh))
        if starts:
            for fid, route, weight in starts:
                self._journal_start(fid, route, weight)
            payloads.append(wire.encode_start(starts))
        if payloads:
            self._send(*payloads)

    def report_usage(self, reports: Iterable[tuple[int, int]]) -> None:
        """Send cumulative ``(flow_id, bytes)`` usage reports."""
        self._send(wire.encode_usage(reports))

    def shutdown_service(self) -> None:
        """Ask the service process to stop serving entirely."""
        self._send(wire.encode_shutdown())

    # ------------------------------------------------------------------
    # the un-acked churn journal
    # ------------------------------------------------------------------
    def _journal_start(self, fid, route, weight):
        # A start for a pending-end fid is a restart.  The fid stays
        # in _pending_ends on purpose: replaying the start alone could
        # leave the *old* incarnation's route live if the end never
        # landed, so unconfirmed restarts replay as end+start — that
        # lands the new route whichever prefix the server applied.
        self._acked.discard(fid)
        self._journal_live[fid] = (tuple(route), float(weight))

    def _end_journaled(self, fid):
        """True when ``fid``'s end is already journaled and the flow
        was not restarted since — the end is delivered or will be by
        the next replay, so re-sending it would only manufacture a
        duplicate."""
        return fid in self._pending_ends and fid not in self._journal_live

    def _journal_end(self, fid):
        self._journal_live.pop(fid, None)
        self._acked.discard(fid)
        self._pending_ends.pop(fid, None)
        self._pending_ends[fid] = None
        while len(self._pending_ends) > _PENDING_ENDS_CAP:
            self._pending_ends.pop(next(iter(self._pending_ends)))

    def _replay_payloads(self):
        """Wire frames that re-assert the journal on a fresh
        connection: unconfirmed ends first, then every live flow the
        server has not provably applied — the order
        ``apply_churn`` consumes."""
        payloads = []
        ends = [fid for fid in self._pending_ends
                if fid not in self._journal_live]
        restarts = [fid for fid in self._pending_ends
                    if fid in self._journal_live]
        if ends or restarts:
            payloads.append(wire.encode_end(ends + restarts))
        starts = [(fid, route, weight)
                  for fid, (route, weight) in self._journal_live.items()
                  if fid not in self._acked or fid in self._pending_ends]
        if starts:
            payloads.append(wire.encode_start(starts))
        return payloads

    @property
    def journal_depth(self) -> tuple[int, int]:
        """(live-unacked, pending-end) journal sizes, for tests."""
        unacked = sum(1 for fid in self._journal_live
                      if fid not in self._acked)
        return unacked, len(self._pending_ends)

    # ------------------------------------------------------------------
    # reconnect / resume
    # ------------------------------------------------------------------
    def reconnect(self, replay_extra: Sequence[bytes] = ()) -> None:
        """Dial a fresh connection and RESUME the existing session.

        Presents the token, then sends RESUME ``(client_id,
        resume_nonce, last_applied_seq)`` followed by the journal
        replay — plus any ``replay_extra`` payloads a failed send is
        retrying — in one burst closed by REPLAY_DONE (everything
        before it is reconciled idempotently server-side; everything
        after is live traffic again), and waits for the server's
        WELCOME re-adoption.  A stale nonce (the grace window expired,
        or the service restarted) surfaces as :class:`ServiceError`
        from the server's rejection.  After return the rate chain is
        void until the next SNAPSHOT (``poll`` drops stray deltas; in
        manual mode the next :meth:`step` re-bases it).
        """
        if self._closed:
            raise FabricError("client is closed")
        if self.client_id is None or self.resume_nonce is None:
            raise FabricError("cannot resume: never completed a HELLO")
        with self._send_lock:
            self._conn_gen += 1
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._buf = FrameBuffer()
            self._last_seq = None      # chain void until SNAPSHOT
            self._welcomed = False
            sock = connect_retry(self._address, sockbuf=self.sockbuf)
            sock.settimeout(self.timeout)
            self._sock = sock
            try:
                sock.sendall(self._token)
                payloads = [wire.encode_resume(self.client_id,
                                               self.resume_nonce,
                                               self._applied_seq)]
                payloads += self._replay_payloads()
                payloads += list(replay_extra)
                payloads.append(wire.encode_replay_done())
                for payload in payloads:
                    send_frame(sock, TAG_SERVICE, payload)
                self._pump_until(lambda: self._welcomed, self.timeout,
                                 "no WELCOME re-adoption after RESUME")
            except BaseException:
                sock.close()
                raise
            self.reconnects += 1
        return self

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def poll(self, timeout: float = 0.0) -> list[tuple[int, float]]:
        """Pump pending frames; return rate updates as ``[(fid, rate)]``.

        Blocks up to ``timeout`` seconds for the *first* data, then
        drains whatever else is already queued without blocking.
        Raises :class:`ServiceError` if the service reported an error,
        :class:`WireError` on version or sequence skew.
        """
        updates = []
        deadline = time.monotonic() + timeout
        first = True
        while True:
            remaining = deadline - time.monotonic() if first else 0.0
            if not self._recv_once(max(0.0, remaining), updates):
                if not first or remaining <= 0:
                    break
            first = False
        return updates

    def _recv_once(self, timeout, updates):
        """One recv; feeds the buffer, handles frames.  Returns False
        when no data was available within ``timeout``.

        The blocking recv happens *outside* ``_send_lock`` (a stalled
        server must not freeze senders), but the dispatch into the
        frame buffer and rate-chain state happens under it: with
        ``auto_reconnect`` a sender thread's failed send can swap the
        socket, buffer, and delta chain mid-call, and unlocked
        dispatch would feed the dead connection's bytes into the new
        chain."""
        with self._send_lock:
            gen = self._conn_gen
            sock = self._sock
        sock.settimeout(timeout if timeout > 0 else 0.0)
        try:
            data = sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError, TimeoutError):
            return False
        except OSError as exc:
            if self.auto_reconnect and not self._closed:
                self.reconnect()
                return False
            raise FabricError(f"connection lost: {exc}") from exc
        finally:
            try:
                sock.settimeout(self.timeout)
            except OSError:  # pragma: no cover - racing reconnect
                pass
        if not data:
            if self.auto_reconnect and not self._closed:
                self.reconnect()
                return False
            raise FabricError("service closed the connection")
        with self._send_lock:
            if self._conn_gen != gen:
                # A sender thread reconnected while we were blocked in
                # recv: these bytes belong to the dead connection.
                return False
            for tag, payload in self._buf.feed(data):
                if tag != TAG_SERVICE:
                    raise WireError(f"unexpected frame tag {tag}")
                self._handle(payload, updates)
                if self._conn_gen != gen:
                    # _handle reconnected mid-iteration: the remaining
                    # frames belong to the dead connection.
                    break
        return True

    def _handle(self, payload, updates):
        kind, body = wire.decode_message(payload)
        if kind == wire.WELCOME:
            self.client_id, self.n_links, self.resume_nonce = body
            self._welcomed = True
        elif kind == wire.RATES:
            base_seq, seq, fids, rates = body
            if self._last_seq is None:
                # Chain void after a reconnect: deltas that raced the
                # re-based SNAPSHOT are stale, drop them.
                return
            if base_seq != self._last_seq:
                if self.auto_reconnect:
                    self.reconnect()
                    return
                raise WireError(
                    f"rate-update sequence skew: frame chains on "
                    f"{base_seq}, last applied is {self._last_seq}")
            self._last_seq = self._applied_seq = seq
            for fid, rate in zip(fids.tolist(), rates.tolist()):
                self._rates[fid] = rate
                if fid in self._journal_live:
                    self._acked.add(fid)
                updates.append((fid, rate))
        elif kind == wire.SNAPSHOT:
            seq, fids, rates = body
            self._last_seq = self._applied_seq = seq
            snapshot = dict(zip(fids.tolist(), rates.tolist()))
            self._rates = snapshot
            self._last_snapshot = snapshot
            for fid in snapshot:
                if fid in self._journal_live:
                    self._acked.add(fid)
            updates.extend(snapshot.items())
        elif kind == wire.BUSY:
            retry_after, credit = body
            self.busy_count += 1
            self.last_busy = (retry_after, credit)
            self._busy_until = time.monotonic() + retry_after
        elif kind == wire.ERROR:
            raise ServiceError(body)
        else:
            raise WireError(f"kind {kind} is not valid server->client")

    def _pump_until(self, done, timeout, what):
        deadline = time.monotonic() + timeout
        scratch = []
        while not done():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(what)
            self._recv_once(remaining, scratch)
        return scratch

    def wait_for_rates(self, flow_ids: Iterable[int],
                       timeout: float = 30.0) -> dict[int, float]:
        """Block until every id in ``flow_ids`` has a rate; return a
        ``{fid: rate}`` dict for exactly those ids."""
        pending = set(flow_ids)
        self._pump_until(lambda: pending <= self._rates.keys(), timeout,
                         f"no rate for {len(pending - self._rates.keys())} "
                         "flows within timeout")
        return {fid: self._rates[fid] for fid in flow_ids}

    def step(self, n_iters: int = 1,
             timeout: float | None = None) -> dict[int, float]:
        """Run exactly ``n_iters`` allocator iterations remotely and
        return this client's full rate snapshot (``{fid: rate}``).

        The deterministic RPC behind the manual-mode service: churn
        sent so far is drained, applied, iterated ``n_iters`` times —
        the same calls an in-process allocator would make, so results
        agree bitwise."""
        # Written under the same lock as _handle's SNAPSHOT path so
        # the arm/receive pair cannot interleave with a reconnect.
        with self._send_lock:
            self._last_snapshot = None
        ends_before = list(self._pending_ends)
        self._send(wire.encode_step(max(1, int(n_iters))))
        self._pump_until(lambda: self._last_snapshot is not None,
                         self.timeout if timeout is None else timeout,
                         "no SNAPSHOT reply to STEP")
        # The snapshot proves the server drained everything sent
        # before the STEP (TCP ordering): those ends are confirmed.
        for fid in ends_before:
            self._pending_ends.pop(fid, None)
        return dict(self._last_snapshot)

    @property
    def rates(self) -> dict[int, float]:
        """Latest known rate per flow (a copy; updated by polling)."""
        return dict(self._rates)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say BYE (best-effort) and close the socket.  Idempotent.

        BYE ends the session server-side immediately — flows end now,
        no grace window, no resumption."""
        if self._closed:
            return
        self._closed = True
        try:
            with self._send_lock:
                self._sock.settimeout(1.0)
                send_frame(self._sock, TAG_SERVICE, wire.encode_bye())
        except (FabricError, OSError):
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def kill(self) -> None:
        """Hard-close the socket without BYE — the unreliable-client
        simulator.  The session survives server-side for the grace
        window; :meth:`reconnect` (on this same object) resumes it."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"FlowtuneClient(client_id={self.client_id}, "
                f"n_flows_known={len(self._rates)})")
