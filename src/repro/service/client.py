"""Client for the always-on allocator service.

Connects with the fabric's retrying connector, presents the raw token,
performs the HELLO/WELCOME version handshake, then speaks
:mod:`repro.service.wire` frames.  Receives are pumped through a
:class:`~repro.service.wire.FrameBuffer` so a timeout mid-frame never
desynchronizes the stream; sends are serialized by a lock so one
client object can be shared between a load-generating thread and a
rate-polling thread (the ``service_latency`` benchmark does exactly
that).

Rate state mirrors the server's delta chain: RATES frames apply only
when their ``base_seq`` matches the last applied sequence (skew
raises :class:`~repro.service.wire.WireError` — the stream missed a
frame and every later delta would silently compound the error) and
SNAPSHOT frames replace the state wholesale.
"""

from __future__ import annotations

import socket as socketlib
import threading
import time

from ..parallel.fabric import FabricError, _connect_retry, send_frame
from . import wire
from .wire import TAG_SERVICE, FrameBuffer, ServiceError, WireError

__all__ = ["FlowtuneClient"]

_RECV_CHUNK = 1 << 16


class FlowtuneClient:
    """Endpoint-side handle on a :class:`FlowtuneService`.

    Parameters
    ----------
    address:
        ``(host, port)`` of the service listener.
    token:
        The service's 16-byte token (raw bytes or hex string).
    timeout:
        Handshake and default blocking-receive timeout, seconds.

    Flow ids are client-local integers (the service namespaces them
    per connection), so two clients can both use flow id 0.
    """

    def __init__(self, address, token, *, timeout=30.0):
        if isinstance(token, str):
            token = bytes.fromhex(token)
        self.timeout = float(timeout)
        self._rates = {}          # fid -> latest rate (Gbit/s)
        self._last_seq = 0
        self._last_snapshot = None
        self._buf = FrameBuffer()
        self._send_lock = threading.Lock()
        self._closed = False
        self.client_id = None
        self.n_links = None
        self._sock = _connect_retry(tuple(address))
        self._sock.settimeout(self.timeout)
        try:
            self._sock.sendall(bytes(token))
            self._send(wire.encode_hello())
            self._pump_until(lambda: self.client_id is not None,
                             self.timeout,
                             "no WELCOME from service (bad token?)")
        except BaseException:
            self._sock.close()
            self._closed = True
            raise

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _send(self, *payloads):
        if self._closed:
            raise FabricError("client is closed")
        with self._send_lock:
            for payload in payloads:
                send_frame(self._sock, TAG_SERVICE, payload)

    def flowlet_start(self, flow_id, route, weight=1.0):
        """Report one new backlogged flowlet on ``route``."""
        self._send(wire.encode_start([(flow_id, route, weight)]))

    def flowlet_end(self, flow_id):
        """Report one flowlet's queue drained."""
        self._send(wire.encode_end([flow_id]))

    def apply_churn(self, starts=(), ends=()):
        """Batch churn in one wire exchange: ends frame, then starts
        (matching :meth:`FlowtuneAllocator.apply_churn` order, so an
        id in both is a restart)."""
        starts = [s if len(s) == 3 else (s[0], s[1], 1.0) for s in starts]
        payloads = []
        if ends:
            payloads.append(wire.encode_end(list(ends)))
        if starts:
            payloads.append(wire.encode_start(starts))
        if payloads:
            self._send(*payloads)

    def report_usage(self, reports):
        """Send cumulative ``(flow_id, bytes)`` usage reports."""
        self._send(wire.encode_usage(reports))

    def shutdown_service(self):
        """Ask the service process to stop serving entirely."""
        self._send(wire.encode_shutdown())

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def poll(self, timeout=0.0):
        """Pump pending frames; return rate updates as ``[(fid, rate)]``.

        Blocks up to ``timeout`` seconds for the *first* data, then
        drains whatever else is already queued without blocking.
        Raises :class:`ServiceError` if the service reported an error,
        :class:`WireError` on version or sequence skew.
        """
        updates = []
        deadline = time.monotonic() + timeout
        first = True
        while True:
            remaining = deadline - time.monotonic() if first else 0.0
            if not self._recv_once(max(0.0, remaining), updates):
                if not first or remaining <= 0:
                    break
            first = False
        return updates

    def _recv_once(self, timeout, updates):
        """One recv; feeds the buffer, handles frames.  Returns False
        when no data was available within ``timeout``."""
        self._sock.settimeout(timeout if timeout > 0 else 0.0)
        try:
            data = self._sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError, TimeoutError):
            return False
        except OSError as exc:
            raise FabricError(f"connection lost: {exc}") from exc
        finally:
            self._sock.settimeout(self.timeout)
        if not data:
            raise FabricError("service closed the connection")
        for tag, payload in self._buf.feed(data):
            if tag != TAG_SERVICE:
                raise WireError(f"unexpected frame tag {tag}")
            self._handle(payload, updates)
        return True

    def _handle(self, payload, updates):
        kind, body = wire.decode_message(payload)
        if kind == wire.WELCOME:
            self.client_id, self.n_links = body
        elif kind == wire.RATES:
            base_seq, seq, fids, rates = body
            if base_seq != self._last_seq:
                raise WireError(
                    f"rate-update sequence skew: frame chains on "
                    f"{base_seq}, last applied is {self._last_seq}")
            self._last_seq = seq
            for fid, rate in zip(fids.tolist(), rates.tolist()):
                self._rates[fid] = rate
                updates.append((fid, rate))
        elif kind == wire.SNAPSHOT:
            seq, fids, rates = body
            self._last_seq = seq
            snapshot = dict(zip(fids.tolist(), rates.tolist()))
            self._rates = snapshot
            self._last_snapshot = snapshot
            updates.extend(snapshot.items())
        elif kind == wire.ERROR:
            raise ServiceError(body)
        else:
            raise WireError(f"kind {kind} is not valid server->client")

    def _pump_until(self, done, timeout, what):
        deadline = time.monotonic() + timeout
        scratch = []
        while not done():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(what)
            self._recv_once(remaining, scratch)
        return scratch

    def wait_for_rates(self, flow_ids, timeout=30.0):
        """Block until every id in ``flow_ids`` has a rate; return a
        ``{fid: rate}`` dict for exactly those ids."""
        pending = set(flow_ids)
        self._pump_until(lambda: pending <= self._rates.keys(), timeout,
                         f"no rate for {len(pending - self._rates.keys())} "
                         "flows within timeout")
        return {fid: self._rates[fid] for fid in flow_ids}

    def step(self, n_iters=1, timeout=None):
        """Run exactly ``n_iters`` allocator iterations remotely and
        return this client's full rate snapshot (``{fid: rate}``).

        The deterministic RPC behind the manual-mode service: churn
        sent so far is drained, applied, iterated ``n_iters`` times —
        the same calls an in-process allocator would make, so results
        agree bitwise."""
        self._last_snapshot = None
        self._send(wire.encode_step(max(1, int(n_iters))))
        self._pump_until(lambda: self._last_snapshot is not None,
                         self.timeout if timeout is None else timeout,
                         "no SNAPSHOT reply to STEP")
        return dict(self._last_snapshot)

    @property
    def rates(self):
        """Latest known rate per flow (a copy; updated by polling)."""
        return dict(self._rates)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self):
        """Say BYE (best-effort) and close the socket.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            with self._send_lock:
                self._sock.settimeout(1.0)
                send_frame(self._sock, TAG_SERVICE, wire.encode_bye())
        except (FabricError, OSError):
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"FlowtuneClient(client_id={self.client_id}, "
                f"n_flows_known={len(self._rates)})")
