"""Binary wire schema for the always-on allocator service.

One frame = the socket fabric's length-prefixed ``!II`` framing
(:mod:`repro.parallel.fabric`) carrying tag :data:`TAG_SERVICE`, whose
payload is a 2-byte ``(version, kind)`` header followed by a
fixed-layout body.  Nothing here is pickled: every field is a struct
or a big-endian numpy column, so a hostile or version-skewed peer can
at worst produce :class:`WireError`, never code execution.

The message kinds mirror the control-plane schema of
:mod:`repro.control.messages` (flowlet start / end / usage, rate
update); :func:`paper_wire_bytes` maps a batch of them onto the
paper's §6.2 byte accounting so the service's traffic counters stay
comparable with the fluid-overhead experiments.

Rate updates are delta-encoded the way PR 4's dirty-row codec ships
LinkBlock cells: each ``RATES`` frame carries only the flows whose
rate crossed the §6.4 threshold, chained by ``(base_seq, seq)`` —
the receiver rejects a frame whose ``base_seq`` does not match the
last sequence it applied (version-skew rejection), and a ``SNAPSHOT``
frame restarts the chain from scratch.

Reconnection (wire version 2): ``WELCOME`` carries a per-session
``resume_nonce``; a client whose connection died presents ``RESUME
(client_id, resume_nonce, last_applied_seq)`` instead of ``HELLO`` and
the server re-binds the surviving flow namespace (kept alive through a
grace window), replays are reconciled idempotently, and the rate chain
restarts from a fresh ``SNAPSHOT``.  The client ends its replay burst
with ``REPLAY_DONE``, which closes the reconcile window — duplicate
churn after it is a protocol violation again, so a resumed connection
does not mask real client bugs forever.  ``BUSY`` is the ingest
backpressure credit reply: ``(retry_after, credit)`` tells a client
that outran its churn token bucket when tokens will be available
again (the server also stops reading the connection until then, so
even a client that ignores BUSY is throttled by TCP flow control).
"""

from __future__ import annotations

import struct
from collections.abc import Iterable
from typing import Any

import numpy as np
import numpy.typing as npt

from ..control.messages import PAYLOAD_BYTES, MessageType, batched_wire_bytes

__all__ = [
    "WIRE_VERSION", "TAG_SERVICE", "WireError", "ServiceError",
    "HELLO", "WELCOME", "START", "END", "USAGE", "RATES", "STEP",
    "SNAPSHOT", "ERROR", "BYE", "SHUTDOWN", "RESUME", "BUSY",
    "REPLAY_DONE",
    "encode_hello", "encode_welcome", "encode_start", "encode_end",
    "encode_usage", "encode_rates", "encode_step", "encode_snapshot",
    "encode_error", "encode_bye", "encode_shutdown", "encode_resume",
    "encode_busy", "encode_replay_done", "decode_message",
    "FrameBuffer", "paper_wire_bytes",
]

#: Bump on any incompatible layout change; peers reject mismatches.
#: v2: WELCOME grew ``resume_nonce``; RESUME, BUSY and REPLAY_DONE
#: kinds added.
WIRE_VERSION = 2

#: Frame tag for service payloads — distinct from the fabric's
#: TAG_CTRL (pickled) and TAG_DATA (raw float64) so a service frame
#: accidentally routed into a fabric endpoint fails loudly.
TAG_SERVICE = 3

#: Sanity bound on one frame's payload (a 1M-flow START batch is
#: ~46 MB; anything past this is a desynchronized or hostile stream).
MAX_FRAME_BYTES = 1 << 27


class WireError(RuntimeError):
    """Malformed, truncated, or version-skewed service frame."""


class ServiceError(RuntimeError):
    """An error the service reported over the wire (ERROR frame)."""


# message kinds ---------------------------------------------------------
HELLO = 1       # client -> server: version handshake
WELCOME = 2     # server -> client: client_id, n_links
START = 3       # client -> server: flowlet starts (id, weight, route)
END = 4         # client -> server: flowlet ends (ids)
USAGE = 5       # client -> server: cumulative bytes per flow
RATES = 6       # server -> client: delta rate updates (seq-chained)
STEP = 7        # client -> server: run exactly n iterations (manual mode)
SNAPSHOT = 8    # server -> client: full rate state, resets the chain
ERROR = 9       # server -> client: fatal per-connection error (utf-8)
BYE = 10        # client -> server: graceful disconnect
SHUTDOWN = 11   # client -> server: stop the whole service
RESUME = 12     # client -> server: re-bind a session after a drop
BUSY = 13       # server -> client: churn backpressure credit reply
REPLAY_DONE = 14  # client -> server: journal replay burst complete

_KNOWN_KINDS = frozenset((HELLO, WELCOME, START, END, USAGE, RATES, STEP,
                          SNAPSHOT, ERROR, BYE, SHUTDOWN, RESUME, BUSY,
                          REPLAY_DONE))

_HDR = struct.Struct("!BB")           # version, kind
_U32 = struct.Struct("!I")
_U32x2 = struct.Struct("!II")
_U32x3 = struct.Struct("!III")
_FLOW = struct.Struct("!QdH")         # flow_id, weight, route_len
_USAGE_ITEM = struct.Struct("!Qd")    # flow_id, cumulative bytes
_WELCOME = struct.Struct("!IIQ")      # client_id, n_links, resume_nonce
_RESUME = struct.Struct("!IQI")       # client_id, nonce, last_applied_seq
_BUSY = struct.Struct("!dI")          # retry_after seconds, credit

_ID_DTYPE = np.dtype(">u8")
_RATE_DTYPE = np.dtype(">f8")
_ROUTE_DTYPE = np.dtype(">u4")


# encoding --------------------------------------------------------------
def _hdr(kind: int) -> bytes:
    return _HDR.pack(WIRE_VERSION, kind)


def encode_hello() -> bytes:
    return _hdr(HELLO)


def encode_welcome(client_id: int, n_links: int,
                   resume_nonce: int) -> bytes:
    """``resume_nonce`` authenticates later RESUME attempts for this
    session (a random u64; knowing the client_id alone must not let a
    stranger adopt the session's flows)."""
    return _hdr(WELCOME) + _WELCOME.pack(client_id, n_links, resume_nonce)


def encode_resume(client_id: int, resume_nonce: int,
                  last_applied_seq: int) -> bytes:
    """Re-bind ``client_id``'s session after a dropped connection."""
    return _hdr(RESUME) + _RESUME.pack(client_id, resume_nonce,
                                       last_applied_seq)


def encode_busy(retry_after: float, credit: int) -> bytes:
    """Backpressure credit reply: churn tokens available again in
    ``retry_after`` seconds, at which point ``credit`` events fit."""
    return _hdr(BUSY) + _BUSY.pack(float(retry_after), int(credit))


def encode_start(
        flows: Iterable[tuple[int, npt.ArrayLike, float]]) -> bytes:
    """``flows``: iterable of ``(flow_id, route, weight)``."""
    parts = [_hdr(START), b"\0\0\0\0"]
    count = 0
    for flow_id, route, weight in flows:
        route = np.ascontiguousarray(route, dtype=_ROUTE_DTYPE)
        parts.append(_FLOW.pack(flow_id, weight, len(route)))
        parts.append(route.tobytes())
        count += 1
    parts[1] = _U32.pack(count)
    return b"".join(parts)


def encode_end(flow_ids: Iterable[int]) -> bytes:
    ids = np.ascontiguousarray(list(flow_ids), dtype=_ID_DTYPE)
    return _hdr(END) + _U32.pack(len(ids)) + ids.tobytes()


def encode_usage(reports: Iterable[tuple[int, float]]) -> bytes:
    """``reports``: iterable of ``(flow_id, cumulative_bytes)``."""
    items = list(reports)
    parts = [_hdr(USAGE), _U32.pack(len(items))]
    parts += [_USAGE_ITEM.pack(fid, float(n)) for fid, n in items]
    return b"".join(parts)


def _ids_rates(flow_ids: npt.ArrayLike, rates: npt.ArrayLike,
               ) -> tuple[npt.NDArray[Any], npt.NDArray[Any]]:
    ids = np.ascontiguousarray(flow_ids, dtype=_ID_DTYPE)
    vals = np.ascontiguousarray(rates, dtype=_RATE_DTYPE)
    if len(ids) != len(vals):
        raise ValueError("flow_ids and rates lengths differ")
    return ids, vals


def encode_rates(base_seq: int, seq: int, flow_ids: npt.ArrayLike,
                 rates: npt.ArrayLike) -> bytes:
    """Delta rate-update frame: valid only on top of ``base_seq``."""
    ids, vals = _ids_rates(flow_ids, rates)
    return (_hdr(RATES) + _U32x3.pack(base_seq, seq, len(ids))
            + ids.tobytes() + vals.tobytes())


def encode_step(n_iters: int) -> bytes:
    return _hdr(STEP) + _U32.pack(n_iters)


def encode_snapshot(seq: int, flow_ids: npt.ArrayLike,
                    rates: npt.ArrayLike) -> bytes:
    ids, vals = _ids_rates(flow_ids, rates)
    return (_hdr(SNAPSHOT) + _U32x2.pack(seq, len(ids))
            + ids.tobytes() + vals.tobytes())


def encode_error(message: object) -> bytes:
    return _hdr(ERROR) + str(message).encode("utf-8", "replace")


def encode_bye() -> bytes:
    return _hdr(BYE)


def encode_shutdown() -> bytes:
    return _hdr(SHUTDOWN)


def encode_replay_done() -> bytes:
    """Close a resumed connection's reconcile window: everything
    after this frame is live traffic, not journal replay."""
    return _hdr(REPLAY_DONE)


# decoding --------------------------------------------------------------
def _need(payload: bytes, offset: int, n: int, what: str) -> None:
    if len(payload) - offset < n:
        raise WireError(f"truncated {what}: need {n} bytes at offset "
                        f"{offset}, frame has {len(payload)}")


def _exact(payload: bytes, offset: int, what: str) -> None:
    if len(payload) != offset:
        raise WireError(f"{what} frame has {len(payload) - offset} "
                        "trailing bytes")


def _read_array(payload: bytes, offset: int, dtype: np.dtype[Any],
                count: int, what: str) -> tuple[npt.NDArray[Any], int]:
    n = dtype.itemsize * count
    _need(payload, offset, n, what)
    arr = np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
    return arr.astype(dtype.newbyteorder("=")), offset + n


def decode_message(payload: bytes | bytearray | memoryview,
                   ) -> tuple[int, Any]:
    """Parse one TAG_SERVICE payload into ``(kind, body)``.

    Raises :class:`WireError` on version skew, unknown kind, or any
    length inconsistency — the connection should be dropped, since a
    malformed frame means the stream can no longer be trusted.
    """
    payload = bytes(payload)
    _need(payload, 0, _HDR.size, "message header")
    version, kind = _HDR.unpack_from(payload)
    if version != WIRE_VERSION:
        raise WireError(f"wire version skew: peer speaks {version}, "
                        f"this build speaks {WIRE_VERSION}")
    if kind not in _KNOWN_KINDS:
        raise WireError(f"unknown message kind {kind}")
    off = _HDR.size

    if kind in (HELLO, BYE, SHUTDOWN, REPLAY_DONE):
        _exact(payload, off, "empty-body")
        return kind, None

    if kind == WELCOME:
        _need(payload, off, _WELCOME.size, "WELCOME body")
        client_id, n_links, nonce = _WELCOME.unpack_from(payload, off)
        _exact(payload, off + _WELCOME.size, "WELCOME")
        return kind, (client_id, n_links, nonce)

    if kind == RESUME:
        _need(payload, off, _RESUME.size, "RESUME body")
        client_id, nonce, last_seq = _RESUME.unpack_from(payload, off)
        _exact(payload, off + _RESUME.size, "RESUME")
        return kind, (client_id, nonce, last_seq)

    if kind == BUSY:
        _need(payload, off, _BUSY.size, "BUSY body")
        retry_after, credit = _BUSY.unpack_from(payload, off)
        _exact(payload, off + _BUSY.size, "BUSY")
        return kind, (retry_after, credit)

    if kind == START:
        _need(payload, off, _U32.size, "START count")
        (count,) = _U32.unpack_from(payload, off)
        off += _U32.size
        flows = []
        for i in range(count):
            _need(payload, off, _FLOW.size, f"START flow {i}")
            flow_id, weight, route_len = _FLOW.unpack_from(payload, off)
            off += _FLOW.size
            route, off = _read_array(payload, off, _ROUTE_DTYPE,
                                     route_len, f"START route {i}")
            flows.append((flow_id, route, weight))
        _exact(payload, off, "START")
        return kind, flows

    if kind == END:
        _need(payload, off, _U32.size, "END count")
        (count,) = _U32.unpack_from(payload, off)
        ids, off = _read_array(payload, off + _U32.size, _ID_DTYPE,
                               count, "END ids")
        _exact(payload, off, "END")
        return kind, ids.tolist()

    if kind == USAGE:
        _need(payload, off, _U32.size, "USAGE count")
        (count,) = _U32.unpack_from(payload, off)
        off += _U32.size
        reports = []
        for i in range(count):
            _need(payload, off, _USAGE_ITEM.size, f"USAGE item {i}")
            reports.append(_USAGE_ITEM.unpack_from(payload, off))
            off += _USAGE_ITEM.size
        _exact(payload, off, "USAGE")
        return kind, reports

    if kind == RATES:
        _need(payload, off, _U32x3.size, "RATES header")
        base_seq, seq, count = _U32x3.unpack_from(payload, off)
        off += _U32x3.size
        ids, off = _read_array(payload, off, _ID_DTYPE, count, "RATES ids")
        vals, off = _read_array(payload, off, _RATE_DTYPE, count,
                                "RATES rates")
        _exact(payload, off, "RATES")
        return kind, (base_seq, seq, ids, vals)

    if kind == STEP:
        _need(payload, off, _U32.size, "STEP body")
        (n_iters,) = _U32.unpack_from(payload, off)
        _exact(payload, off + _U32.size, "STEP")
        return kind, n_iters

    if kind == SNAPSHOT:
        _need(payload, off, _U32x2.size, "SNAPSHOT header")
        seq, count = _U32x2.unpack_from(payload, off)
        off += _U32x2.size
        ids, off = _read_array(payload, off, _ID_DTYPE, count,
                               "SNAPSHOT ids")
        vals, off = _read_array(payload, off, _RATE_DTYPE, count,
                                "SNAPSHOT rates")
        _exact(payload, off, "SNAPSHOT")
        return kind, (seq, ids, vals)

    # kind == ERROR
    return kind, payload[off:].decode("utf-8", "replace")


# incremental framing ---------------------------------------------------
_FRAME_HEADER = struct.Struct("!II")  # fabric's length + tag


class FrameBuffer:
    """Incremental reassembly of the fabric's ``!II``-framed stream.

    The fabric's blocking :func:`~repro.parallel.fabric.recv_frame`
    would lose partially-read bytes on a timeout, desynchronizing the
    stream; the service's selectors loop instead feeds whatever
    ``recv`` returned into this buffer and only acts on *complete*
    frames, so a slow peer can never corrupt framing.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self._buf = bytearray()
        self._max = max_frame

    def feed(self, data: bytes | bytearray) -> list[tuple[int, bytes]]:
        """Append ``data``; return the list of complete ``(tag,
        payload)`` frames it unlocked (possibly empty)."""
        self._buf += data
        frames: list[tuple[int, bytes]] = []
        while len(self._buf) >= _FRAME_HEADER.size:
            length, tag = _FRAME_HEADER.unpack_from(self._buf)
            if length > self._max:
                raise WireError(f"frame of {length} bytes exceeds the "
                                f"{self._max}-byte bound (stream "
                                "desynchronized?)")
            if len(self._buf) < _FRAME_HEADER.size + length:
                break
            payload = bytes(self._buf[_FRAME_HEADER.size:
                                      _FRAME_HEADER.size + length])
            del self._buf[:_FRAME_HEADER.size + length]
            frames.append((tag, payload))
        return frames

    def __len__(self) -> int:
        return len(self._buf)


# paper-equivalent byte accounting --------------------------------------
_KIND_TO_MESSAGE = {
    START: MessageType.FLOWLET_START,
    END: MessageType.FLOWLET_END,
    USAGE: MessageType.FLOWLET_USAGE,
    RATES: MessageType.RATE_UPDATE,
    SNAPSHOT: MessageType.RATE_UPDATE,
}


def paper_wire_bytes(kind: int, count: int) -> int:
    """§6.2 wire bytes for a batch of ``count`` messages of ``kind``.

    Batched into one TCP segment, exactly as
    :func:`repro.control.messages.batched_wire_bytes` accounts the
    fluid control plane — so the service's traffic counters are
    directly comparable with figures 5-7.  Kinds outside the paper's
    schema (handshake, errors) cost nothing here.
    """
    mt = _KIND_TO_MESSAGE.get(kind)
    if mt is None or count == 0:
        return 0
    return batched_wire_bytes([PAYLOAD_BYTES[mt]] * count)
