"""The always-on allocator service: Flowtune as a network service.

The paper's deployment model (fig. 1) is a centralized allocator that
endpoints talk to over the network; until this package, the repo only
exercised that loop tick-driven inside the simulators.  Here it runs
for real: :class:`FlowtuneService` serves the NUM loop over TCP with
token auth and delta-encoded rate pushes, :class:`FlowtuneClient` is
the endpoint-side handle, :func:`spawn_service` launches a service
child process (``python -m repro.service``), and :mod:`.wire` defines
the pickled-free binary schema both sides speak.
"""

from .client import FlowtuneClient
from .server import FlowtuneService, ServiceHandle, spawn_service
from .wire import ServiceError, WireError

__all__ = ["FlowtuneService", "FlowtuneClient", "ServiceHandle",
           "spawn_service", "ServiceError", "WireError"]
