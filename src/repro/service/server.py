"""The always-on allocator service.

A single-threaded ``selectors`` loop (the socket fabric's idiom) owns
a rate scheduler (any :func:`repro.make_scheduler` mode — full
Flowtune by default) and serves many clients over
TCP: clients authenticate with a raw 16-byte token (checked before any
frame is parsed, exactly like the fabric's worker handshake), then
exchange :mod:`repro.service.wire` frames over the fabric's
length-prefixed framing.  Flowlet starts/ends/usage land in a
coalescing :class:`~repro.core.ChurnQueue`; the NUM loop runs in an
adaptive duty cycle — flat-out while churn is pending, at a
``min_cycle`` cadence while rates are still moving, and blocked in
``select`` (waking instantly on a frame) once converged — and pushes
delta-encoded rate updates back out on PR 4's dirty-row pattern:
per-client ``(base_seq, seq)``-chained RATES frames that the client
rejects on sequence skew, with SNAPSHOT frames restarting the chain.

Surviving unreliable clients (the PR 7 hardening):

* **Sessions outlive sockets.**  Per-client state (the flow
  namespace, the rate-chain position, a random ``resume_nonce``)
  lives in a :class:`_Session`; when a connection dies without BYE the
  session enters a ``resume_grace`` window during which its flows
  stay in the allocator.  A RESUME frame presenting the matching
  nonce re-binds the session to a new socket; the client replays its
  un-acked churn journal (duplicates are reconciled, not fatal, until
  the client's REPLAY_DONE frame closes the replay window) and the
  rate chain restarts from a fresh SNAPSHOT.  Grace expiry ends the
  flows exactly like the old dead-client path.

* **Ingest backpressure.**  Each connection owns a token bucket over
  churn *events* (``churn_rate``/``churn_burst``); outrunning it gets
  a BUSY credit reply and — the part a misbehaving client cannot
  ignore — the server stops reading that socket until the bucket
  refills, so TCP flow control throttles the sender while every other
  client's frames keep flowing.  ``max_pending`` bounds how many
  queued-but-unapplied events one client may hold between duty
  cycles the same way.

* **Slow-reader protection.**  Pushes never block the duty cycle:
  every send goes through a per-client outbox flushed by nonblocking
  writes under the selector.  An outbox that outgrows
  ``max_outbox`` bytes, or makes no progress for ``send_timeout``
  seconds, is the poison path — the client is dropped (into the
  grace window, so a stalled-but-alive endpoint may still resume)
  and the allocation loop never wedges.
"""

from __future__ import annotations

import os
import secrets
import selectors
import socket as socketlib
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from collections.abc import Sequence
from typing import Any

from ..core.allocator import ChurnQueue
from ..sampling import make_scheduler
from ..parallel.fabric import _TOKEN_LEN
from . import wire
from .wire import TAG_SERVICE, FrameBuffer, WireError

__all__ = ["FlowtuneService", "spawn_service", "ServiceHandle"]

_RECV_CHUNK = 1 << 16
_FRAME_HEADER = struct.Struct("!II")


def _as_token(token):
    if token is None:
        return secrets.token_bytes(_TOKEN_LEN)
    if isinstance(token, str):
        token = bytes.fromhex(token)
    token = bytes(token)
    if len(token) != _TOKEN_LEN:
        raise ValueError(f"token must be {_TOKEN_LEN} bytes, "
                         f"got {len(token)}")
    return token


class _Session:
    """Per-client state that survives the socket: the flow namespace,
    the rate-chain position, and the resume credentials."""

    __slots__ = ("client_id", "nonce", "flows", "seq", "disconnected_at",
                 "client")

    def __init__(self, client_id, nonce):
        self.client_id = client_id
        self.nonce = nonce            # u64; authenticates RESUME
        self.flows = set()            # client-local flow ids live
        self.seq = 0                  # rate-update chain position
        self.disconnected_at = None   # monotonic time, or None if bound
        self.client = None            # the live _Client, or None


class _Client:
    """Per-connection state machine: token -> HELLO/RESUME -> frames."""

    __slots__ = ("sock", "buf", "session", "token_buf", "authed",
                 "helloed", "replaying", "pending_snapshot", "outbox",
                 "outbox_since", "events", "tokens", "tokens_at",
                 "paused_until", "pending_events")

    def __init__(self, sock, tokens):
        self.sock = sock
        self.buf = FrameBuffer()
        self.session = None           # bound at HELLO / RESUME
        self.token_buf = bytearray()
        self.authed = False
        self.helloed = False
        # True from RESUME until the client's REPLAY_DONE frame:
        # churn in that window is reconciled idempotently (the
        # journal may replay what the server already applied).  The
        # client closes the window explicitly — TCP ordering puts
        # REPLAY_DONE after the whole burst — so duplicates on the
        # connection's steady state are fatal again.
        self.replaying = False
        self.pending_snapshot = False
        self.outbox = bytearray()     # framed bytes awaiting the socket
        self.outbox_since = 0.0       # when the outbox last made progress
        self.events = 0               # selector mask currently registered
        self.tokens = tokens          # churn token bucket (None = off)
        self.tokens_at = time.monotonic()
        self.paused_until = 0.0       # reads paused for bucket refill
        self.pending_events = 0       # queued-not-applied churn events

    @property
    def client_id(self):
        return self.session.client_id if self.session is not None else None

    @property
    def flows(self):
        return self.session.flows if self.session is not None else set()


class FlowtuneService:
    """Long-running allocator service over one TCP listener.

    Parameters
    ----------
    network:
        A topology (anything with ``.link_set()``) or a bare
        :class:`~repro.core.LinkSet`.
    mode:
        ``"auto"`` (default) runs the adaptive duty cycle; ``"manual"``
        only allocates on a client's STEP request — deterministic
        iterate counts, so a remote run is bit-comparable with an
        in-process allocator fed the same churn trace.
    iters_per_cycle, min_cycle, idle_timeout, quiet_after:
        Duty-cycle shape: iterations per allocation, minimum seconds
        between allocations while rates are still moving, the blocking
        ``select`` timeout once converged, and how many consecutive
        zero-update cycles count as converged.
    token:
        16 raw bytes, their hex form, or ``None`` to generate one
        (read it back from :attr:`token_hex`).
    resume_grace:
        Seconds a dropped (non-BYE) client's flows stay alive awaiting
        a RESUME; ``0`` disables resumption (flows end immediately,
        the pre-PR 7 behavior).
    churn_rate, churn_burst:
        Per-client token bucket over churn *events* (flows in
        START/END batches, items in USAGE reports): sustained
        events/sec and bucket depth.  ``None`` (default) disables rate
        limiting.  A client over budget gets one BUSY credit reply
        and is not read again until the bucket refills.
    max_pending:
        Per-client bound on queued-but-unapplied churn events; a
        client at the bound is not read again until the next duty
        cycle drains the queue.  ``None`` (default) disables.
        Meaningful in auto mode only — manual mode drains on STEP,
        which could never arrive if its own connection were paused.
    max_outbox, send_timeout:
        Slow-reader bounds: a client whose unsent push backlog
        exceeds ``max_outbox`` bytes, or whose socket accepts nothing
        for ``send_timeout`` seconds while pushes are pending, is
        dropped (into the grace window).
    sockbuf:
        Optional SO_SNDBUF/SO_RCVBUF clamp applied to accepted
        sockets (tests use this to exercise the slow-reader path with
        small pushes).

    Allocator knobs (``utility``, ``update_threshold``, ``gamma``,
    ``max_route_len``) are passed through to
    :func:`repro.make_scheduler`; ``scheduler_mode`` selects the
    scheme (``"flowtune"``, ``"sampled"`` or ``"ecmp"``), and
    ``promote_bytes``/``idle_epochs`` tune the sampled mode's elephant
    detector, which consumes the clients' USAGE reports.
    """

    def __init__(self, network: Any, *, utility: Any = None,
                 host: str = "127.0.0.1", port: int = 0,
                 token: bytes | str | None = None,
                 update_threshold: float = 0.01, gamma: float = 1.0,
                 max_route_len: int = 8, mode: str = "auto",
                 scheduler_mode: str = "flowtune",
                 promote_bytes: float = float(1 << 20),
                 idle_epochs: int = 100,
                 iters_per_cycle: int = 1, min_cycle: float = 0.0005,
                 idle_timeout: float = 0.05, quiet_after: int = 3,
                 send_timeout: float = 10.0, resume_grace: float = 2.0,
                 churn_rate: float | None = None,
                 churn_burst: float | None = None,
                 max_pending: int | None = None, max_outbox: int = 1 << 23,
                 sockbuf: int | None = None) -> None:
        if mode not in ("auto", "manual"):
            raise ValueError(f"mode must be 'auto' or 'manual', got {mode!r}")
        if max_pending is not None and mode == "manual":
            raise ValueError("max_pending pauses reads until a drain, but "
                             "manual mode drains only on STEP — the pause "
                             "would deadlock; use auto mode")
        links = network.link_set() if hasattr(network, "link_set") else network
        scheduler_kwargs: dict[str, Any] = {}
        if scheduler_mode != "ecmp":
            scheduler_kwargs["utility"] = utility
            scheduler_kwargs["gamma"] = gamma
        if scheduler_mode == "sampled":
            scheduler_kwargs["promote_bytes"] = promote_bytes
            scheduler_kwargs["idle_epochs"] = idle_epochs
        self.allocator = make_scheduler(
            links, mode=scheduler_mode,
            update_threshold=update_threshold,
            max_route_len=max_route_len, **scheduler_kwargs)
        self.queue = ChurnQueue()
        self.mode = mode
        self.iters_per_cycle = int(iters_per_cycle)
        self.min_cycle = float(min_cycle)
        self.idle_timeout = float(idle_timeout)
        self.quiet_after = int(quiet_after)
        self.send_timeout = float(send_timeout)
        self.resume_grace = float(resume_grace)
        self.churn_rate = None if churn_rate is None else float(churn_rate)
        if self.churn_rate is not None and self.churn_rate <= 0:
            raise ValueError("churn_rate must be > 0 (or None to disable)")
        if churn_burst is None:
            churn_burst = self.churn_rate
        self.churn_burst = None if churn_burst is None else \
            max(1.0, float(churn_burst))
        self.max_pending = None if max_pending is None else int(max_pending)
        self.max_outbox = int(max_outbox)
        self.sockbuf = sockbuf
        self._token = _as_token(token)
        self.stats = {"frames_in": 0, "frames_out": 0, "cycles": 0,
                      "iterations": 0, "paper_bytes_in": 0,
                      "paper_bytes_out": 0, "clients_dropped": 0,
                      "resumes": 0, "sessions_expired": 0,
                      "busy_sent": 0, "slow_readers_dropped": 0,
                      "churn_rejected": 0}

        self._clients = {}          # sock -> _Client
        self._sessions = {}         # client_id -> _Session
        self._next_client_id = 1
        self._quiet_rounds = 0
        self._last_cycle = 0.0
        self._last_result = None
        self._usage = {}            # (client_id, fid) -> cumulative bytes
        self._running = False
        self._closed = False
        self._thread = None
        self._run_thread = None         # whichever thread is in run()
        self._stopped = threading.Event()   # set while run() is not live
        self._stopped.set()
        self._lock = threading.Lock()   # guards start/close transitions

        self._listener = socketlib.socket()
        self._listener.setsockopt(socketlib.SOL_SOCKET,
                                  socketlib.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        self.address = self._listener.getsockname()[:2]
        # Self-pipe so close()/start() from other threads wake select.
        self._wake_r, self._wake_w = socketlib.socketpair()
        self._wake_r.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listener, selectors.EVENT_READ, "accept")
        self._sel.register(self._wake_r, selectors.EVENT_READ, "wake")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def token_hex(self) -> str:
        return self._token.hex()

    @property
    def n_flows(self) -> int:
        return self.allocator.n_flows

    def start(self) -> "FlowtuneService":
        """Serve from a daemon thread; returns once the thread runs."""
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._thread is not None:
                return self
            self._thread = threading.Thread(
                target=self.run, name="flowtune-service", daemon=True)
            self._thread.start()
        return self

    def run(self) -> None:
        """Serve in the calling thread until :meth:`close` (or a
        client's SHUTDOWN frame)."""
        with self._lock:
            if self._closed:
                return
            self._running = True
            self._run_thread = threading.current_thread()
            self._stopped.clear()
        try:
            while self._running:
                self._tick()
                timeout = self._select_timeout()
                for key, events in self._sel.select(timeout):
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wake":
                        self._drain_wake()
                    else:
                        if events & selectors.EVENT_WRITE:
                            self._flush(key.data)
                        if (events & selectors.EVENT_READ
                                and key.data.sock in self._clients):
                            self._service_readable(key.data)
                if self.mode == "auto":
                    self._auto_cycle()
        finally:
            # Same lock as start()/close(): _running is read by other
            # threads deciding whether a wake is needed, so its writes
            # all happen under the transition lock.
            with self._lock:
                self._running = False
            self._stopped.set()

    def _snapshot_pending(self):
        return any(c.pending_snapshot for c in self._clients.values())

    def _select_timeout(self):
        if self.mode == "manual":
            timeout = self.idle_timeout
        elif self.queue or self._snapshot_pending():
            # Churn is latency-critical (admission-to-rate-update is
            # the serving SLO): allocate on the next loop turn, no
            # pacing.
            timeout = 0.0
        elif self._quiet_rounds < self.quiet_after and self.allocator.n_flows:
            due = self._last_cycle + self.min_cycle - time.monotonic()
            timeout = max(0.0, min(due, self.idle_timeout))
        else:
            timeout = self.idle_timeout
        if timeout > 0.0:
            # Wake in time for the nearest bucket refill or grace
            # expiry, so paused clients resume and orphaned sessions
            # end without waiting out a full idle interval.
            now = time.monotonic()
            for client in self._clients.values():
                if client.paused_until > now:
                    timeout = min(timeout, client.paused_until - now)
            for session in self._sessions.values():
                if session.client is None and \
                        session.disconnected_at is not None:
                    due = session.disconnected_at + self.resume_grace - now
                    timeout = min(timeout, max(0.0, due))
        return timeout

    def _tick(self):
        """Timer-driven housekeeping, once per loop turn."""
        now = time.monotonic()
        for client in list(self._clients.values()):
            if client.paused_until and client.paused_until <= now:
                client.paused_until = 0.0
                self._set_events(client)
            if client.outbox and \
                    now - client.outbox_since > self.send_timeout:
                # No byte accepted for send_timeout: wedged reader.
                self.stats["slow_readers_dropped"] += 1
                self._drop_client(client)
        expired = [s for s in self._sessions.values()
                   if s.client is None and s.disconnected_at is not None
                   and now - s.disconnected_at >= self.resume_grace]
        for session in expired:
            self._end_session(session)
            self.stats["sessions_expired"] += 1

    def _auto_cycle(self):
        if not self.queue and not self._snapshot_pending():
            # min_cycle paces only the churnless convergence cycles,
            # so re-converging never starves frame ingestion.
            converging = (self._quiet_rounds < self.quiet_after
                          and self.allocator.n_flows)
            if not converging:
                return
            if time.monotonic() - self._last_cycle < self.min_cycle:
                return
        self._allocate(self.iters_per_cycle)
        self._last_cycle = time.monotonic()

    def close(self) -> None:
        """Stop serving and release the listener, clients, and thread.

        Idempotent; safe from any thread and from ``with`` blocks."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._running = False
        try:
            self._wake_w.send(b"\0")
        except OSError:  # pragma: no cover - wake pipe already gone
            pass
        if (self._thread is not None
                and self._thread is not threading.current_thread()):
            self._thread.join(timeout=10.0)
        elif self._run_thread is not threading.current_thread():
            # run() may be serving on a caller-owned thread: wait for
            # it to leave the loop (the wake pipe interrupts select)
            # before unregistering and closing selector resources
            # under it.
            self._stopped.wait(timeout=10.0)
        for client in list(self._clients.values()):
            self._drop_client(client, session_action="keep")
        self._sel.unregister(self._listener)
        self._sel.unregister(self._wake_r)
        self._listener.close()
        self._wake_r.close()
        self._wake_w.close()
        self._sel.close()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept(self):
        while True:
            try:
                sock, _ = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:  # pragma: no cover - listener closing
                return
            sock.setblocking(False)
            sock.setsockopt(socketlib.IPPROTO_TCP,
                            socketlib.TCP_NODELAY, 1)
            if self.sockbuf:
                sock.setsockopt(socketlib.SOL_SOCKET,
                                socketlib.SO_SNDBUF, int(self.sockbuf))
                sock.setsockopt(socketlib.SOL_SOCKET,
                                socketlib.SO_RCVBUF, int(self.sockbuf))
            client = _Client(sock, self.churn_burst)
            self._clients[sock] = client
            self._sel.register(sock, selectors.EVENT_READ, client)
            client.events = selectors.EVENT_READ

    def _drain_wake(self):
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _paused(self, client):
        if client.paused_until > time.monotonic():
            return True
        return (self.max_pending is not None
                and client.pending_events >= self.max_pending)

    def _set_events(self, client):
        """Reconcile the selector registration with the client's state:
        read unless paused (backpressure), write while the outbox has
        bytes.  A fully-paused empty-outbox client is unregistered and
        woken by the timer path."""
        if client.sock not in self._clients:
            return
        want = 0
        if not self._paused(client):
            want |= selectors.EVENT_READ
        if client.outbox:
            want |= selectors.EVENT_WRITE
        if want == client.events:
            return
        try:
            if client.events == 0:
                self._sel.register(client.sock, want, client)
            elif want == 0:
                self._sel.unregister(client.sock)
            else:
                self._sel.modify(client.sock, want, client)
        except (KeyError, ValueError):  # pragma: no cover - racing close
            pass
        client.events = want

    def _service_readable(self, client):
        try:
            data = client.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_client(client)
            return
        if not data:       # peer closed: the dead-client path
            self._drop_client(client)
            return
        if not client.authed:
            data = self._consume_token(client, data)
            if data is None:
                return
        try:
            frames = client.buf.feed(data)
            for tag, payload in frames:
                if tag != TAG_SERVICE:
                    raise WireError(f"unexpected frame tag {tag}")
                self._dispatch(client, payload)
                if not self._running or client.sock not in self._clients:
                    return
        except WireError as exc:
            # Stream no longer trustworthy: best-effort ERROR, drop.
            self._send_error(client, str(exc))
            self._drop_client(client, session_action="end")
            return
        self._set_events(client)

    def _consume_token(self, client, data):
        """Raw-token phase; returns leftover bytes once authenticated,
        or ``None`` while still waiting / after a silent drop."""
        client.token_buf += data
        if len(client.token_buf) < _TOKEN_LEN:
            return None
        presented = bytes(client.token_buf[:_TOKEN_LEN])
        if not secrets.compare_digest(presented, self._token):
            # Same policy as the fabric: close without a hint.
            self._drop_client(client, session_action="keep")
            return None
        client.authed = True
        rest = bytes(client.token_buf[_TOKEN_LEN:])
        client.token_buf = bytearray()
        return rest

    def _drop_client(self, client, session_action="grace"):
        """Disconnect one client.  ``session_action`` decides the fate
        of its session: ``"grace"`` (dead/slow connection — flows stay
        alive for ``resume_grace`` seconds awaiting a RESUME),
        ``"end"`` (BYE or a protocol violation — flows end now), or
        ``"keep"`` (rebind/teardown — the session is not touched)."""
        if client.sock not in self._clients:
            return
        del self._clients[client.sock]
        if client.events:
            try:
                self._sel.unregister(client.sock)
            except (KeyError, ValueError):  # pragma: no cover
                pass
            client.events = 0
        try:
            client.sock.close()
        except OSError:  # pragma: no cover
            pass
        session = client.session
        if session is not None and session.client is client:
            session.client = None
            if session_action == "end" or (session_action == "grace"
                                           and self.resume_grace <= 0):
                self._end_session(session)
            elif session_action == "grace":
                session.disconnected_at = time.monotonic()
        self.stats["clients_dropped"] += 1

    def _end_session(self, session):
        """End every flow the session holds (coalescing makes starts
        that never got applied vanish) and forget it — after this the
        client_id cannot be resumed."""
        for fid in session.flows:
            self.queue.push_end((session.client_id, fid))
            self._usage.pop((session.client_id, fid), None)
        session.flows = set()
        session.disconnected_at = None
        self._sessions.pop(session.client_id, None)

    # ------------------------------------------------------------------
    # sending (nonblocking, per-client outbox)
    # ------------------------------------------------------------------
    def _send(self, client, payload):
        """Queue one frame and flush opportunistically.  Never blocks:
        what the socket refuses waits in the outbox for EVENT_WRITE."""
        if client.sock not in self._clients:
            return False
        if not client.outbox:
            client.outbox_since = time.monotonic()
        client.outbox += _FRAME_HEADER.pack(len(payload), TAG_SERVICE)
        client.outbox += payload
        # Stats go up *before* the flush: the send syscall yields the
        # GIL, and a test thread woken by the arriving frame must
        # already see it counted.
        self.stats["frames_out"] += 1
        return self._flush(client)

    def _flush(self, client):
        """Drive the outbox with nonblocking writes; apply the
        slow-reader bound.  Returns False if the client was dropped."""
        try:
            while client.outbox:
                n = client.sock.send(memoryview(client.outbox))
                if n == 0:  # pragma: no cover - send never returns 0
                    break
                del client.outbox[:n]
                client.outbox_since = time.monotonic()
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._drop_client(client)
            return False
        if len(client.outbox) > self.max_outbox:
            # Bounded buffering exhausted: the poison path.
            self.stats["slow_readers_dropped"] += 1
            self._drop_client(client)
            return False
        self._set_events(client)
        return True

    def _send_error(self, client, message):
        if client.authed and client.sock in self._clients:
            self._send(client, wire.encode_error(message))

    # ------------------------------------------------------------------
    # ingest backpressure
    # ------------------------------------------------------------------
    def _debit(self, client, n_events):
        """Charge ``n_events`` against the client's token bucket; on
        deficit, send one BUSY credit reply and pause reads until the
        bucket refills (TCP flow control does the rest)."""
        if self.churn_rate is None or n_events == 0:
            return
        now = time.monotonic()
        client.tokens = min(
            self.churn_burst,
            client.tokens + (now - client.tokens_at) * self.churn_rate)
        client.tokens_at = now
        client.tokens -= n_events
        if client.tokens < 0:
            wait = -client.tokens / self.churn_rate
            client.paused_until = now + wait
            self.stats["busy_sent"] += 1
            self._send(client, wire.encode_busy(wait,
                                                int(self.churn_burst)))

    # ------------------------------------------------------------------
    # frame dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, client, payload):
        kind, body = wire.decode_message(payload)
        self.stats["frames_in"] += 1
        if not client.helloed:
            if kind == wire.HELLO:
                self._bind_new_session(client)
            elif kind == wire.RESUME:
                self._resume_session(client, body)
            else:
                raise WireError("first frame must be HELLO or RESUME")
            return
        if kind == wire.START:
            self._on_start(client, body)
        elif kind == wire.END:
            self._on_end(client, body)
        elif kind == wire.USAGE:
            self._on_usage(client, body)
        elif kind == wire.STEP:
            self._on_step(client, body)
        elif kind == wire.REPLAY_DONE:
            # The resumed client's journal burst is over: duplicate
            # churn goes back to being a protocol violation, so a
            # long-lived resumed connection doesn't mask client bugs.
            client.replaying = False
        elif kind == wire.BYE:
            self._drop_client(client, session_action="end")
        elif kind == wire.SHUTDOWN:
            with self._lock:
                self._running = False
        else:
            raise WireError(f"kind {kind} is not valid client->server")

    def _bind_new_session(self, client):
        session = _Session(self._next_client_id,
                           int.from_bytes(secrets.token_bytes(8), "big"))
        self._next_client_id += 1
        session.client = client
        client.session = session
        client.helloed = True
        self._sessions[session.client_id] = session
        self._send(client, wire.encode_welcome(
            session.client_id, self.allocator.full_links.n_links,
            session.nonce))

    def _resume_session(self, client, body):
        """Re-bind an existing session to this connection.  The nonce
        gates adoption; ``last_applied_seq`` is informational — rates
        may have moved with no frame sent while the client was gone,
        so the chain always restarts from a fresh SNAPSHOT."""
        client_id, nonce, _last_applied_seq = body
        session = self._sessions.get(client_id)
        if session is None or session.nonce != nonce:
            # Stale or forged resume: reject without touching any
            # session (the real owner may still be in its grace
            # window).
            self._send_error(client,
                             f"stale resume for client {client_id}: "
                             "unknown session or nonce mismatch")
            self._drop_client(client, session_action="keep")
            return
        old = session.client
        if old is not None and old is not client:
            # A half-dead predecessor still holds the session: detach
            # it without ending flows — this RESUME supersedes it.
            self._drop_client(old, session_action="keep")
        session.client = client
        session.disconnected_at = None
        client.session = session
        client.helloed = True
        client.replaying = True
        client.pending_snapshot = True
        self.stats["resumes"] += 1
        self._send(client, wire.encode_welcome(
            client_id, self.allocator.full_links.n_links, session.nonce))

    def _on_start(self, client, flows):
        # Validate the whole batch *before* queueing any of it —
        # duplicates, weights (the negated form also rejects NaN,
        # which `weight <= 0` would pass), and route contents, the
        # same checks FlowTable.add_flow applies — so a bad event can
        # never reach apply_churn mid-cycle and take the allocator
        # down for every other client.  In the replay window after a
        # RESUME, duplicates are reconciled (skipped): the journal may
        # replay starts the server already applied.
        session = client.session
        max_hops = self.allocator.max_route_len
        n_links = self.allocator.full_links.n_links
        seen = set()
        fresh = []
        for fid, route, weight in flows:
            if fid in session.flows or fid in seen:
                if client.replaying:
                    continue
                self._send_error(client, f"duplicate flowlet start: {fid}")
                self._drop_client(client, session_action="end")
                return
            if not (weight > 0):
                self._send_error(client, f"flow {fid}: weight must be > 0")
                self._drop_client(client, session_action="end")
                return
            if not 1 <= len(route) <= max_hops:
                self._send_error(
                    client, f"flow {fid}: route must have 1..{max_hops} "
                    f"hops, got {len(route)}")
                self._drop_client(client, session_action="end")
                return
            if int(route.max()) >= n_links:
                self._send_error(
                    client, f"flow {fid}: route contains an unknown "
                    f"link index (links are 0..{n_links - 1})")
                self._drop_client(client, session_action="end")
                return
            seen.add(fid)
            fresh.append((fid, route, weight))
        for fid, route, weight in fresh:
            self.queue.push_start((session.client_id, fid), route, weight)
            session.flows.add(fid)
        client.pending_events += len(fresh)
        self._debit(client, len(flows))
        self.stats["paper_bytes_in"] += wire.paper_wire_bytes(
            wire.START, len(flows))

    def _on_end(self, client, fids):
        # Batch-local seen-set: an END listing the same id twice must
        # be caught here (the loop doesn't mutate session.flows, so
        # membership alone cannot catch the second occurrence).
        session = client.session
        seen = set()
        fresh = []
        for fid in fids:
            if fid not in session.flows or fid in seen:
                if client.replaying:
                    continue
                self._send_error(client, f"end of unknown flowlet: {fid}")
                self._drop_client(client, session_action="end")
                return
            seen.add(fid)
            fresh.append(fid)
        for fid in fresh:
            self.queue.push_end((session.client_id, fid))
            session.flows.discard(fid)
            self._usage.pop((session.client_id, fid), None)
        client.pending_events += len(fresh)
        self._debit(client, len(fids))
        self.stats["paper_bytes_in"] += wire.paper_wire_bytes(
            wire.END, len(fids))

    def _on_usage(self, client, reports):
        session = client.session
        feed = self.allocator.wants_usage
        for fid, nbytes in reports:
            if fid in session.flows:
                self._usage[(session.client_id, fid)] = nbytes
                if feed:
                    # The §6.2 usage stream drives elephant detection
                    # in sampled mode.  Reports for flows whose start
                    # is still queued (or already ended) are dropped
                    # by the detector; the counts are cumulative, so
                    # the next report carries the full total anyway.
                    self.allocator.report_usage(
                        (session.client_id, fid), nbytes)
        self._debit(client, len(reports))
        self.stats["paper_bytes_in"] += wire.paper_wire_bytes(
            wire.USAGE, len(reports))

    def _on_step(self, client, n_iters):
        self._allocate(max(1, n_iters), snapshot_to=client)

    def usage_bytes(self, client_id: int, fid: int) -> int | None:
        """Latest usage report for one flow (testing/inspection aid)."""
        return self._usage.get((client_id, fid))

    # ------------------------------------------------------------------
    # the allocation cycle
    # ------------------------------------------------------------------
    def _allocate(self, n_iters, snapshot_to=None):
        starts, ends = self.queue.drain()
        if starts or ends:
            try:
                self.allocator.apply_churn(starts=starts, ends=ends)
            except (ValueError, KeyError):
                # Dispatch-time validation should make this
                # unreachable; if a poisoned batch slips through
                # anyway, dropping it must not kill the serving loop
                # for every client.  apply_churn applies ends before
                # validating starts, so resync each session's flow
                # set (and usage) against what the allocator actually
                # holds.
                self.stats["churn_rejected"] += 1
                for session in self._sessions.values():
                    dead = [fid for fid in session.flows
                            if (session.client_id, fid)
                            not in self.allocator]
                    for fid in dead:
                        session.flows.discard(fid)
                        self._usage.pop((session.client_id, fid), None)
            self._quiet_rounds = 0
        result = self.allocator.iterate(n_iters)
        self._last_result = result
        self.stats["cycles"] += 1
        self.stats["iterations"] += n_iters
        snap_clients = {c for c in self._clients.values()
                        if c.pending_snapshot and c.helloed}
        if snapshot_to is not None:
            snap_clients.add(snapshot_to)
        if len(result.update_indices):
            self._quiet_rounds = 0
            self._push_updates(result, skip=snap_clients)
        else:
            self._quiet_rounds += 1
        if snap_clients:
            rates = result.rates
            for client in snap_clients:
                self._send_snapshot(client, rates)
        # The queue is fully drained: every client's pending events
        # are applied, so depth-paused readers may resume.
        for client in self._clients.values():
            if client.pending_events:
                client.pending_events = 0
                self._set_events(client)

    def _push_updates(self, result, skip=()):
        """Group threshold-crossing updates per client and send each
        client one delta frame chained on its session's sequence
        number.  ``skip`` clients get a SNAPSHOT this cycle instead."""
        per_client = {}
        for (client_id, fid), rate in result.updates:
            per_client.setdefault(client_id, ([], []))
            per_client[client_id][0].append(fid)
            per_client[client_id][1].append(rate)
        if not per_client:
            return
        by_id = {c.session.client_id: c for c in self._clients.values()
                 if c.helloed and c.session is not None}
        for client_id, (fids, rates) in per_client.items():
            client = by_id.get(client_id)
            if client is None or client in skip:
                continue
            session = client.session
            base = session.seq
            session.seq = base + 1
            self.stats["paper_bytes_out"] += wire.paper_wire_bytes(
                wire.RATES, len(fids))
            self._send(client, wire.encode_rates(base, session.seq,
                                                 fids, rates))

    def _send_snapshot(self, client, rates):
        session = client.session
        fids, vals = [], []
        for fid in session.flows:
            gfid = (session.client_id, fid)
            if gfid in rates:
                fids.append(fid)
                vals.append(rates[gfid])
        session.seq += 1
        client.pending_snapshot = False
        self.stats["paper_bytes_out"] += wire.paper_wire_bytes(
            wire.SNAPSHOT, len(fids))
        self._send(client, wire.encode_snapshot(session.seq, fids, vals))

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"FlowtuneService(address={self.address}, mode={self.mode}, "
                f"n_flows={self.allocator.n_flows}, "
                f"clients={len(self._clients)})")


# ----------------------------------------------------------------------
# two-process convenience: spawn `python -m repro.service`
# ----------------------------------------------------------------------
class ServiceHandle:
    """A service running in a child process (see :func:`spawn_service`)."""

    def __init__(self, process, address, token_hex):
        self.process = process
        self.address = address
        self.token_hex = token_hex
        self._closed = False
        self._stderr_lines = deque(maxlen=200)
        self._stderr_thread = None
        if process.stderr is not None:
            self._stderr_thread = threading.Thread(
                target=self._drain_stderr, daemon=True,
                name="service-stderr")
            self._stderr_thread.start()

    def _drain_stderr(self):
        # Keep the child's stderr pipe drained (a full pipe would
        # block it) while retaining a tail for diagnostics.
        try:
            for line in self.process.stderr:
                self._stderr_lines.append(line.rstrip("\n"))
        except ValueError:  # pragma: no cover - pipe closed mid-read
            pass

    def stderr_tail(self, n=20):
        """The last ``n`` lines the child wrote to stderr."""
        return list(self._stderr_lines)[-n:]

    def close(self, timeout=10.0):
        """Terminate the child (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.process.kill()
                self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()
        if self._stderr_thread is not None:
            self._stderr_thread.join(timeout=timeout)
        if self.process.stderr is not None:
            self.process.stderr.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def _await_ready_line(process, timeout):
    """Bounded wait for the child's ``SERVICE-READY host port`` line.

    ``readline`` runs in a helper thread so a child that dies before
    printing (an import error lands on stderr, never stdout) or hangs
    cannot wedge the spawner; on failure the child is killed and its
    stderr is surfaced in the raised ``RuntimeError``.
    """
    result = {}

    def reader():
        try:
            result["line"] = process.stdout.readline()
        except ValueError:  # pragma: no cover - stdout closed under us
            result["line"] = ""

    thread = threading.Thread(target=reader, daemon=True,
                              name="service-ready-reader")
    thread.start()
    thread.join(timeout)
    line = (result.get("line") or "").strip()
    parts = line.split()
    if len(parts) == 3 and parts[0] == "SERVICE-READY":
        return parts
    timed_out = thread.is_alive()
    if process.poll() is None:
        process.kill()
    process.wait(timeout=10.0)
    thread.join(timeout=10.0)
    stderr = ""
    if process.stderr is not None:
        try:
            stderr = process.stderr.read() or ""
        except ValueError:  # pragma: no cover
            pass
    detail = "no SERVICE-READY within timeout" if timed_out \
        else f"got {line!r}"
    message = (f"service child failed to start ({detail}, "
               f"exit code {process.returncode})")
    tail = stderr.strip().splitlines()[-10:]
    if tail:
        message += "; child stderr:\n" + "\n".join(tail)
    raise RuntimeError(message)


def spawn_service(*, racks: int = 3, hosts_per_rack: int = 8,
                  spines: int = 2, mode: str = "auto", gamma: float = 1.0,
                  update_threshold: float = 0.01, iters_per_cycle: int = 1,
                  min_cycle: float = 0.0005, host: str = "127.0.0.1",
                  scheduler_mode: str | None = None,
                  promote_bytes: float | None = None,
                  idle_epochs: int | None = None,
                  resume_grace: float | None = None,
                  churn_rate: float | None = None,
                  churn_burst: float | None = None,
                  max_pending: int | None = None,
                  ready_timeout: float = 30.0,
                  extra_args: Sequence[str] = ()) -> "ServiceHandle":
    """Start ``python -m repro.service`` in a child process.

    Generates a token, exports it via ``$REPRO_SERVICE_TOKEN`` (never
    on the command line, where it would be visible in ``ps``), waits
    up to ``ready_timeout`` seconds for the child's ``SERVICE-READY
    host port`` line (a child that dies or hangs first is killed and
    its stderr surfaced in the ``RuntimeError``), and returns a
    :class:`ServiceHandle` with the bound address.

    ``resume_grace``, ``churn_rate``, ``churn_burst`` and
    ``max_pending`` forward the PR 7 hardening knobs when given
    (``None`` keeps the CLI defaults); ``scheduler_mode``,
    ``promote_bytes`` and ``idle_epochs`` likewise forward the
    sampling front-end knobs.
    """
    token_hex = secrets.token_bytes(_TOKEN_LEN).hex()
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["REPRO_SERVICE_TOKEN"] = token_hex
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.service",
           "--host", host, "--port", "0",
           "--racks", str(racks), "--hosts-per-rack", str(hosts_per_rack),
           "--spines", str(spines), "--mode", mode,
           "--gamma", str(gamma), "--threshold", str(update_threshold),
           "--iters-per-cycle", str(iters_per_cycle),
           "--min-cycle", str(min_cycle)]
    for flag, value in (("--scheduler-mode", scheduler_mode),
                        ("--promote-bytes", promote_bytes),
                        ("--idle-epochs", idle_epochs),
                        ("--resume-grace", resume_grace),
                        ("--churn-rate", churn_rate),
                        ("--churn-burst", churn_burst),
                        ("--max-pending", max_pending)):
        if value is not None:
            cmd += [flag, str(value)]
    cmd += list(extra_args)
    process = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                               stderr=subprocess.PIPE, text=True)
    parts = _await_ready_line(process, ready_timeout)
    address = (parts[1], int(parts[2]))
    return ServiceHandle(process, address, token_hex)
