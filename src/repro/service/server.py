"""The always-on allocator service.

A single-threaded ``selectors`` loop (the socket fabric's idiom) owns
a :class:`~repro.core.FlowtuneAllocator` and serves many clients over
TCP: clients authenticate with a raw 16-byte token (checked before any
frame is parsed, exactly like the fabric's worker handshake), then
exchange :mod:`repro.service.wire` frames over the fabric's
length-prefixed framing.  Flowlet starts/ends/usage land in a
coalescing :class:`~repro.core.ChurnQueue`; the NUM loop runs in an
adaptive duty cycle — flat-out while churn is pending, at a
``min_cycle`` cadence while rates are still moving, and blocked in
``select`` (waking instantly on a frame) once converged — and pushes
delta-encoded rate updates back out on PR 4's dirty-row pattern:
per-client ``(base_seq, seq)``-chained RATES frames that the client
rejects on sequence skew, with SNAPSHOT frames restarting the chain.

Sends go through the fabric's :func:`~repro.parallel.fabric.send_frame`
on sockets with a send timeout, so a stalled client that leaves half a
frame on the wire trips the fabric's poisoned-connection path and is
dropped — its flows are ended through the churn queue like any other
dead client, and the allocation loop never wedges.
"""

from __future__ import annotations

import os
import secrets
import selectors
import socket as socketlib
import subprocess
import sys
import threading
import time

from ..core import FlowtuneAllocator
from ..core.allocator import ChurnQueue
from ..parallel.fabric import _TOKEN_LEN, FabricError, send_frame
from . import wire
from .wire import TAG_SERVICE, FrameBuffer, WireError

__all__ = ["FlowtuneService", "spawn_service", "ServiceHandle"]

_RECV_CHUNK = 1 << 16


def _as_token(token):
    if token is None:
        return secrets.token_bytes(_TOKEN_LEN)
    if isinstance(token, str):
        token = bytes.fromhex(token)
    token = bytes(token)
    if len(token) != _TOKEN_LEN:
        raise ValueError(f"token must be {_TOKEN_LEN} bytes, "
                         f"got {len(token)}")
    return token


class _Client:
    """Per-connection state machine: token -> HELLO -> frames."""

    __slots__ = ("sock", "buf", "client_id", "flows", "seq", "token_buf",
                 "authed", "helloed")

    def __init__(self, sock):
        self.sock = sock
        self.buf = FrameBuffer()
        self.client_id = None     # assigned at HELLO
        self.flows = set()        # client-local flow ids currently live
        self.seq = 0              # rate-update chain position
        self.token_buf = bytearray()
        self.authed = False
        self.helloed = False


class FlowtuneService:
    """Long-running allocator service over one TCP listener.

    Parameters
    ----------
    network:
        A topology (anything with ``.link_set()``) or a bare
        :class:`~repro.core.LinkSet`.
    mode:
        ``"auto"`` (default) runs the adaptive duty cycle; ``"manual"``
        only allocates on a client's STEP request — deterministic
        iterate counts, so a remote run is bit-comparable with an
        in-process allocator fed the same churn trace.
    iters_per_cycle, min_cycle, idle_timeout, quiet_after:
        Duty-cycle shape: iterations per allocation, minimum seconds
        between allocations while rates are still moving, the blocking
        ``select`` timeout once converged, and how many consecutive
        zero-update cycles count as converged.
    token:
        16 raw bytes, their hex form, or ``None`` to generate one
        (read it back from :attr:`token_hex`).

    Allocator knobs (``utility``, ``update_threshold``, ``gamma``,
    ``max_route_len``) are passed through to
    :class:`~repro.core.FlowtuneAllocator`.
    """

    def __init__(self, network, *, utility=None, host="127.0.0.1", port=0,
                 token=None, update_threshold=0.01, gamma=1.0,
                 max_route_len=8, mode="auto", iters_per_cycle=1,
                 min_cycle=0.0005, idle_timeout=0.05, quiet_after=3,
                 send_timeout=10.0):
        if mode not in ("auto", "manual"):
            raise ValueError(f"mode must be 'auto' or 'manual', got {mode!r}")
        links = network.link_set() if hasattr(network, "link_set") else network
        self.allocator = FlowtuneAllocator(
            links, utility=utility, update_threshold=update_threshold,
            gamma=gamma, max_route_len=max_route_len)
        self.queue = ChurnQueue()
        self.mode = mode
        self.iters_per_cycle = int(iters_per_cycle)
        self.min_cycle = float(min_cycle)
        self.idle_timeout = float(idle_timeout)
        self.quiet_after = int(quiet_after)
        self.send_timeout = float(send_timeout)
        self._token = _as_token(token)
        self.stats = {"frames_in": 0, "frames_out": 0, "cycles": 0,
                      "iterations": 0, "paper_bytes_in": 0,
                      "paper_bytes_out": 0, "clients_dropped": 0}

        self._clients = {}          # sock -> _Client
        self._next_client_id = 1
        self._quiet_rounds = 0
        self._last_cycle = 0.0
        self._last_result = None
        self._usage = {}            # (client_id, fid) -> cumulative bytes
        self._running = False
        self._closed = False
        self._thread = None
        self._lock = threading.Lock()   # guards start/close transitions

        self._listener = socketlib.socket()
        self._listener.setsockopt(socketlib.SOL_SOCKET,
                                  socketlib.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._listener.setblocking(False)
        self.address = self._listener.getsockname()[:2]
        # Self-pipe so close()/start() from other threads wake select.
        self._wake_r, self._wake_w = socketlib.socketpair()
        self._wake_r.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listener, selectors.EVENT_READ, "accept")
        self._sel.register(self._wake_r, selectors.EVENT_READ, "wake")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def token_hex(self):
        return self._token.hex()

    @property
    def n_flows(self):
        return self.allocator.n_flows

    def start(self):
        """Serve from a daemon thread; returns once the thread runs."""
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._thread is not None:
                return self
            self._thread = threading.Thread(
                target=self.run, name="flowtune-service", daemon=True)
            self._thread.start()
        return self

    def run(self):
        """Serve in the calling thread until :meth:`close` (or a
        client's SHUTDOWN frame)."""
        self._running = True
        try:
            while self._running:
                timeout = self._select_timeout()
                for key, _ in self._sel.select(timeout):
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wake":
                        self._drain_wake()
                    else:
                        self._service_readable(key.data)
                if self.mode == "auto":
                    self._auto_cycle()
        finally:
            self._running = False

    def _select_timeout(self):
        if self.mode == "manual":
            return self.idle_timeout
        if self.queue:
            # Churn is latency-critical (admission-to-rate-update is
            # the serving SLO): allocate on the next loop turn, no
            # pacing.
            return 0.0
        if self._quiet_rounds < self.quiet_after and self.allocator.n_flows:
            due = self._last_cycle + self.min_cycle - time.monotonic()
            return max(0.0, min(due, self.idle_timeout))
        return self.idle_timeout

    def _auto_cycle(self):
        if not self.queue:
            # min_cycle paces only the churnless convergence cycles,
            # so re-converging never starves frame ingestion.
            converging = (self._quiet_rounds < self.quiet_after
                          and self.allocator.n_flows)
            if not converging:
                return
            if time.monotonic() - self._last_cycle < self.min_cycle:
                return
        self._allocate(self.iters_per_cycle)
        self._last_cycle = time.monotonic()

    def close(self):
        """Stop serving and release the listener, clients, and thread.

        Idempotent; safe from any thread and from ``with`` blocks."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._running = False
        try:
            self._wake_w.send(b"\0")
        except OSError:  # pragma: no cover - wake pipe already gone
            pass
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=10.0)
        for client in list(self._clients.values()):
            self._drop_client(client, end_flows=False)
        self._sel.unregister(self._listener)
        self._sel.unregister(self._wake_r)
        self._listener.close()
        self._wake_r.close()
        self._wake_w.close()
        self._sel.close()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept(self):
        while True:
            try:
                sock, _ = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:  # pragma: no cover - listener closing
                return
            sock.settimeout(self.send_timeout)
            sock.setsockopt(socketlib.IPPROTO_TCP,
                            socketlib.TCP_NODELAY, 1)
            client = _Client(sock)
            self._clients[sock] = client
            self._sel.register(sock, selectors.EVENT_READ, client)

    def _drain_wake(self):
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _service_readable(self, client):
        try:
            data = client.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_client(client)
            return
        if not data:       # peer closed: the dead-client path
            self._drop_client(client)
            return
        if not client.authed:
            data = self._consume_token(client, data)
            if data is None:
                return
        try:
            frames = client.buf.feed(data)
            for tag, payload in frames:
                if tag != TAG_SERVICE:
                    raise WireError(f"unexpected frame tag {tag}")
                self._dispatch(client, payload)
                if not self._running or client.sock not in self._clients:
                    return
        except WireError as exc:
            # Stream no longer trustworthy: best-effort ERROR, drop.
            self._send_error(client, str(exc))
            self._drop_client(client)

    def _consume_token(self, client, data):
        """Raw-token phase; returns leftover bytes once authenticated,
        or ``None`` while still waiting / after a silent drop."""
        client.token_buf += data
        if len(client.token_buf) < _TOKEN_LEN:
            return None
        presented = bytes(client.token_buf[:_TOKEN_LEN])
        if not secrets.compare_digest(presented, self._token):
            # Same policy as the fabric: close without a hint.
            self._drop_client(client)
            return None
        client.authed = True
        rest = bytes(client.token_buf[_TOKEN_LEN:])
        client.token_buf = bytearray()
        return rest

    def _drop_client(self, client, end_flows=True):
        if client.sock not in self._clients:
            return
        del self._clients[client.sock]
        try:
            self._sel.unregister(client.sock)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        try:
            client.sock.close()
        except OSError:  # pragma: no cover
            pass
        if end_flows and client.flows:
            # Dead client: its flows end as if it had said so —
            # coalescing makes starts it never got applied vanish.
            for fid in client.flows:
                self.queue.push_end((client.client_id, fid))
            client.flows = set()
        self.stats["clients_dropped"] += 1

    def _send(self, client, payload):
        try:
            send_frame(client.sock, TAG_SERVICE, payload)
        except (FabricError, TimeoutError, OSError):
            # Partial frames poisoned the socket inside send_frame;
            # either way this client is gone.
            self._drop_client(client)
            return False
        self.stats["frames_out"] += 1
        return True

    def _send_error(self, client, message):
        if client.authed and client.sock in self._clients:
            self._send(client, wire.encode_error(message))

    # ------------------------------------------------------------------
    # frame dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, client, payload):
        kind, body = wire.decode_message(payload)
        self.stats["frames_in"] += 1
        if not client.helloed:
            if kind != wire.HELLO:
                raise WireError("first frame must be HELLO")
            client.helloed = True
            client.client_id = self._next_client_id
            self._next_client_id += 1
            self._send(client, wire.encode_welcome(
                client.client_id, self.allocator.full_links.n_links))
            return
        if kind == wire.START:
            self._on_start(client, body)
        elif kind == wire.END:
            self._on_end(client, body)
        elif kind == wire.USAGE:
            self._on_usage(client, body)
        elif kind == wire.STEP:
            self._on_step(client, body)
        elif kind == wire.BYE:
            self._drop_client(client)
        elif kind == wire.SHUTDOWN:
            self._running = False
        else:
            raise WireError(f"kind {kind} is not valid client->server")

    def _on_start(self, client, flows):
        # Validate the whole batch *before* queueing any of it, so a
        # bad event can never reach apply_churn mid-cycle and take the
        # allocator down for every other client.
        seen = set()
        for fid, _route, weight in flows:
            if fid in client.flows or fid in seen:
                self._send_error(client, f"duplicate flowlet start: {fid}")
                self._drop_client(client)
                return
            if weight <= 0:
                self._send_error(client, f"flow {fid}: weight must be > 0")
                self._drop_client(client)
                return
            seen.add(fid)
        for fid, route, weight in flows:
            self.queue.push_start((client.client_id, fid), route, weight)
            client.flows.add(fid)
        self.stats["paper_bytes_in"] += wire.paper_wire_bytes(
            wire.START, len(flows))

    def _on_end(self, client, fids):
        for fid in fids:
            if fid not in client.flows:
                self._send_error(client, f"end of unknown flowlet: {fid}")
                self._drop_client(client)
                return
        for fid in fids:
            self.queue.push_end((client.client_id, fid))
            client.flows.discard(fid)
        self.stats["paper_bytes_in"] += wire.paper_wire_bytes(
            wire.END, len(fids))

    def _on_usage(self, client, reports):
        for fid, nbytes in reports:
            self._usage[(client.client_id, fid)] = nbytes
        self.stats["paper_bytes_in"] += wire.paper_wire_bytes(
            wire.USAGE, len(reports))

    def _on_step(self, client, n_iters):
        self._allocate(max(1, n_iters), snapshot_to=client)

    def usage_bytes(self, client_id, fid):
        """Latest usage report for one flow (testing/inspection aid)."""
        return self._usage.get((client_id, fid))

    # ------------------------------------------------------------------
    # the allocation cycle
    # ------------------------------------------------------------------
    def _allocate(self, n_iters, snapshot_to=None):
        starts, ends = self.queue.drain()
        if starts or ends:
            self.allocator.apply_churn(starts=starts, ends=ends)
            self._quiet_rounds = 0
        result = self.allocator.iterate(n_iters)
        self._last_result = result
        self.stats["cycles"] += 1
        self.stats["iterations"] += n_iters
        if len(result.update_indices):
            self._quiet_rounds = 0
            self._push_updates(result, skip=snapshot_to)
        else:
            self._quiet_rounds += 1
        if snapshot_to is not None:
            self._send_snapshot(snapshot_to, result)

    def _push_updates(self, result, skip=None):
        """Group threshold-crossing updates per client and send each
        client one delta frame chained on its last sequence number."""
        per_client = {}
        for (client_id, fid), rate in result.updates:
            per_client.setdefault(client_id, ([], []))
            per_client[client_id][0].append(fid)
            per_client[client_id][1].append(rate)
        if not per_client:
            return
        by_id = {c.client_id: c for c in self._clients.values()
                 if c.helloed}
        for client_id, (fids, rates) in per_client.items():
            client = by_id.get(client_id)
            if client is None or client is skip:
                continue
            base = client.seq
            client.seq = base + 1
            if self._send(client, wire.encode_rates(base, client.seq,
                                                    fids, rates)):
                self.stats["paper_bytes_out"] += wire.paper_wire_bytes(
                    wire.RATES, len(fids))

    def _send_snapshot(self, client, result):
        rates = result.rates
        fids, vals = [], []
        for fid in client.flows:
            gfid = (client.client_id, fid)
            if gfid in rates:
                fids.append(fid)
                vals.append(rates[gfid])
        client.seq += 1
        if self._send(client, wire.encode_snapshot(client.seq, fids, vals)):
            self.stats["paper_bytes_out"] += wire.paper_wire_bytes(
                wire.SNAPSHOT, len(fids))

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"FlowtuneService(address={self.address}, mode={self.mode}, "
                f"n_flows={self.allocator.n_flows}, "
                f"clients={len(self._clients)})")


# ----------------------------------------------------------------------
# two-process convenience: spawn `python -m repro.service`
# ----------------------------------------------------------------------
class ServiceHandle:
    """A service running in a child process (see :func:`spawn_service`)."""

    def __init__(self, process, address, token_hex):
        self.process = process
        self.address = address
        self.token_hex = token_hex
        self._closed = False

    def close(self, timeout=10.0):
        """Terminate the child (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.process.kill()
                self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def spawn_service(*, racks=3, hosts_per_rack=8, spines=2, mode="auto",
                  gamma=1.0, update_threshold=0.01, iters_per_cycle=1,
                  min_cycle=0.0005, host="127.0.0.1", extra_args=()):
    """Start ``python -m repro.service`` in a child process.

    Generates a token, exports it via ``$REPRO_SERVICE_TOKEN`` (never
    on the command line, where it would be visible in ``ps``), waits
    for the child's ``SERVICE-READY host port`` line, and returns a
    :class:`ServiceHandle` with the bound address.
    """
    token_hex = secrets.token_bytes(_TOKEN_LEN).hex()
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["REPRO_SERVICE_TOKEN"] = token_hex
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.service",
           "--host", host, "--port", "0",
           "--racks", str(racks), "--hosts-per-rack", str(hosts_per_rack),
           "--spines", str(spines), "--mode", mode,
           "--gamma", str(gamma), "--threshold", str(update_threshold),
           "--iters-per-cycle", str(iters_per_cycle),
           "--min-cycle", str(min_cycle), *extra_args]
    process = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                               text=True)
    line = process.stdout.readline().strip()
    parts = line.split()
    if len(parts) != 3 or parts[0] != "SERVICE-READY":
        process.terminate()
        process.wait(timeout=10.0)
        raise RuntimeError(f"service child failed to start (got {line!r})")
    address = (parts[1], int(parts[2]))
    return ServiceHandle(process, address, token_hex)
