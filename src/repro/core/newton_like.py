"""The Newton-like method (Athuraliya & Low, 2000) — measured diagonal.

Like NED, this method scales each link's price update by an estimate of
the Hessian diagonal; unlike NED it cannot compute the diagonal, so it
*measures* it: the slope of the link's aggregate rate with respect to
its own price, estimated from consecutive iterations,

    S_l(t) ~= (G_l(t) - G_l(t-1)) / (p_l(t) - p_l(t-1)),

smoothed with an exponential moving average.  The paper's critique
(§8): measurements need averaging intervals, carry error, and the
algorithm is unstable in several settings.  The implementation guards
the estimate (clamps it negative, falls back to the previous smoothed
value when the price did not move), but remains faithful to the
measure-then-scale structure so the instability can be observed.
"""

from __future__ import annotations

import numpy as np

from .optimizer import PriceOptimizer

__all__ = ["NewtonLikeOptimizer"]


class NewtonLikeOptimizer(PriceOptimizer):
    """Diagonal-scaled dual ascent with a *measured* diagonal.

    Parameters
    ----------
    gamma:
        Step-size scale (same role as in NED).
    smoothing:
        EWMA weight for new slope measurements (``beta`` in the
        original paper's averaging; higher reacts faster but is
        noisier).
    initial_diagonal:
        Magnitude of the initial Hessian-diagonal guess before any
        measurement exists.
    """

    name = "Newton-like"

    def __init__(self, table, utility=None, gamma: float = 1.0,
                 smoothing: float = 0.3, initial_diagonal: float = 1.0,
                 initial_price: float = 1.0):
        super().__init__(table, utility=utility, initial_price=initial_price)
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.gamma = float(gamma)
        self.smoothing = float(smoothing)
        n_links = table.links.n_links
        self._diag_estimate = np.full(n_links, -abs(initial_diagonal))
        self._previous_prices = None
        self._previous_over = None

    def _update_prices(self, rates):
        over = self.over_allocation(rates)
        if self._previous_prices is not None:
            dp = self.prices - self._previous_prices
            dg = over - self._previous_over
            measurable = np.abs(dp) > 1e-12
            slope = np.where(measurable, dg / np.where(measurable, dp, 1.0),
                             self._diag_estimate)
            # The true diagonal is negative; discard wrong-signed noise.
            slope = np.minimum(slope, -1e-12)
            self._diag_estimate = ((1.0 - self.smoothing) * self._diag_estimate
                                   + self.smoothing * slope)
        self._previous_prices = self.prices.copy()
        self._previous_over = over.copy()
        step = over / self._diag_estimate
        new_prices = self.prices - self.gamma * step
        np.maximum(new_prices, 0.0, out=new_prices)
        self.prices = new_prices
