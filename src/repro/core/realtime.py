"""Real-time (RT) optimizer variants: NED-RT and Gradient-RT.

Figure 12 of the paper compares the double-precision reference
implementations with "real-time implementations NED-RT and
Gradient-RT, which use single-point floating point operations and some
numeric approximations for speed".  We reproduce that distinction:

* all link/flow state is held and updated in ``float32``;
* divisions go through a fast reciprocal (one Newton-Raphson refinement
  of a coarse seed, mirroring what `rcpps`-style SIMD code does) rather
  than exact division.

The point of the experiment is that the approximations perturb the
trajectory slightly — over-allocation transients differ from the
reference — while remaining usable.
"""

from __future__ import annotations

import numpy as np

from .gradient import GradientOptimizer
from .ned import NedOptimizer

__all__ = ["fast_reciprocal", "NedRtOptimizer", "GradientRtOptimizer"]


def fast_reciprocal(values):
    """Approximate ``1/x`` in float32 with one Newton-Raphson step.

    The seed intentionally carries a small relative error (like the
    hardware ``rcpps`` estimate); one refinement step brings it to
    ~1e-4 relative error, far coarser than an exact divide but much
    cheaper on real-time SIMD paths.
    """
    x = np.asarray(values, dtype=np.float32)
    with np.errstate(divide="ignore", over="ignore"):
        seed = np.float32(1.0) / x
    # Inject the coarse-seed error the hardware estimate would have.
    seed = seed * np.float32(1.0009765625)  # 1 + 2**-10
    # Newton-Raphson: r <- r * (2 - x * r)
    return seed * (np.float32(2.0) - x * seed)


class _Float32RateMixin:
    """float32 rate update with approximate reciprocals (shared by RTs)."""

    _w32_version = -1
    _w32 = None
    #: preallocated float32 rho staging buffer — the real-time path
    #: must not allocate per iteration, so the float64 price sums are
    #: *cast into* this buffer instead of ``astype``-copied; it only
    #: ever re-allocates when the flow population outgrows it.
    _rho32 = None

    def _weights32(self):
        # float32 copy of the weight vector, cached between churn
        # events (the real-time path must not allocate per iteration).
        if self._w32_version != self.table.version:
            self._w32 = self.table.weights.astype(np.float32)
            self._w32_version = self.table.version
        return self._w32

    def _rho32_buffer(self, n):
        buffer = self._rho32
        if buffer is None or len(buffer) < n:
            # Track the table's storage capacity so steady churn never
            # triggers another allocation.
            capacity = max(n, len(self.table._weights))
            self._rho32 = buffer = np.empty(capacity, dtype=np.float32)
        return buffer[:n]

    def rate_update(self, prices=None):
        # Same kinked operating point as the reference (see
        # PriceOptimizer), but float32 with approximate reciprocals.
        rho64 = self.effective_price_sums(prices)
        rho = self._rho32_buffer(len(rho64))
        np.copyto(rho, rho64, casting="same_kind")
        np.maximum(rho, np.float32(1e-9), out=rho)
        return self._weights32() * fast_reciprocal(rho)


class NedRtOptimizer(_Float32RateMixin, NedOptimizer):
    """NED with float32 state and approximate reciprocals (fig. 12)."""

    name = "NED-RT"

    def __init__(self, table, utility=None, gamma: float = 1.0,
                 initial_price: float = 1.0):
        super().__init__(table, utility=utility, gamma=gamma,
                         initial_price=initial_price)
        self.prices = self.prices.astype(np.float32)

    def _update_prices(self, rates):
        # Same fused CSR pair scatter as the float64 NED (rates and
        # rate derivatives share indices; the float32 per-flow values
        # are staged through the float64 kernels exactly as before),
        # with the results then narrowed to float32.
        table = self.table
        rho = self.effective_price_sums()
        per_flow = self.utility.rate_derivative(rho, table.weights)
        load, hessian64 = table.link_totals2(rates, per_flow)
        self._load_memo = (table.version, rates, load)
        over = (load - table.links.capacity).astype(np.float32)
        hessian = hessian64.astype(np.float32)
        carrying = hessian < 0.0
        inv_h = np.zeros_like(hessian)
        inv_h[carrying] = -fast_reciprocal(-hessian[carrying])
        new_prices = np.where(
            carrying,
            self.prices.astype(np.float32)
            - np.float32(self.gamma) * over * inv_h,
            np.float32(0.0),
        )
        np.maximum(new_prices, np.float32(0.0), out=new_prices)
        self.prices = new_prices


class GradientRtOptimizer(_Float32RateMixin, GradientOptimizer):
    """Gradient projection with float32 state (fig. 12)."""

    name = "Gradient-RT"

    def __init__(self, table, utility=None, gamma: float = 1e-3,
                 initial_price: float = 1.0):
        super().__init__(table, utility=utility, gamma=gamma,
                         initial_price=initial_price)
        self.prices = self.prices.astype(np.float32)

    def _update_prices(self, rates):
        over = self.over_allocation(rates).astype(np.float32)
        new_prices = (self.prices.astype(np.float32)
                      + np.float32(self.gamma) * over)
        np.maximum(new_prices, np.float32(0.0), out=new_prices)
        self.prices = new_prices
