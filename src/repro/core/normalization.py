"""Rate normalization (§4): U-NORM and F-NORM.

The optimizer is warm-started across flowlet churn, so while prices
re-converge the raw rates can momentarily exceed link capacities.
Rather than letting that over-allocation turn into queueing (the
fate of distributed schemes like REM), Flowtune's centralized
allocator *normalizes* the rates before sending them to endpoints:

* **U-NORM** (uniform, Equation 8): scale every flow by the worst
  link's allocation-to-capacity ratio ``r* = max_l r_l``.  Simple and
  fairness-preserving, but one congested link drags the whole network
  down.
* **F-NORM** (per-flow, Equation 9): scale each flow by the worst
  ratio *along its own path*, ``max_{l in L(s)} r_l``.  Per-flow work,
  not relative-rate preserving, but only flows crossing congested
  links pay — the paper measures >99.7 % of optimal throughput.

Both return rates guaranteed feasible on every link (for F-NORM, each
link's load is divided by at least its own ratio).

The paper defines both with plain division by the max ratio, which
*scales up* when the network is under-allocated (U-NORM explicitly
targets "the most congested link will operate at its capacity").  Set
``allow_scale_up=False`` to clamp the factor at 1 (pure scale-down),
which some deployments may prefer during convergence from below.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .network import FlowTable

__all__ = ["link_ratios", "u_norm", "f_norm", "Normalizer",
           "UNormalizer", "FNormalizer", "NullNormalizer"]

FloatArray = npt.NDArray[np.float64]

_EPSILON = 1e-12


def link_ratios(table: FlowTable, rates: npt.ArrayLike,
                link_load: FloatArray | None = None) -> FloatArray:
    """Per-link allocation-to-capacity ratios ``r_l`` (Equation 8).

    ``link_load`` short-circuits the scatter when the caller already
    holds ``table.link_totals(rates)`` — the allocator threads the
    price update's load through so one iterate scatters rates once.
    """
    load = link_load if link_load is not None else table.link_totals(rates)
    return np.asarray(load / table.links.capacity, dtype=np.float64)


def u_norm(table: FlowTable, rates: npt.ArrayLike,
           allow_scale_up: bool = True,
           link_load: FloatArray | None = None) -> FloatArray:
    """Uniform normalization (Equation 8): all flows / worst ratio."""
    rates = np.asarray(rates, dtype=np.float64)
    if len(rates) == 0:
        return rates.copy()
    worst = float(np.max(link_ratios(table, rates, link_load=link_load)))
    if worst <= _EPSILON:
        return rates.copy()
    if not allow_scale_up:
        worst = max(worst, 1.0)
    return rates / worst


def f_norm(table: FlowTable, rates: npt.ArrayLike,
           allow_scale_up: bool = True,
           link_load: FloatArray | None = None) -> FloatArray:
    """Per-flow normalization (Equation 9): each flow / its worst link."""
    rates = np.asarray(rates, dtype=np.float64)
    if len(rates) == 0:
        return rates.copy()
    ratios = link_ratios(table, rates, link_load=link_load)
    per_flow_worst = table.max_link_value(ratios)
    per_flow_worst = np.maximum(per_flow_worst, _EPSILON)
    if not allow_scale_up:
        np.maximum(per_flow_worst, 1.0, out=per_flow_worst)
    return rates / per_flow_worst


class Normalizer:
    """Callable normalization policy (fig. 13 compares the subclasses).

    ``link_load`` is an optional precomputed ``table.link_totals(rates)``
    (the allocator passes the price update's own scatter); subclasses
    that don't consume it must still accept it.  The ``link_load=``
    form is the only supported signature: constructing an allocator
    with a two-argument legacy normalizer raises :class:`TypeError`
    with a migration hint — the signature-sniffing fallback that used
    to run such callables has been removed.
    """

    name = "none"

    def __call__(self, table: FlowTable, rates: npt.ArrayLike,
                 link_load: FloatArray | None = None) -> FloatArray:
        raise NotImplementedError


class UNormalizer(Normalizer):
    name = "U-NORM"

    def __init__(self, allow_scale_up: bool = True) -> None:
        self.allow_scale_up = allow_scale_up

    def __call__(self, table: FlowTable, rates: npt.ArrayLike,
                 link_load: FloatArray | None = None) -> FloatArray:
        return u_norm(table, rates, allow_scale_up=self.allow_scale_up,
                      link_load=link_load)


class FNormalizer(Normalizer):
    name = "F-NORM"

    def __init__(self, allow_scale_up: bool = True) -> None:
        self.allow_scale_up = allow_scale_up

    def __call__(self, table: FlowTable, rates: npt.ArrayLike,
                 link_load: FloatArray | None = None) -> FloatArray:
        return f_norm(table, rates, allow_scale_up=self.allow_scale_up,
                      link_load=link_load)


class NullNormalizer(Normalizer):
    """No normalization — the fig. 12 configuration."""

    name = "none"

    def __call__(self, table: FlowTable, rates: npt.ArrayLike,
                 link_load: FloatArray | None = None) -> FloatArray:
        return np.asarray(rates, dtype=np.float64).copy()
