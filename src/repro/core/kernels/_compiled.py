"""Optional compiled kernel tier (numba ``@njit(parallel=True)``).

The fully parallel scatter path: unlike the threads tier, the
per-chunk link scatters run without the GIL, so the bincount-bound
kernels scale with cores too.  Strictly optional — this container and
the CI runners do not install numba — so everything is guarded:
:func:`available` probes the import, and :func:`make_tier` compiles
the kernels *and* self-checks them against the numpy tier on a small
multi-chunk case before the dispatcher will hand the tier out.  Any
failure surfaces as an exception that ``kernels.select`` turns into a
warning plus a graceful fallback to ``threads``/``numpy``.

Bitwise contract: the nopython loops replicate the canonical chunked
reduction exactly — ``prange`` over the chunk grid, strict row/hop
accumulation order inside a chunk, per-chunk partials folded in
ascending chunk order sequentially — with fastmath left *off* so no
reassociation can creep in.  Thread count cannot change a single
float operation, same as the other tiers.
"""

from __future__ import annotations

import numpy as np

from . import _base

try:  # pragma: no cover - numba is absent in the dev container/CI
    import numba
    from numba import njit, prange
    _HAVE_NUMBA = True
except Exception:  # ImportError, or a broken install
    numba = None
    _HAVE_NUMBA = False

    def njit(*args, **kwargs):  # stub so the module still imports
        def wrap(fn):
            return fn
        if args and callable(args[0]):
            return args[0]
        return wrap

    prange = range


def available():
    """True when numba imports (the tier may still fail make_tier's
    self-check, in which case select() degrades with a warning)."""
    return _HAVE_NUMBA


# The jitted bodies take the chunk size as an argument so the
# self-check can force a multi-chunk reduction on a tiny case while
# production calls pass the canonical _base.BLOCK_ROWS.

@njit(cache=True, parallel=True)
def _price_sums(padded, indices, out, n, width, block):
    n_chunks = (n + block - 1) // block
    for c in prange(n_chunks):
        r0 = c * block
        r1 = min(n, r0 + block)
        for r in range(r0, r1):
            base = r * width
            acc = padded[indices[base]]
            for hop in range(1, width):
                acc += padded[indices[base + hop]]
            out[r] = acc


@njit(cache=True, parallel=True)
def _max_link_value(padded, indices, out, n, width, block):
    n_chunks = (n + block - 1) // block
    for c in prange(n_chunks):
        r0 = c * block
        r1 = min(n, r0 + block)
        for r in range(r0, r1):
            base = r * width
            acc = padded[indices[base]]
            for hop in range(1, width):
                value = padded[indices[base + hop]]
                if value > acc:
                    acc = value
            out[r] = acc


@njit(cache=True, parallel=True)
def _link_totals(values, indices, out, n, width, minlength, block):
    n_chunks = (n + block - 1) // block
    parts = np.zeros((n_chunks, minlength))
    for c in prange(n_chunks):
        r0 = c * block
        r1 = min(n, r0 + block)
        for r in range(r0, r1):
            value = values[r]
            base = r * width
            for hop in range(width):
                parts[c, indices[base + hop]] += value
    # Canonical fold: ascending chunk order, sequential.
    for link in range(minlength):
        out[link] = parts[0, link]
    for c in range(1, n_chunks):
        for link in range(minlength):
            out[link] += parts[c, link]


@njit(cache=True, parallel=True)
def _link_totals2(a, b, indices, out_a, out_b, n, width, minlength,
                  block):
    n_chunks = (n + block - 1) // block
    parts_a = np.zeros((n_chunks, minlength))
    parts_b = np.zeros((n_chunks, minlength))
    for c in prange(n_chunks):
        r0 = c * block
        r1 = min(n, r0 + block)
        for r in range(r0, r1):
            va = a[r]
            vb = b[r]
            base = r * width
            for hop in range(width):
                link = indices[base + hop]
                parts_a[c, link] += va
                parts_b[c, link] += vb
    for link in range(minlength):
        out_a[link] = parts_a[0, link]
        out_b[link] = parts_b[0, link]
    for c in range(1, n_chunks):
        for link in range(minlength):
            out_a[link] += parts_a[c, link]
            out_b[link] += parts_b[c, link]


class CompiledTier:
    """Numba-backed kernels; memory-bound helpers delegate to numpy."""

    name = "compiled"

    def __init__(self):
        self._numpy = None  # filled by make_tier (delegate + checker)

    def describe(self):
        threads = numba.get_num_threads() if _HAVE_NUMBA else 0
        return f"compiled(numba,{threads})"

    # -- per-row reductions -------------------------------------------
    def price_sums(self, padded, indices, n, width, buf):
        out = np.empty(n)
        _price_sums(padded, np.ascontiguousarray(indices[: n * width]),
                    out, n, width, _base.BLOCK_ROWS)
        return out

    def max_link_value(self, padded, indices, n, width, buf, out):
        _max_link_value(padded,
                        np.ascontiguousarray(indices[: n * width]),
                        out[:n], n, width, _base.BLOCK_ROWS)
        return out

    # -- link scatters ------------------------------------------------
    def link_totals(self, values, indices, n, width, minlength, buf):
        out = np.empty(minlength)
        _link_totals(np.ascontiguousarray(values),
                     np.ascontiguousarray(indices[: n * width]),
                     out, n, width, minlength, _base.BLOCK_ROWS)
        return out

    def link_totals2(self, a, b, indices, n, width, minlength, buf):
        out_a = np.empty(minlength)
        out_b = np.empty(minlength)
        _link_totals2(np.ascontiguousarray(a), np.ascontiguousarray(b),
                      np.ascontiguousarray(indices[: n * width]),
                      out_a, out_b, n, width, minlength,
                      _base.BLOCK_ROWS)
        return out_a, out_b

    # -- churn-apply helpers (memory-bound: numpy is already optimal) --
    def min_link_value(self, padded, rows_mat, buf2d, out):
        return self._numpy.min_link_value(padded, rows_mat, buf2d, out)

    def patch_rows(self, dst_mat, src_mat, rows, width):
        self._numpy.patch_rows(dst_mat, src_mat, rows, width)

    def copy_rows(self, dst_mat, src_mat, lo, hi, width):
        self._numpy.copy_rows(dst_mat, src_mat, lo, hi, width)


def make_tier():
    """Compile, self-check against the numpy tier, and return the
    compiled tier.  Raises on any failure (numba absent, compilation
    error, or a bitwise mismatch) — the dispatcher degrades then.
    """
    from ._numpy import NumpyTier

    if not _HAVE_NUMBA:
        raise RuntimeError("numba is not installed")
    tier = CompiledTier()
    reference = NumpyTier()
    tier._numpy = reference

    # Multi-chunk smoke case: 11 rows of width 3 with a forced block
    # of 4 rows exercises the partial fold; compares bitwise against
    # the numpy tier running the same grid.
    rng = np.random.default_rng(7)
    n, width, n_links, block = 11, 3, 5, 4
    indices = rng.integers(0, n_links + 1, size=n * width).astype(np.int64)
    padded = np.append(rng.random(n_links), 0.0)
    values_a = rng.random(n)
    values_b = rng.random(n)
    buf = np.empty(n * width)
    out = np.empty(n)

    saved = _base.BLOCK_ROWS
    try:
        _base.BLOCK_ROWS = block
        checks = [
            (tier.price_sums(padded, indices, n, width, buf),
             reference.price_sums(padded, indices, n, width, buf)),
            (tier.link_totals(values_a, indices, n, width, n_links + 1,
                              buf),
             reference.link_totals(values_a, indices, n, width,
                                   n_links + 1, buf)),
            (tier.max_link_value(padded, indices, n, width, buf,
                                 out.copy()),
             reference.max_link_value(padded, indices, n, width, buf,
                                      out.copy())),
        ]
        got2 = tier.link_totals2(values_a, values_b, indices, n, width,
                                 n_links + 1, buf)
        want2 = reference.link_totals2(values_a, values_b, indices, n,
                                       width, n_links + 1, buf)
        checks.extend(zip(got2, want2))
    finally:
        _base.BLOCK_ROWS = saved
    for got, want in checks:
        if not np.array_equal(got, want):
            raise RuntimeError(
                "compiled kernels failed the bitwise self-check")
    return tier
