"""Pluggable implementation tiers for the CSR scatter kernels.

The allocator hot loop bottoms out in four gather/scatter kernels over
the uniform-slot CSR route index (`price_sums`, `link_totals`,
`link_totals2`, `max_link_value`) plus the churn-apply bottleneck
gather.  This package puts those kernels behind a single dispatch
point with three interchangeable tiers:

``numpy``
    The always-available fallback: vectorized numpy over the CSR
    slots, one canonical chunk at a time (see below).
``threads``
    Splits the CSR rows across chunk-aligned ranges on a persistent
    fan-out thread pool.  Gathers (`np.take`) and the per-row column
    reductions release the GIL and scale with cores; the per-chunk
    `bincount` scatters serialize on the GIL but overlap with other
    chunks' gathers.
``compiled``
    Optional `numba` `@njit(parallel=...)` kernels behind the same
    interface — the fully parallel scatter path.  Degrades gracefully
    (with a warning) to ``threads``/``numpy`` when numba is absent or
    fails its startup self-check.

**Bitwise-equality contract.**  Float addition is not associative, so
per-thread partial link vectors naively summed would not match a
single sequential ``bincount`` bit for bit.  Every tier therefore
implements one *canonical chunked reduction*: rows are cut into fixed
``BLOCK_ROWS``-aligned chunks (boundaries depend only on ``n``, never
on the tier or thread count), each chunk produces its partial in
strict row/hop order, and partials are combined in ascending chunk
order.  Threads compute chunks concurrently but each partial is
per-*chunk*, not per-thread, and the fan-in replays the same ascending
order — so ``numpy == threads == compiled`` bitwise by construction,
on any machine, at any thread count.  For ``n <= BLOCK_ROWS`` the
reduction degenerates to the single historical ``bincount``/column
pass, so small-table results are bit-identical to the pre-tier code.

Tier selection honors ``REPRO_KERNEL_TIER=numpy|threads|compiled|auto``
(read lazily at first kernel use; ``auto`` prefers ``compiled`` when
numba imports, else ``threads`` on multi-core hosts, else ``numpy``).
``REPRO_KERNEL_THREADS`` caps the thread tier's pool.  The active tier
is surfaced by ``describe()`` in `harness.py --profile` headers and
BENCH environment metadata.
"""

from __future__ import annotations

import contextlib
import os
import warnings

from ._base import chunk_spans
from ._numpy import NumpyTier
from ._threads import ThreadsTier

__all__ = [
    "chunk_spans", "select", "active", "describe",
    "available_tiers", "use", "NumpyTier", "ThreadsTier",
]

# The canonical chunk size lives in ``_base.BLOCK_ROWS`` (read
# dynamically by chunk_spans, so tests can monkeypatch it small).

_TIER_NAMES = ("numpy", "threads", "compiled")

_active = None       # the selected tier instance
_instances = {}      # name -> tier instance (pools are persistent)


def available_tiers():
    """Mapping of tier name -> importable right now (numpy/threads are
    always true; compiled requires numba and a passing self-check)."""
    from . import _compiled
    return {
        "numpy": True,
        "threads": True,
        "compiled": _compiled.available(),
    }


def _make(name):
    tier = _instances.get(name)
    if tier is None:
        if name == "numpy":
            tier = NumpyTier()
        elif name == "threads":
            tier = ThreadsTier()
        else:
            from . import _compiled
            tier = _compiled.make_tier()  # raises when unavailable
        _instances[name] = tier
    return tier


def select(name=None):
    """Select the active kernel tier; returns the tier instance.

    ``name=None`` reads ``REPRO_KERNEL_TIER`` (default ``auto``).
    Unknown names warn and fall back to ``auto``; ``compiled`` without
    a working numba warns and degrades to ``threads``/``numpy``.
    """
    global _active
    if name is None:
        name = os.environ.get("REPRO_KERNEL_TIER", "auto")
    name = str(name).strip().lower() or "auto"
    if name not in _TIER_NAMES + ("auto",):
        warnings.warn(
            f"unknown REPRO_KERNEL_TIER {name!r}; using 'auto'",
            RuntimeWarning, stacklevel=2)
        name = "auto"
    if name == "auto":
        from . import _compiled
        if _compiled.available():
            candidates = ("compiled", "threads", "numpy")
        elif (os.cpu_count() or 1) > 1:
            candidates = ("threads",)
        else:
            candidates = ("numpy",)
    elif name == "compiled":
        # Explicit request: try it, degrade loudly if broken/absent.
        candidates = ("compiled",
                      "threads" if (os.cpu_count() or 1) > 1 else "numpy")
    else:
        candidates = (name,)
    last_error = None
    for candidate in candidates:
        try:
            _active = _make(candidate)
            break
        except Exception as exc:  # numba missing / self-check failed
            last_error = exc
            if name != "auto":
                warnings.warn(
                    f"kernel tier {candidate!r} unavailable "
                    f"({exc}); falling back", RuntimeWarning,
                    stacklevel=2)
    else:  # pragma: no cover - numpy tier construction cannot fail
        raise RuntimeError(
            f"no kernel tier available: {last_error}")
    return _active


def active():
    """The active tier, selecting from the environment on first use."""
    if _active is None:
        select()
    return _active


def describe():
    """Human-readable active-tier tag, e.g. ``threads(4)`` — used by
    the harness ``--profile`` header and BENCH environment metadata."""
    return active().describe()


@contextlib.contextmanager
def use(name):
    """Temporarily select a tier (tests; restores the previous one)."""
    global _active
    previous = _active
    try:
        yield select(name)
    finally:
        _active = previous
