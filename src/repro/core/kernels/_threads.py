"""Threaded kernel tier: chunk-aligned fan-out over a persistent pool.

Each kernel call splits the canonical chunk grid into contiguous
per-thread runs; the calling thread takes share 0 and a persistent
pool of daemon helpers takes the rest, synchronized by per-helper
wake events and one fan-in condition (two context switches per call,
no queue).  Gathers (``np.take``) and the column-fold reductions
release the GIL and scale with cores; the per-chunk ``bincount``
scatters hold it but overlap with other threads' gathers.

Bitwise equality with the numpy tier holds by construction: every
partial is per-*chunk* (the same grid, computed by whichever thread
owns the chunk) and the fan-in folds partials in ascending chunk
order on the calling thread — thread count and scheduling cannot
reorder a single float operation.

Fork safety: worker processes forked by the process-parallel backend
inherit this module's tier instance but not its helper threads (fork
keeps only the calling thread).  The pool re-creates itself when it
notices the pid changed, so children just work.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from . import _base


def _split(n_items, n_shares):
    """Contiguous near-even split of ``range(n_items)``; no empties."""
    n_shares = max(1, min(n_shares, n_items))
    q, r = divmod(n_items, n_shares)
    bounds = []
    lo = 0
    for s in range(n_shares):
        hi = lo + q + (1 if s < r else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class _FanOut:
    """Persistent fan-out/fan-in helper pool (daemon threads).

    ``run(work, n_shares)`` calls ``work(share)`` for every share in
    ``range(n_shares)``; the calling thread runs share 0, helpers the
    rest.  Exceptions propagate to the caller after the fan-in.
    """

    def __init__(self, n_helpers):
        self.n_helpers = n_helpers
        self._pid = os.getpid()
        self._work = None
        self._n_shares = 0
        self._errors = []
        self._stopping = False
        self._cv = threading.Condition()
        self._pending = 0
        self._go = [threading.Event() for _ in range(n_helpers)]
        self._threads = [
            threading.Thread(target=self._loop, args=(i,), daemon=True,
                             name=f"repro-kernel-{i}")
            for i in range(n_helpers)
        ]
        for thread in self._threads:
            thread.start()

    def _loop(self, helper):
        go = self._go[helper]
        while True:
            go.wait()
            go.clear()
            if self._stopping:
                return
            if helper + 1 < self._n_shares:
                try:
                    self._work(helper + 1)
                except BaseException as exc:  # re-raised by run()
                    self._errors.append(exc)
            with self._cv:
                self._pending -= 1
                if self._pending == 0:
                    self._cv.notify()

    def run(self, work, n_shares):
        self._work = work
        self._n_shares = n_shares
        self._errors.clear()
        with self._cv:
            self._pending = self.n_helpers
        for go in self._go:
            go.set()
        work(0)
        with self._cv:
            while self._pending:
                self._cv.wait()
        self._work = None
        if self._errors:
            raise self._errors[0]

    def close(self):
        """Stop and join the helpers (idempotent).

        Helpers are daemons, so an unclosed pool still dies with the
        interpreter; close() gives tests and long-lived embedders a
        deterministic teardown.  Joining is skipped in forked children
        — they never inherited the threads.
        """
        if self._stopping:
            return
        self._stopping = True
        for go in self._go:
            go.set()
        if os.getpid() != self._pid:
            return
        for thread in self._threads:
            thread.join(timeout=5.0)


class ThreadsTier:
    """Chunk-parallel kernels on a persistent thread pool."""

    name = "threads"

    def __init__(self, n_threads=None):
        if n_threads is None:
            env = os.environ.get("REPRO_KERNEL_THREADS", "")
            n_threads = int(env) if env else (os.cpu_count() or 1)
        self.n_threads = max(1, int(n_threads))
        self._pool = None  # lazy; rebuilt after fork

    def describe(self):
        return f"threads({self.n_threads})"

    def close(self):
        """Tear down the helper pool; the tier rebuilds it on demand."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def _run(self, work, n_shares):
        """Dispatch ``work(share)`` over ``n_shares`` shares."""
        if n_shares <= 1 or self.n_threads == 1:
            for share in range(n_shares):
                work(share)
            return
        pool = self._pool
        if pool is None or pool._stopping or pool._pid != os.getpid():
            pool = self._pool = _FanOut(self.n_threads - 1)
        pool.run(work, n_shares)

    # -- per-row reductions -------------------------------------------
    def _run_rows(self, n, row_work):
        """Fan ``row_work(r0, r1)`` out over chunk-aligned row spans.

        Per-row kernels have no cross-row state, so each thread runs
        one merged span covering its whole chunk run.
        """
        if n <= 0:
            return
        spans = _base.chunk_spans(n)
        shares = _split(len(spans), self.n_threads)

        def work(share):
            c0, c1 = shares[share]
            row_work(spans[c0][0], spans[c1 - 1][1])

        self._run(work, len(shares))

    def price_sums(self, padded, indices, n, width, buf):
        out = np.empty(n)
        self._run_rows(n, lambda r0, r1: _base.price_sums_chunk(
            padded, indices, buf, out, r0, r1, width))
        return out

    def max_link_value(self, padded, indices, n, width, buf, out):
        self._run_rows(n, lambda r0, r1: _base.max_chunk(
            padded, indices, buf, out, r0, r1, width))
        return out

    # -- link scatters ------------------------------------------------
    def link_totals(self, values, indices, n, width, minlength, buf):
        spans = _base.chunk_spans(n)
        parts = [None] * len(spans)
        shares = _split(len(spans), self.n_threads)

        def work(share):
            for chunk in range(*shares[share]):
                r0, r1 = spans[chunk]
                parts[chunk] = _base.totals_chunk(
                    values, indices, buf, r0, r1, width, minlength)

        self._run(work, len(shares))
        return _base.reduce_parts(parts)

    def link_totals2(self, a, b, indices, n, width, minlength, buf):
        spans = _base.chunk_spans(n)
        parts = [None] * len(spans)
        shares = _split(len(spans), self.n_threads)

        def work(share):
            for chunk in range(*shares[share]):
                r0, r1 = spans[chunk]
                parts[chunk] = _base.totals2_chunk(
                    a, b, indices, buf, r0, r1, width, minlength)

        self._run(work, len(shares))
        return (_base.reduce_parts([p[0] for p in parts]),
                _base.reduce_parts([p[1] for p in parts]))

    # -- churn-apply helpers ------------------------------------------
    def min_link_value(self, padded, rows_mat, buf2d, out):
        self._run_rows(len(rows_mat), lambda r0, r1: _base.min_rows_chunk(
            padded, rows_mat, buf2d, out, r0, r1))
        return out

    def patch_rows(self, dst_mat, src_mat, rows, width):
        if len(rows) <= _base.BLOCK_ROWS:
            dst_mat[rows] = src_mat[rows, :width]
            return
        shares = _split(len(rows), self.n_threads)

        def work(share):
            lo, hi = shares[share]
            dst_mat[rows[lo:hi]] = src_mat[rows[lo:hi], :width]

        self._run(work, len(shares))

    def copy_rows(self, dst_mat, src_mat, lo, hi, width):
        spans = _split(hi - lo, self.n_threads)

        def work(share):
            s0, s1 = spans[share]
            dst_mat[lo + s0: lo + s1] = src_mat[lo + s0: lo + s1, :width]

        self._run(work, len(spans))
