"""Canonical chunk grid and the shared per-chunk numpy primitives.

Every tier is built from these chunk-granular pieces (the compiled
tier replicates their exact accumulation order in nopython loops), so
the bitwise contract lives here:

* chunk boundaries depend only on ``n`` and :data:`BLOCK_ROWS`;
* within a chunk, accumulation is strict row-major/hop order
  (``bincount`` element order for scatters, left-to-right column
  folds for per-row reductions);
* scatter partials are combined in ascending chunk order.

``BLOCK_ROWS`` is read dynamically by :func:`chunk_spans` so tests can
monkeypatch it small to exercise multi-chunk reductions on tiny
tables.
"""

from __future__ import annotations

import os

import numpy as np
import numpy.typing as npt

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]

#: Canonical reduction chunk size (rows).  Part of the bitwise
#: contract: results at n > BLOCK_ROWS depend on it (at the 1-ulp
#: level, well inside every cross-backend 1e-9 tolerance), so all
#: processes of one run must agree.  REPRO_KERNEL_BLOCK overrides.
BLOCK_ROWS = int(os.environ.get("REPRO_KERNEL_BLOCK", "16384"))


def chunk_spans(n: int) -> list[tuple[int, int]]:
    """The canonical chunk grid for ``n`` rows: ``[(r0, r1), ...]``.

    Depends only on ``n`` and :data:`BLOCK_ROWS` — never on the tier
    or thread count — so every tier folds partials identically.
    """
    block = BLOCK_ROWS
    return [(r0, min(n, r0 + block)) for r0 in range(0, n, block)]


# ----------------------------------------------------------------------
# per-chunk primitives (rows [r0, r1) of a width-uniform CSR index)
# ----------------------------------------------------------------------

def price_sums_chunk(padded: FloatArray, indices: IntArray,
                     buf: FloatArray, out: FloatArray,
                     r0: int, r1: int, width: int) -> None:
    """out[r0:r1] = left-to-right sum of padded[indices] per row.

    Column-wise adds over the gathered ``(rows, width)`` block: the
    fold starts from hop 0's value and adds hops in order, which is
    bit-identical to the per-row ``bincount`` accumulation it replaced
    (prices are non-negative, so the 0.0-seed difference on ``-0.0``
    cannot arise) while releasing the GIL and vectorizing cleanly.
    """
    lo = r0 * width
    seg = buf[lo: r1 * width]
    np.take(padded, indices[lo: r1 * width], out=seg)
    mat = seg.reshape(r1 - r0, width)
    dst = out[r0:r1]
    dst[:] = mat[:, 0]
    for hop in range(1, width):
        dst += mat[:, hop]


def max_chunk(padded: FloatArray, indices: IntArray, buf: FloatArray,
              out: FloatArray, r0: int, r1: int, width: int) -> None:
    """out[r0:r1] = per-row max of padded[indices] (pad slots -inf)."""
    lo = r0 * width
    seg = buf[lo: r1 * width]
    np.take(padded, indices[lo: r1 * width], out=seg)
    mat = seg.reshape(r1 - r0, width)
    dst = out[r0:r1]
    dst[:] = mat[:, 0]
    for hop in range(1, width):
        np.maximum(dst, mat[:, hop], out=dst)


def totals_chunk(values: FloatArray, indices: IntArray,
                 buf: FloatArray, r0: int, r1: int, width: int,
                 minlength: int) -> FloatArray:
    """Partial link scatter for one chunk (fresh ``minlength`` array).

    The per-flow value is expanded to its slots by a broadcast store
    (same element order as the old ``np.take(values, rows)`` gather,
    without needing the per-slot row-id array), then scattered by one
    ``bincount`` — element order is global row-major/hop order, so the
    partial is bit-identical to the historical single-bincount pass
    restricted to these rows.
    """
    lo = r0 * width
    seg = buf[lo: r1 * width]
    seg.reshape(r1 - r0, width)[:] = values[r0:r1, None]
    return np.asarray(np.bincount(indices[lo: r1 * width], weights=seg,
                                  minlength=minlength), dtype=np.float64)


def totals2_chunk(a: FloatArray, b: FloatArray, indices: IntArray,
                  buf: FloatArray, r0: int, r1: int, width: int,
                  minlength: int) -> tuple[FloatArray, FloatArray]:
    """Fused pair of :func:`totals_chunk` sharing one index slice."""
    lo = r0 * width
    idx = indices[lo: r1 * width]
    seg = buf[lo: r1 * width]
    mat = seg.reshape(r1 - r0, width)
    mat[:] = a[r0:r1, None]
    totals_a = np.asarray(np.bincount(idx, weights=seg,
                                      minlength=minlength), dtype=np.float64)
    mat[:] = b[r0:r1, None]
    totals_b = np.asarray(np.bincount(idx, weights=seg,
                                      minlength=minlength), dtype=np.float64)
    return totals_a, totals_b


def min_rows_chunk(padded: FloatArray, rows_mat: IntArray,
                   buf2d: FloatArray, out: FloatArray,
                   r0: int, r1: int) -> None:
    """out[r0:r1] = per-row min of padded[rows_mat] (pad slots +inf).

    The churn-apply bottleneck gather: ``rows_mat`` is a slice of the
    padded storage matrix, ``buf2d`` a same-shape gather scratch.
    """
    seg = buf2d[r0:r1]
    np.take(padded, rows_mat[r0:r1], out=seg)
    dst = out[r0:r1]
    dst[:] = seg[:, 0]
    for hop in range(1, seg.shape[1]):
        np.minimum(dst, seg[:, hop], out=dst)


def reduce_parts(parts: list[FloatArray]) -> FloatArray:
    """Fold per-chunk partials in ascending chunk order (canonical)."""
    total = parts[0]
    for part in parts[1:]:
        total += part
    return total
