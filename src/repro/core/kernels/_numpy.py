"""The always-available numpy kernel tier.

Runs the canonical chunked reduction sequentially on the calling
thread.  For ``n <= BLOCK_ROWS`` (one chunk) every kernel degenerates
to the single vectorized pass the pre-tier code ran, so small-table
results are bit-identical to history; at larger ``n`` the chunking
itself is the canonical order all tiers share.
"""

from __future__ import annotations

import numpy as np

from . import _base


class NumpyTier:
    """Sequential reference implementation of the kernel interface.

    All tiers implement exactly these methods; inputs follow the
    FlowTable CSR conventions (``indices`` flat with uniform ``width``
    slots per row, ``buf`` a caller-owned float64 scratch with one
    entry per slot, ``padded`` carrying the pad-link entry last).
    """

    name = "numpy"

    def describe(self):
        return "numpy"

    # -- per-row reductions -------------------------------------------
    def price_sums(self, padded, indices, n, width, buf):
        out = np.empty(n)
        for r0, r1 in _base.chunk_spans(n):
            _base.price_sums_chunk(padded, indices, buf, out,
                                   r0, r1, width)
        return out

    def max_link_value(self, padded, indices, n, width, buf, out):
        for r0, r1 in _base.chunk_spans(n):
            _base.max_chunk(padded, indices, buf, out, r0, r1, width)
        return out

    # -- link scatters ------------------------------------------------
    def link_totals(self, values, indices, n, width, minlength, buf):
        parts = [_base.totals_chunk(values, indices, buf, r0, r1,
                                    width, minlength)
                 for r0, r1 in _base.chunk_spans(n)]
        return _base.reduce_parts(parts)

    def link_totals2(self, a, b, indices, n, width, minlength, buf):
        parts = [_base.totals2_chunk(a, b, indices, buf, r0, r1,
                                     width, minlength)
                 for r0, r1 in _base.chunk_spans(n)]
        return (_base.reduce_parts([p[0] for p in parts]),
                _base.reduce_parts([p[1] for p in parts]))

    # -- churn-apply helpers ------------------------------------------
    def min_link_value(self, padded, rows_mat, buf2d, out):
        for r0, r1 in _base.chunk_spans(len(rows_mat)):
            _base.min_rows_chunk(padded, rows_mat, buf2d, out, r0, r1)
        return out

    def patch_rows(self, dst_mat, src_mat, rows, width):
        dst_mat[rows] = src_mat[rows, :width]

    def copy_rows(self, dst_mat, src_mat, lo, hi, width):
        dst_mat[lo:hi] = src_mat[lo:hi, :width]
