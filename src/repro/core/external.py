"""External (unscheduled) traffic support — the §7 "closed loop".

Datacenters exchange traffic with the outside world, which the
allocator does not schedule.  §7: "with NED, it is straightforward to
dynamically adjust link capacities or add dummy flows for external
traffic; a 'closed loop' version of the allocator would gather network
feedback observed by endpoints, and adjust its operation based on this
feedback."

:class:`ExternalTrafficManager` implements both halves:

* **open loop** — :meth:`set_external` pins a known external load on a
  link (e.g. a gateway's provisioned share);
* **closed loop** — :meth:`observe` feeds endpoint-measured external
  throughput samples, EWMA-smoothed, into the same adjustment.

Either way the allocator's *effective* capacity for a link becomes
``(base - external) * (1 - threshold)``, floored at a small epsilon so
scheduled flows are squeezed rather than zeroed, and the optimizer's
capacity-derived caches (per-flow caps, NED idle prices) are
refreshed.
"""

from __future__ import annotations

import numpy as np

from .allocator import FlowtuneAllocator

__all__ = ["ExternalTrafficManager"]

#: Never let effective capacity reach zero — scheduled flows must keep
#: draining (§7's gateways would otherwise deadlock).
MIN_CAPACITY_FRACTION = 0.01


class ExternalTrafficManager:
    """Adjusts a live allocator's link capacities for external load."""

    def __init__(self, allocator: FlowtuneAllocator, smoothing: float = 0.3):
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.allocator = allocator
        self.smoothing = float(smoothing)
        # Base = full capacities x headroom (what the allocator boots
        # with before any external traffic).
        self._base = allocator.table.links.capacity.copy()
        self.external = np.zeros_like(self._base)

    # ------------------------------------------------------------------
    # open loop
    # ------------------------------------------------------------------
    def set_external(self, link, gbps):
        """Declare ``gbps`` of unscheduled traffic on ``link``."""
        if gbps < 0:
            raise ValueError("external traffic cannot be negative")
        self.external[link] = float(gbps)
        self._apply()

    def clear(self):
        """Remove all external adjustments."""
        self.external[:] = 0.0
        self._apply()

    # ------------------------------------------------------------------
    # closed loop
    # ------------------------------------------------------------------
    def observe(self, link, measured_gbps):
        """Fold an endpoint's external-throughput measurement in.

        Repeated observations EWMA toward the measured level, so
        transient bursts do not whipsaw the scheduled allocation —
        the "what feedback to gather and how to react" compromise §7
        discusses.
        """
        if measured_gbps < 0:
            raise ValueError("measured traffic cannot be negative")
        current = self.external[link]
        self.external[link] = ((1.0 - self.smoothing) * current
                               + self.smoothing * float(measured_gbps))
        self._apply()

    # ------------------------------------------------------------------
    def effective_capacity(self):
        floor = self._base * MIN_CAPACITY_FRACTION
        return np.maximum(self._base - self.external, floor)

    def _apply(self):
        capacity = self.allocator.table.links.capacity
        capacity[:] = self.effective_capacity()
        # Invalidate capacity-derived optimizer state (this also bumps
        # the table version and marks the bottleneck column stale).
        self.allocator.optimizer.refresh_capacity()
