"""Flowtune's core contribution: NUM optimizers, normalization, allocator.

Public API re-exports; see individual modules for the algorithms:

* :mod:`repro.core.network` — link/flow state (:class:`LinkSet`,
  :class:`FlowTable`).
* :mod:`repro.core.utility` — NUM objectives.
* :mod:`repro.core.ned` — Newton-Exact-Diagonal (the paper's §3).
* :mod:`repro.core.gradient`, :mod:`repro.core.newton_like`,
  :mod:`repro.core.fgm` — the compared price-update baselines.
* :mod:`repro.core.realtime` — float32 NED-RT / Gradient-RT (fig. 12).
* :mod:`repro.core.normalization` — U-NORM / F-NORM (§4).
* :mod:`repro.core.allocator` — the centralized allocator (fig. 1).
"""

from .allocator import (AllocationResult, ChurnQueue, FlowtuneAllocator,
                        RateUpdate, threshold_update_indices,
                        threshold_update_mask)
from .external import ExternalTrafficManager
from .fgm import FgmOptimizer
from .gradient import GradientOptimizer
from .ned import NedOptimizer
from .network import FlowTable, LinkSet
from .newton_like import NewtonLikeOptimizer
from .normalization import (FNormalizer, Normalizer, NullNormalizer,
                            UNormalizer, f_norm, link_ratios, u_norm)
from .optimizer import PriceOptimizer, solve_to_optimal
from .realtime import GradientRtOptimizer, NedRtOptimizer, fast_reciprocal
from .utility import AlphaFairUtility, LogUtility, Utility

__all__ = [
    "AllocationResult", "ChurnQueue", "FlowtuneAllocator", "RateUpdate",
    "threshold_update_indices", "threshold_update_mask",
    "ExternalTrafficManager",
    "FgmOptimizer", "GradientOptimizer", "NedOptimizer",
    "NewtonLikeOptimizer", "NedRtOptimizer", "GradientRtOptimizer",
    "FlowTable", "LinkSet", "PriceOptimizer", "solve_to_optimal",
    "FNormalizer", "Normalizer", "NullNormalizer", "UNormalizer",
    "f_norm", "link_ratios", "u_norm", "fast_reciprocal",
    "AlphaFairUtility", "LogUtility", "Utility",
]
