"""Flow utility functions for network utility maximization (NUM).

The NUM objective is ``max sum_s U_s(x_s)`` subject to link capacity
constraints.  NED (paper, Algorithm 1) requires each utility to be
strictly concave, differentiable and monotonically increasing, and
needs three callable pieces per flow:

* ``rate(price_sum, weight)`` — the profit-maximizing rate given the
  sum of link prices along the flow's path, i.e. ``(U')^{-1}`` applied
  to the price sum (Equation 3 in the paper).
* ``rate_derivative(price_sum, weight)`` — ``d rate / d price_sum``,
  the per-flow contribution to the exact Hessian diagonal ``H_ll``
  (Equation 4).
* ``value(x, weight)`` — the utility itself, used for fairness scores
  and for verifying optimality.

Weights are passed per call (as scalars or per-flow vectors) rather
than stored on the utility object because the set of flows churns with
every flowlet arrival and departure; the allocator owns the weight
vector and the utility stays stateless.

All implementations are vectorized: they accept and return numpy
arrays so the allocator can update tens of thousands of flows in a
single call.
"""

from __future__ import annotations

from typing import Any, Union

import numpy as np
import numpy.typing as npt

__all__ = ["Utility", "LogUtility", "AlphaFairUtility", "MIN_PRICE_SUM"]

#: Scalar-or-vector operand: every method broadcasts over either.
ArrayOrFloat = Union[float, npt.NDArray[np.float64]]
FloatArray = npt.NDArray[np.float64]

# Prices can momentarily be zero on uncongested links; clamping the
# per-flow price sum bounds rates instead of letting them diverge.
MIN_PRICE_SUM = 1e-9


def _f64(values: Any) -> FloatArray:
    return np.asarray(values, dtype=np.float64)


class Utility:
    """Base class for NUM utility functions.

    Subclasses must be strictly concave, differentiable and monotone
    increasing (the paper's admissibility conditions for NED, §3).
    """

    def value(self, x: ArrayOrFloat, weight: ArrayOrFloat = 1.0,
              ) -> FloatArray:
        """Return ``U(x)`` elementwise."""
        raise NotImplementedError

    def rate(self, price_sum: ArrayOrFloat, weight: ArrayOrFloat = 1.0,
             ) -> FloatArray:
        """Return ``(U')^{-1}(price_sum)`` elementwise (Equation 3)."""
        raise NotImplementedError

    def rate_derivative(self, price_sum: ArrayOrFloat,
                        weight: ArrayOrFloat = 1.0) -> FloatArray:
        """Return ``d/dp (U')^{-1}(p)`` at ``p = price_sum``.

        Negative for any strictly concave utility.
        """
        raise NotImplementedError

    def inverse_rate(self, x: ArrayOrFloat, weight: ArrayOrFloat = 1.0,
                     ) -> FloatArray:
        """Return ``U'(x)``, the price sum at which ``x`` is optimal.

        Used to warm-start prices and to verify KKT conditions in
        tests.
        """
        raise NotImplementedError


class LogUtility(Utility):
    """Weighted proportional fairness: ``U(x) = w * log(x)``.

    This is the paper's primary objective.  With ``rho`` the sum of
    link prices along the flow, the rate update is ``x = w / rho`` and
    its derivative is ``-w / rho**2``.
    """

    def value(self, x: ArrayOrFloat, weight: ArrayOrFloat = 1.0,
              ) -> FloatArray:
        clamped = np.maximum(_f64(x), MIN_PRICE_SUM)
        return _f64(weight * np.log(clamped))

    def rate(self, price_sum: ArrayOrFloat, weight: ArrayOrFloat = 1.0,
             ) -> FloatArray:
        rho = np.maximum(_f64(price_sum), MIN_PRICE_SUM)
        return _f64(weight / rho)

    def rate_derivative(self, price_sum: ArrayOrFloat,
                        weight: ArrayOrFloat = 1.0) -> FloatArray:
        rho = np.maximum(_f64(price_sum), MIN_PRICE_SUM)
        return _f64(-weight / (rho * rho))

    def inverse_rate(self, x: ArrayOrFloat, weight: ArrayOrFloat = 1.0,
                     ) -> FloatArray:
        clamped = np.maximum(_f64(x), MIN_PRICE_SUM)
        return _f64(weight / clamped)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "LogUtility()"


class AlphaFairUtility(Utility):
    """Alpha-fair utilities ``U(x) = w * x^(1-alpha) / (1-alpha)``.

    ``alpha = 1`` reduces to :class:`LogUtility` (proportional
    fairness); ``alpha -> inf`` approaches max-min fairness; ``alpha =
    2`` approximates minimum potential delay.  The paper notes NED
    supports any admissible utility — this class exercises that claim.
    """

    def __init__(self, alpha: float) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive for strict concavity")
        if abs(alpha - 1.0) < 1e-12:
            raise ValueError("alpha == 1 is LogUtility; use that class")
        self.alpha = float(alpha)

    def value(self, x: ArrayOrFloat, weight: ArrayOrFloat = 1.0,
              ) -> FloatArray:
        clamped = np.maximum(_f64(x), MIN_PRICE_SUM)
        return _f64(weight * clamped ** (1.0 - self.alpha)
                    / (1.0 - self.alpha))

    def rate(self, price_sum: ArrayOrFloat, weight: ArrayOrFloat = 1.0,
             ) -> FloatArray:
        # U'(x) = w * x^{-alpha}  =>  x = (w / rho)^{1/alpha}
        rho = np.maximum(_f64(price_sum), MIN_PRICE_SUM)
        return _f64((weight / rho) ** (1.0 / self.alpha))

    def rate_derivative(self, price_sum: ArrayOrFloat,
                        weight: ArrayOrFloat = 1.0) -> FloatArray:
        rho = np.maximum(_f64(price_sum), MIN_PRICE_SUM)
        return _f64(
            -(1.0 / self.alpha)
            * (weight ** (1.0 / self.alpha))
            * rho ** (-1.0 / self.alpha - 1.0)
        )

    def inverse_rate(self, x: ArrayOrFloat, weight: ArrayOrFloat = 1.0,
                     ) -> FloatArray:
        clamped = np.maximum(_f64(x), MIN_PRICE_SUM)
        return _f64(weight * clamped ** (-self.alpha))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AlphaFairUtility(alpha={self.alpha})"
