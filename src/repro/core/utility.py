"""Flow utility functions for network utility maximization (NUM).

The NUM objective is ``max sum_s U_s(x_s)`` subject to link capacity
constraints.  NED (paper, Algorithm 1) requires each utility to be
strictly concave, differentiable and monotonically increasing, and
needs three callable pieces per flow:

* ``rate(price_sum, weight)`` — the profit-maximizing rate given the
  sum of link prices along the flow's path, i.e. ``(U')^{-1}`` applied
  to the price sum (Equation 3 in the paper).
* ``rate_derivative(price_sum, weight)`` — ``d rate / d price_sum``,
  the per-flow contribution to the exact Hessian diagonal ``H_ll``
  (Equation 4).
* ``value(x, weight)`` — the utility itself, used for fairness scores
  and for verifying optimality.

Weights are passed per call (as scalars or per-flow vectors) rather
than stored on the utility object because the set of flows churns with
every flowlet arrival and departure; the allocator owns the weight
vector and the utility stays stateless.

All implementations are vectorized: they accept and return numpy
arrays so the allocator can update tens of thousands of flows in a
single call.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Utility", "LogUtility", "AlphaFairUtility", "MIN_PRICE_SUM"]

# Prices can momentarily be zero on uncongested links; clamping the
# per-flow price sum bounds rates instead of letting them diverge.
MIN_PRICE_SUM = 1e-9


class Utility:
    """Base class for NUM utility functions.

    Subclasses must be strictly concave, differentiable and monotone
    increasing (the paper's admissibility conditions for NED, §3).
    """

    def value(self, x, weight=1.0):
        """Return ``U(x)`` elementwise."""
        raise NotImplementedError

    def rate(self, price_sum, weight=1.0):
        """Return ``(U')^{-1}(price_sum)`` elementwise (Equation 3)."""
        raise NotImplementedError

    def rate_derivative(self, price_sum, weight=1.0):
        """Return ``d/dp (U')^{-1}(p)`` at ``p = price_sum``.

        Negative for any strictly concave utility.
        """
        raise NotImplementedError

    def inverse_rate(self, x, weight=1.0):
        """Return ``U'(x)``, the price sum at which ``x`` is optimal.

        Used to warm-start prices and to verify KKT conditions in
        tests.
        """
        raise NotImplementedError


class LogUtility(Utility):
    """Weighted proportional fairness: ``U(x) = w * log(x)``.

    This is the paper's primary objective.  With ``rho`` the sum of
    link prices along the flow, the rate update is ``x = w / rho`` and
    its derivative is ``-w / rho**2``.
    """

    def value(self, x, weight=1.0):
        x = np.asarray(x, dtype=np.float64)
        return weight * np.log(np.maximum(x, MIN_PRICE_SUM))

    def rate(self, price_sum, weight=1.0):
        rho = np.maximum(np.asarray(price_sum, dtype=np.float64), MIN_PRICE_SUM)
        return weight / rho

    def rate_derivative(self, price_sum, weight=1.0):
        rho = np.maximum(np.asarray(price_sum, dtype=np.float64), MIN_PRICE_SUM)
        return -weight / (rho * rho)

    def inverse_rate(self, x, weight=1.0):
        x = np.maximum(np.asarray(x, dtype=np.float64), MIN_PRICE_SUM)
        return weight / x

    def __repr__(self):  # pragma: no cover - debugging aid
        return "LogUtility()"


class AlphaFairUtility(Utility):
    """Alpha-fair utilities ``U(x) = w * x^(1-alpha) / (1-alpha)``.

    ``alpha = 1`` reduces to :class:`LogUtility` (proportional
    fairness); ``alpha -> inf`` approaches max-min fairness; ``alpha =
    2`` approximates minimum potential delay.  The paper notes NED
    supports any admissible utility — this class exercises that claim.
    """

    def __init__(self, alpha):
        if alpha <= 0:
            raise ValueError("alpha must be positive for strict concavity")
        if abs(alpha - 1.0) < 1e-12:
            raise ValueError("alpha == 1 is LogUtility; use that class")
        self.alpha = float(alpha)

    def value(self, x, weight=1.0):
        x = np.maximum(np.asarray(x, dtype=np.float64), MIN_PRICE_SUM)
        return weight * x ** (1.0 - self.alpha) / (1.0 - self.alpha)

    def rate(self, price_sum, weight=1.0):
        # U'(x) = w * x^{-alpha}  =>  x = (w / rho)^{1/alpha}
        rho = np.maximum(np.asarray(price_sum, dtype=np.float64), MIN_PRICE_SUM)
        return (weight / rho) ** (1.0 / self.alpha)

    def rate_derivative(self, price_sum, weight=1.0):
        rho = np.maximum(np.asarray(price_sum, dtype=np.float64), MIN_PRICE_SUM)
        return (
            -(1.0 / self.alpha)
            * (weight ** (1.0 / self.alpha))
            * rho ** (-1.0 / self.alpha - 1.0)
        )

    def inverse_rate(self, x, weight=1.0):
        x = np.maximum(np.asarray(x, dtype=np.float64), MIN_PRICE_SUM)
        return weight * x ** (-self.alpha)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"AlphaFairUtility(alpha={self.alpha})"
