"""Base machinery shared by all NUM price-update algorithms.

Every algorithm in §3 of the paper (NED, Gradient projection, the
Newton-like method, FGM) follows the same two-step iteration:

1. *Rate update* (Equation 3): each flow picks the profit-maximizing
   rate given the current prices along its route.
2. *Price update* (Equation 4): each link adjusts its price based on
   its over-allocation ``G_l = load_l - c_l``; the algorithms differ
   only in how aggressively they scale that adjustment.

:class:`PriceOptimizer` implements step 1 and the bookkeeping; concrete
algorithms supply :meth:`_update_prices`.  Prices persist across
flowlet churn (the paper's warm start: prices are initialized to 1
exactly once, when the allocator boots).
"""

from __future__ import annotations

import numpy as np

from .network import FlowTable
from .utility import LogUtility, Utility

__all__ = ["PriceOptimizer", "solve_to_optimal"]


class PriceOptimizer:
    """Shared state and rate-update step for dual (price) methods.

    Parameters
    ----------
    table:
        The live :class:`~repro.core.network.FlowTable`; the optimizer
        reads it afresh every iteration, so flowlet churn between
        iterations is picked up automatically.
    utility:
        A :class:`~repro.core.utility.Utility`; defaults to
        proportional fairness (``log x``), the paper's objective.
    initial_price:
        Boot-time price for every link (the paper uses 1).
    """

    #: human-readable algorithm name, overridden by subclasses
    name = "base"

    def __init__(self, table: FlowTable, utility: Utility | None = None,
                 initial_price: float = 1.0, cap_rates: bool = True):
        self.table = table
        self.utility = utility if utility is not None else LogUtility()
        self.prices = np.full(table.links.n_links, float(initial_price),
                              dtype=np.float64)
        self.iterations = 0
        #: Clamp Equation-3 rates at each flow's bottleneck capacity
        #: (physically: the sender NIC line rate).  The capped rate
        #: function is ``x(rho) = min(cap, (U')^{-1}(rho))``, realized
        #: as ``(U')^{-1}(max(rho, U'(cap)))`` so that both the rate
        #: and its derivative are evaluated at the same (kinked)
        #: operating point — without this, near-zero prices make the
        #: Hessian astronomically steep while G stays bounded, and
        #: Newton steps stall.
        self.cap_rates = bool(cap_rates)
        self._cap_cache_version = -1
        self._cap_cache = None
        self._price_at_cap_cache = None
        # Within one (rate + price) iteration the prices don't change
        # between the Equation-3 rate update and the Equation-4 price
        # update, so the per-flow price sums are computed once and
        # shared (NED's Hessian diagonal needs the very same rho).
        self._rho_memo = None
        self._rho_memo_active = False
        # The last (table version, rates vector, per-link load) this
        # optimizer scattered — lets the allocator's normalizer reuse
        # the price update's link load instead of re-scattering the
        # same rates (see link_load_for).
        self._load_memo = None

    def _rate_caps(self):
        if self._cap_cache_version != self.table.version:
            self._cap_cache = self.table.bottleneck_capacity()
            self._price_at_cap_cache = self.utility.inverse_rate(
                self._cap_cache, self.table.weights)
            self._cap_cache_version = self.table.version
        return self._cap_cache

    def refresh_capacity(self):
        """Re-read link capacities after an external change (§7).

        Subclasses with capacity-derived state (NED's idle prices)
        extend this; the base invalidates the per-flow cap cache and
        the table's incremental bottleneck-capacity column.
        """
        self._cap_cache_version = -1
        self.table.refresh_capacity()

    def effective_price_sums(self, prices=None):
        """Per-flow price sums, clamped at each flow's cap price.

        This is the operating point at which both Equation 3 rates and
        the Equation 4 Hessian diagonal are evaluated.  Inside
        :meth:`iterate` the result for the current prices is memoized,
        so the rate and price updates share one gather.
        """
        use_memo = prices is None and self._rho_memo_active
        if use_memo and self._rho_memo is not None:
            return self._rho_memo
        if prices is None:
            prices = self.prices
        rho = self.table.price_sums(prices)
        if self.cap_rates and len(rho):
            self._rate_caps()  # refresh cache
            rho = np.maximum(rho, self._price_at_cap_cache)
        if use_memo:
            self._rho_memo = rho
        return rho

    # ------------------------------------------------------------------
    # Equation 3: rate update
    # ------------------------------------------------------------------
    def rate_update(self, prices=None):
        """Return per-flow rates implied by ``prices`` (default: current)."""
        rho = self.effective_price_sums(prices)
        return self.utility.rate(rho, self.table.weights)

    def over_allocation(self, rates):
        """Per-link ``G_l = (sum of rates through l) - c_l``."""
        load = self.table.link_totals(rates)
        self._load_memo = (self.table.version, rates, load)
        return load - self.table.links.capacity

    def link_load_for(self, rates):
        """The per-link load last scattered for exactly this ``rates``
        vector at the current table version, or ``None``.

        Identity-keyed: ``rates`` must be the very object the price
        update scattered (mutating it in place afterwards would make
        the memo silently stale, so don't).  The allocator uses this
        to hand F-NORM the load the optimizer just computed — the
        third per-iterate scatter of identical values, dropped.
        """
        memo = self._load_memo
        if (memo is not None and memo[0] == self.table.version
                and memo[1] is rates):
            return memo[2]
        return None

    # ------------------------------------------------------------------
    # iteration driver
    # ------------------------------------------------------------------
    def iterate(self, n: int = 1):
        """Run ``n`` full (rate + price) iterations; return final rates.

        With no active flows this only decays prices toward zero —
        there is nothing to allocate.
        """
        rates = np.zeros(self.table.n_flows)
        for _ in range(n):
            self._rho_memo = None
            self._rho_memo_active = True
            try:
                rates = self.rate_update()
                self._update_prices(rates)
            finally:
                self._rho_memo_active = False
                self._rho_memo = None
            self.iterations += 1
        return rates

    def _update_prices(self, rates):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def total_over_allocation(self, rates=None):
        """Sum over links of positive over-allocation (fig. 12 metric)."""
        if rates is None:
            rates = self.rate_update()
        excess = self.over_allocation(rates)
        return float(np.sum(np.maximum(excess, 0.0)))

    def objective(self, rates=None):
        """Network utility ``sum_s U_s(x_s)`` at the given rates."""
        if rates is None:
            rates = self.rate_update()
        if len(rates) == 0:
            return 0.0
        return float(np.sum(self.utility.value(rates, self.table.weights)))

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(n_flows={self.table.n_flows}, "
                f"iterations={self.iterations})")


def solve_to_optimal(table: FlowTable, utility: Utility | None = None,
                     tol: float = 1e-9, max_iterations: int = 50_000,
                     gamma: float = 1.0):
    """Solve the NUM problem to (near-)optimality with NED.

    Runs a fresh NED instance until the relative over-allocation of
    every link falls below ``tol`` and prices stop moving.  Used as the
    "optimal" reference in fig. 13 and in tests; returns ``(rates,
    prices)``.
    """
    from .ned import NedOptimizer  # local import avoids a cycle

    opt = NedOptimizer(table, utility=utility, gamma=gamma)
    capacity = table.links.capacity
    # Links with no flows are parked at the idle price by design and
    # are exempt from the complementary-slackness check.
    carried = table.link_totals(np.ones(table.n_flows)) > 0
    rates = opt.iterate()
    for iteration in range(max_iterations):
        previous = opt.prices.copy()
        rates = opt.iterate()
        over = opt.over_allocation(rates)
        # KKT: no link over capacity, and complementary slackness
        # (a priced, carried link must be exactly at capacity).
        violation = np.max(np.maximum(over, 0.0) / capacity)
        slack_terms = opt.prices * np.abs(over) / capacity
        slackness = np.max(slack_terms[carried]) if carried.any() else 0.0
        moved = np.max(np.abs(opt.prices - previous) /
                       np.maximum(previous, 1e-12))
        if violation < tol and slackness < tol and moved < tol:
            break
        # Diagonal-Newton steps can limit-cycle on tightly coupled
        # topologies at large gamma; damp the step when progress stalls
        # (convergence is guaranteed for small enough steps).
        if iteration and iteration % 500 == 0:
            opt.gamma = max(opt.gamma * 0.5, 0.01)
    return rates, opt.prices
