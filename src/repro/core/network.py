"""Link and flow state shared by all NUM optimizers.

The allocator's hot loop touches every flow and every link once per
iteration, so the representation matters.  Datacenter routes are short
(2 links within a rack, 4 links across the fabric in a two-tier Clos),
which lets us store all routes in a single padded integer matrix:

* ``routes[f, h]`` is the link index of hop ``h`` of flow ``f``,
* unused hops point at a *virtual pad link* (index ``n_links``) whose
  price is pinned to zero and whose capacity is infinite.

The padded matrix is the *storage and wire* format — simple, fixed
stride, shm-/delta-codec-friendly — but it is not what the NUM kernels
iterate over.  Typical Clos routes are at most half ``max_route_len``
hops, so a padded gather spends roughly half its work multiplying
pads.  The kernels therefore run on a derived **CSR route index**
(``indptr`` + flat ``indices`` + the matching flow-row id per slot)
whose uniform slot width is the *running-max hop count actually
present* rather than the storage's worst case, cached against
:attr:`version` and maintained incrementally from an internal
dirty-row log under churn (full rebuild only on storage regrowth or
when a wider route arrives).  One optimizer iteration is then a
handful of vectorized operations over ``n x max-hops`` elements
(fancy-indexed gathers, ``bincount`` segment scatters, column folds
for per-flow sums/maxima), with no Python-level per-flow work.  The
kernels themselves are dispatched through :mod:`repro.core.kernels`,
which selects a numpy / threaded / compiled implementation tier at
first use (``REPRO_KERNEL_TIER``) — all tiers share one canonical
chunked reduction order, so the tier choice never changes a bit of
output.  Flowlet churn — the common case in Flowtune — is O(route
length) per event: adding appends a row; removal swaps the last row
into the hole so the arrays stay dense.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from . import kernels

__all__ = ["LinkSet", "FlowTable", "FlowColumn"]

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
#: Storage hook signature: ``alloc(tag, shape, dtype) -> array``.
AllocatorFn = Callable[[str, tuple[int, ...], Any], npt.NDArray[Any]]

_INITIAL_CAPACITY = 64


def _numpy_allocator(tag: str, shape: tuple[int, ...],
                     dtype: Any) -> npt.NDArray[Any]:
    """Default storage: ordinary process-local numpy arrays."""
    return np.empty(shape, dtype=dtype)


class FlowColumn:
    """A per-flow scalar array kept positionally aligned with a
    :class:`FlowTable` under swap-remove churn.

    Obtained from :meth:`FlowTable.add_column`.  The table writes
    ``default`` into a flow's slot when it is added and swap-moves the
    last slot into removal holes, so ``data`` always lines up with
    ``FlowTable.flow_ids()`` — consumers (e.g. the allocator's
    ``last_sent`` rates) never do per-flow dict bookkeeping.
    """

    __slots__ = ("_table", "default", "_data")

    def __init__(self, table, default, dtype):
        self._table = table
        self.default = default
        self._data = table._alloc(f"column{len(table._columns)}",
                                  (len(table._weights),), dtype)
        self._data[:] = default

    @property
    def data(self):
        """Writable view aligned with the table's positional order."""
        return self._data[: self._table._n]


class LinkSet:
    """The set of directed links being allocated, with capacities.

    Capacities are in user-chosen rate units (the experiments use
    Gbit/s so that prices and Hessians stay well-scaled in float64 and
    the float32 real-time variants remain usable).
    """

    def __init__(self, capacities: npt.ArrayLike,
                 names: Sequence[str] | None = None) -> None:
        self.capacity = np.asarray(capacities, dtype=np.float64).copy()
        if self.capacity.ndim != 1:
            raise ValueError("capacities must be a 1-D array")
        if np.any(self.capacity <= 0):
            raise ValueError("link capacities must be strictly positive")
        if names is not None and len(names) != len(self.capacity):
            raise ValueError("names must match the number of links")
        self.names = list(names) if names is not None else None

    @property
    def n_links(self) -> int:
        return len(self.capacity)

    def name_of(self, link: int) -> str:
        if self.names is None:
            return f"link{link}"
        return self.names[link]

    def __len__(self):
        return self.n_links

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"LinkSet(n_links={self.n_links})"


class FlowTable:
    """Dense, padded table of active flows and their routes.

    Rows are kept contiguous under churn via swap-remove, so positional
    indices are unstable; stable identity is the user-supplied
    ``flow_id``.  All query methods return arrays aligned with the
    current positional order, and :meth:`flow_ids` exposes that order.
    """

    def __init__(self, links: LinkSet, max_route_len: int = 8,
                 allocator: AllocatorFn | None = None) -> None:
        if max_route_len < 1:
            raise ValueError("max_route_len must be at least 1")
        self.links = links
        self.max_route_len = int(max_route_len)
        self.pad_link = links.n_links  # virtual link used for padding
        # Storage hook: routes, weights and every FlowColumn go through
        # ``allocator(tag, shape, dtype)`` so a caller can back them
        # with ``multiprocessing.shared_memory`` (the process-parallel
        # NED backend) instead of private heap arrays.  Re-allocating
        # an existing tag (on grow) supersedes the old array.
        self._alloc = allocator if allocator is not None else _numpy_allocator
        self._columns = []
        self._routes = self._alloc(
            "routes", (_INITIAL_CAPACITY, self.max_route_len), np.int64)
        self._routes[:] = self.pad_link
        self._weights = self._alloc("weights", (_INITIAL_CAPACITY,),
                                    np.float64)
        self._weights[:] = 1.0
        # Positionally-aligned flow ids, maintained under swap-remove
        # and batched churn exactly like every other column.  An object
        # ndarray (never routed through the allocator hook — ids are
        # Python references, meaningless in shared memory) so
        # :meth:`flow_id_array` can expose an O(1) view instead of
        # rebuilding a list per allocator iterate.
        self._ids = np.empty(_INITIAL_CAPACITY, dtype=object)
        self._index_of = {}
        self._n = 0
        #: incremented on every add/remove; lets optimizers cache
        #: per-flow derived arrays between churn events.
        self.version = 0
        # Opt-in dirty-row log (see start_change_log): the set of
        # positional rows whose routes/weights/bottleneck changed since
        # the last consume_changes().  ``None`` (the default) records
        # nothing, so the common case pays one attribute check per
        # churn call.
        self._change_log = None
        self._change_all = False
        # Derived CSR route index (see _route_index): private-heap
        # state rebuilt incrementally from _csr_dirty when ``version``
        # moves, never routed through the allocator hook — the padded
        # matrix stays the storage/wire format.  Slots are uniform at
        # the running-max hop count (variable-width slots shift on
        # every hop-count change a swap-remove drags in, degenerating
        # to whole-suffix rebuilds under mixed-length churn; uniform
        # slots make every patch shift-free while still dropping the
        # max_route_len pad tail the storage carries).  _kernel_buf is
        # the shared float64 gather scratch (one entry per CSR slot)
        # and _max_out the reusable max_link_value reduction output,
        # so the hot loop allocates only its per-flow bincount outputs.
        self._col_offsets = np.arange(self.max_route_len)
        self._csr_width = 0      # uniform slot width (0 = never built)
        self._csr_indptr = np.zeros(1, dtype=np.int64)
        self._csr_indices = np.empty(0, dtype=np.int64)
        self._csr_mat = self._csr_indices.reshape(0, 1)
        self._kernel_buf = np.empty(0)
        self._max_out = np.empty(_INITIAL_CAPACITY)
        # Batched-start scratch (apply_churn): the left-pack mask, the
        # bottleneck gather block and the default-weights vector are
        # reused across batches (grown geometrically) instead of
        # reallocated per call, and the pad()-extended capacity vector
        # is cached until refresh_capacity invalidates it.
        self._start_mask = np.empty((0, self.max_route_len), dtype=bool)
        self._start_gather = np.empty((0, self.max_route_len))
        self._start_weights = np.empty(0)
        self._padded_capacity = None
        self._csr_nrows = 0
        self._csr_nnz = 0
        self._max_hops_seen = 0  # running max; only rebuilds can lower
        self._csr_version = -1   # never synced; forces a first build
        self._csr_full = True    # full rebuild required (also on grow)
        self._csr_dirty = set()  # rows whose routes changed since sync
        # Per-flow bottleneck capacity, maintained incrementally:
        # O(route length) on add, O(1) swap on remove, full recompute
        # deferred until the first read after link capacities change
        # (refresh_capacity sets the dirty flag).
        self._capacity_dirty = False
        self._bottleneck = self.add_column(default=np.inf)

    def add_column(self, default: float = 0.0,
                   dtype: npt.DTypeLike = np.float64) -> FlowColumn:
        """Register a per-flow side array the table keeps aligned.

        Existing flows are filled with ``default``; newly added flows
        start at ``default``; swap-remove moves entries with the flow
        they belong to.  Returns the :class:`FlowColumn`.
        """
        column = FlowColumn(self, default, dtype)
        self._columns.append(column)
        return column

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def _check_new_flow(self, flow_id, route):
        """Scalar admission checks shared by :meth:`add_flow` and the
        batched :meth:`apply_churn`; returns the route as an array.
        Link-index range and weight positivity are checked by the
        caller (per-flow here, vectorized over the batch there).
        """
        if flow_id in self._index_of:
            raise KeyError(f"flow {flow_id!r} is already active")
        route = np.asarray(route, dtype=np.int64)
        if route.ndim != 1 or len(route) == 0:
            raise ValueError("route must be a non-empty 1-D sequence of links")
        if len(route) > self.max_route_len:
            raise ValueError(
                f"route has {len(route)} hops; table supports {self.max_route_len}"
            )
        return route

    def add_flow(self, flow_id: Hashable, route: npt.ArrayLike,
                 weight: float = 1.0) -> int:
        """Register a flow; returns its (unstable) positional index.

        ``route`` is a sequence of link indices.  Every flow must
        traverse at least one link (the paper's feasibility condition
        ``L(s) != {}``).
        """
        route = self._check_new_flow(flow_id, route)
        if np.any(route < 0) or np.any(route >= self.links.n_links):
            raise ValueError("route contains an unknown link index")
        if not weight > 0:
            raise ValueError("flow weight must be positive")
        if self._n == len(self._weights):
            self._grow()
        idx = self._n
        self._routes[idx, :] = self.pad_link
        self._routes[idx, : len(route)] = route
        self._weights[idx] = weight
        self._ids[idx] = flow_id
        self._index_of[flow_id] = idx
        for column in self._columns:
            column._data[idx] = column.default
        self._bottleneck._data[idx] = self._capacity_padded()[route].min()
        if self._change_log is not None:
            self._change_log.add(idx)
        self._csr_dirty.add(idx)
        if len(route) > self._max_hops_seen:
            self._max_hops_seen = len(route)
        self._n += 1
        self.version += 1
        return idx

    def remove_flow(self, flow_id: Hashable) -> int:
        """Remove a flow by id (swap-remove keeps rows dense)."""
        idx = self._index_of.pop(flow_id)
        last = self._n - 1
        if idx != last:
            self._routes[idx] = self._routes[last]
            self._weights[idx] = self._weights[last]
            moved_id = self._ids[last]
            self._ids[idx] = moved_id
            self._index_of[moved_id] = idx
            for column in self._columns:
                column._data[idx] = column._data[last]
            if self._change_log is not None:
                self._change_log.add(idx)
            self._csr_dirty.add(idx)
        self._ids[last] = None
        self._routes[last, :] = self.pad_link
        self._n -= 1
        self.version += 1
        return idx

    def remove_flows(self, flow_ids: Iterable[Hashable]) -> None:
        """Batched removal: the vectorized mirror of the batched add.

        Validates the whole batch up front (an unknown or duplicated id
        raises ``KeyError`` with *no* flow removed), then *simulates*
        the per-id swap-remove chain with O(batch) dict bookkeeping —
        no array writes — and applies the net movement as one
        fancy-indexed gather per array.  The resulting positional
        layout is exactly what sequential :meth:`remove_flow` calls in
        the same order would produce (a property the drivers rely on
        for cross-revision rate comparisons), every registered
        :class:`FlowColumn` entry moves with its flow, and the whole
        batch costs one version bump.
        """
        ids = list(flow_ids)
        if not ids:
            return
        index_of = self._index_of
        seen = set()
        for flow_id in ids:
            if flow_id not in index_of or flow_id in seen:
                raise KeyError(f"flow {flow_id!r} is not active")
            seen.add(flow_id)
        # Simulate the swap chain: ``content`` maps slot -> original
        # row now occupying it (only for moved rows), ``slot_of`` maps
        # a moved original row -> its current slot.
        content = {}
        slot_of = {}
        n = self._n
        for flow_id in ids:
            row = index_of[flow_id]
            slot = slot_of.pop(row, row)
            last = n - 1
            last_row = content.pop(last, last)
            if slot != last:
                content[slot] = last_row
                slot_of[last_row] = slot
            n -= 1
        new_n = n
        if content:
            holes = np.fromiter(content.keys(), dtype=np.int64,
                                count=len(content))
            movers = np.fromiter(content.values(), dtype=np.int64,
                                 count=len(content))
            # Sources are original tail rows (>= new_n), destinations
            # are final slots (< new_n): disjoint, so one gather per
            # array is safe.
            self._routes[holes] = self._routes[movers]
            self._weights[holes] = self._weights[movers]
            for column in self._columns:
                column._data[holes] = column._data[movers]
            hole_list = holes.tolist()
            if self._change_log is not None:
                self._change_log.update(hole_list)
            self._csr_dirty.update(hole_list)
        for flow_id in ids:
            del index_of[flow_id]
        if content:
            for hole, mover in zip(hole_list, movers.tolist()):
                moved_id = self._ids[mover]
                self._ids[hole] = moved_id
                index_of[moved_id] = hole
        self._ids[new_n: self._n] = None
        self._routes[new_n: self._n] = self.pad_link
        self._n = new_n
        self.version += 1

    def apply_churn(self, starts: Iterable[tuple[Any, ...]] = (),
                    ends: Iterable[Hashable] = ()) -> None:
        """Batched churn: remove ``ends``, then add ``starts``.

        ``ends`` is an iterable of flow ids; ``starts`` of
        ``(flow_id, route)`` or ``(flow_id, route, weight)`` tuples.
        Removing first means an id appearing in both is restarted
        (fresh column state), matching flowlet end-then-start.  The
        adds are validated as one vectorized batch and inserted with a
        handful of slice assignments (one capacity check, one version
        bump), which is how the simulation and real-time drivers
        amortize bookkeeping across many flowlet events per allocator
        tick.  Removals go through the batched :meth:`remove_flows`
        (validated atomically) and are applied before the starts are
        validated, so a bad start leaves the ends done and no start
        applied.
        """
        self.remove_flows(ends)
        starts = list(starts)
        if not starts:
            return
        k = len(starts)
        weights, mask, gather = self._start_scratch(k)
        weights[:] = 1.0
        ids = []
        routes_seq = []
        for j, start in enumerate(starts):
            if len(start) == 3:
                flow_id, route, weights[j] = start
            else:
                flow_id, route = start
            ids.append(flow_id)
            routes_seq.append(route)
        # Validation is one vectorized pass over the whole batch; the
        # per-id Python loop above only unpacks tuples.  Error cases
        # fall back to the scalar checks so messages stay per-flow.
        index_of = self._index_of
        # keys().isdisjoint iterates the *batch* (hash probes into the
        # table) — set(ids).isdisjoint(index_of) would walk every
        # active flow instead.
        if len(set(ids)) != k or not index_of.keys().isdisjoint(ids):
            seen = set()
            for flow_id in ids:
                if flow_id in seen or flow_id in index_of:
                    raise KeyError(f"flow {flow_id!r} is already active")
                seen.add(flow_id)
        try:
            lengths = np.fromiter(map(len, routes_seq), dtype=np.int64,
                                  count=k)
        except TypeError:
            raise ValueError(
                "route must be a non-empty 1-D sequence of links") from None
        if lengths.min() < 1:
            raise ValueError("route must be a non-empty 1-D sequence of links")
        widest = int(lengths.max())
        if widest > self.max_route_len:
            raise ValueError(
                f"route has {widest} hops; table supports {self.max_route_len}"
            )
        flat = np.concatenate(routes_seq)
        if flat.ndim != 1 or len(flat) != int(lengths.sum()):
            raise ValueError("route must be a non-empty 1-D sequence of links")
        flat = flat.astype(np.int64, copy=False)
        if flat.min() < 0 or flat.max() >= self.links.n_links:
            raise ValueError("route contains an unknown link index")
        if not np.all(weights > 0):
            raise ValueError("flow weight must be positive")

        self.reserve(self._n + k)
        n0 = self._n
        block = slice(n0, n0 + k)
        rows = self._routes[block]
        rows[:] = self.pad_link
        # Left-packed scatter: row-major order of the mask matches the
        # concatenation order of the batch's routes.
        np.less(self._col_offsets, lengths[:, None], out=mask)
        rows[mask] = flat
        self._weights[block] = weights
        for column in self._columns:
            column._data[block] = column.default
        kernels.active().min_link_value(
            self._capacity_padded(), rows, gather,
            self._bottleneck._data[block])
        for j, flow_id in enumerate(ids):
            # Per-element stores: slice-assigning a list of e.g. tuple
            # ids would make numpy broadcast them as nested sequences.
            self._ids[n0 + j] = flow_id
        index_of.update(zip(ids, range(n0, n0 + k)))
        if self._change_log is not None:
            self._change_log.update(range(n0, n0 + k))
        self._csr_dirty.update(range(n0, min(n0 + k, self._csr_nrows)))
        if widest > self._max_hops_seen:
            self._max_hops_seen = widest
        self._n += k
        self.version += 1

    def reserve(self, n_flows: int) -> None:
        """Pre-grow storage to hold ``n_flows`` without reallocation."""
        while len(self._weights) < n_flows:
            self._grow()

    def _start_scratch(self, k):
        """Per-batch views of the reusable apply_churn scratch arrays:
        ``(weights, mask, gather)``, each with ``k`` rows."""
        if len(self._start_weights) < k:
            cap = max(64, 2 * k)
            self._start_mask = np.empty((cap, self.max_route_len),
                                        dtype=bool)
            self._start_gather = np.empty((cap, self.max_route_len))
            self._start_weights = np.empty(cap)
        return (self._start_weights[:k], self._start_mask[:k],
                self._start_gather[:k])

    def _capacity_padded(self):
        """The pad()-extended capacity vector (``+inf`` pad), cached
        between :meth:`refresh_capacity` calls — capacity edits must go
        through that method (the bottleneck column contract already
        requires it)."""
        padded = self._padded_capacity
        if padded is None:
            padded = self.pad(self.links.capacity, pad_value=np.inf)
            self._padded_capacity = padded
        return padded

    # ------------------------------------------------------------------
    # dirty-row tracking (delta-encoded churn publication)
    # ------------------------------------------------------------------
    def start_change_log(self) -> None:
        """Begin (or reset) dirty-row tracking.

        Afterwards every churn event records which positional rows it
        touched, so a consumer that mirrors this table remotely (the
        socket fabric's delta-encoded churn frames) can ship only the
        changed rows plus the new flow count instead of a whole-cell
        snapshot.  Rows that merely fell off the tail (the count
        shrank) are conveyed by ``n_flows``, not logged.  Call again to
        reset after publishing a full snapshot.
        """
        self._change_log = set()
        self._change_all = False

    def consume_changes(self) -> tuple[IntArray, bool]:
        """Drain the dirty-row log: ``(rows, all_changed)``.

        ``rows`` is a sorted int64 array of logged positions still in
        range (stale tail entries from shrinks are dropped);
        ``all_changed`` is True when a whole-table invalidation
        happened (:meth:`refresh_capacity` rewrites every bottleneck
        entry) and the consumer should fall back to a full snapshot.
        Requires :meth:`start_change_log`; resets the log.
        """
        log = self._change_log
        if log is None:
            raise RuntimeError("change tracking is off; call "
                               "start_change_log() first")
        all_changed = self._change_all
        rows = np.array(sorted(i for i in log if i < self._n),
                        dtype=np.int64)
        log.clear()
        self._change_all = False
        return rows, all_changed

    def refresh_capacity(self) -> None:
        """Mark capacity-derived per-flow caches stale after link
        capacities were changed in place (§7 external traffic).

        O(1): the bottleneck column is recomputed lazily at the next
        :meth:`bottleneck_capacity` call, so a controller folding in
        many per-link observations per tick pays one sweep, not one
        per observation.  Bumps ``version`` so optimizer-side caches
        invalidate too.
        """
        self._capacity_dirty = True
        self._padded_capacity = None
        if self._change_log is not None:
            self._change_all = True  # bottleneck changes for every flow
        # Routes are untouched, so the CSR route index stays valid; the
        # version bump makes the next _route_index() a cheap no-op sync.
        self.version += 1

    def _grow(self):
        new_cap = max(_INITIAL_CAPACITY, 2 * len(self._weights))
        routes = self._alloc("routes", (new_cap, self.max_route_len),
                             np.int64)
        routes[self._n:] = self.pad_link
        routes[: self._n] = self._routes[: self._n]
        weights = self._alloc("weights", (new_cap,), np.float64)
        weights[self._n:] = 1.0
        weights[: self._n] = self._weights[: self._n]
        ids = np.empty(new_cap, dtype=object)
        ids[: self._n] = self._ids[: self._n]
        self._routes, self._weights, self._ids = routes, weights, ids
        for i, column in enumerate(self._columns):
            data = self._alloc(f"column{i}", (new_cap,),
                               column._data.dtype)
            data[self._n:] = column.default
            data[: self._n] = column._data[: self._n]
            column._data = data
        self._csr_full = True  # regrowth: rebuild the route index whole

    # ------------------------------------------------------------------
    # queries (views aligned with positional order)
    # ------------------------------------------------------------------
    @property
    def n_flows(self) -> int:
        return self._n

    def __len__(self):
        return self._n

    def __contains__(self, flow_id):
        return flow_id in self._index_of

    def index_of(self, flow_id: Hashable) -> int:
        return self._index_of[flow_id]

    def flow_ids(self) -> list[Any]:
        """Current positional order of flow ids (list copy)."""
        return self._ids[: self._n].tolist()

    def flow_id_array(self) -> npt.NDArray[Any]:
        """Read-only view of the positionally-aligned id column, O(1).

        Aligned with :attr:`routes`/:attr:`weights` and every
        :class:`FlowColumn`; valid until the next churn event (the
        underlying storage is swap-maintained in place).  Hot-path
        consumers (the allocator's per-iterate notification rendering)
        use this instead of the :meth:`flow_ids` list copy.
        """
        view = self._ids[: self._n]
        view.flags.writeable = False
        return view

    @property
    def routes(self) -> IntArray:
        """Padded route matrix view, shape ``(n_flows, max_route_len)``."""
        return self._routes[: self._n]

    @property
    def weights(self) -> FloatArray:
        """Per-flow weight view, shape ``(n_flows,)``."""
        return self._weights[: self._n]

    def route_of(self, flow_id: Hashable) -> IntArray:
        """Unpadded route (link-index array) of one flow."""
        row = self._routes[self._index_of[flow_id]]
        return row[row != self.pad_link].copy()

    def hop_counts(self) -> IntArray:
        """Number of real (non-pad) hops per flow."""
        return np.sum(self.routes != self.pad_link, axis=1)

    # ------------------------------------------------------------------
    # CSR route index (derived, private-heap; the kernels' view)
    # ------------------------------------------------------------------
    def _route_index(self):
        """The version-cached CSR view of the padded route matrix.

        Returns ``(indptr, indices, nnz)`` where flow ``f``'s
        route occupies ``indices[indptr[f]:indptr[f+1]]`` (hop order
        preserved).  Slots are uniform at the running-max hop count
        (:attr:`_csr_width`), so slot ``e`` belongs to flow row
        ``e // width`` — the kernels exploit that directly instead of
        carrying a per-slot row-id array.  A row shorter than the
        widest carries trailing pad-link entries
        — bitwise-neutral in every kernel (+0.0 for sums, the dropped
        pad bin for scatters, ``-inf`` for maxima) — and no churn
        event ever shifts another row's slots.  The backing arrays
        are capacity-sized: read only the first ``n+1`` / ``nnz``
        entries.  Rebuilt lazily when :attr:`version` moved:
        incrementally from the internal dirty-row log (pure in-place
        row patches plus a tail append), from scratch only when
        storage regrows or a route wider than every slot arrives.
        Every public mutator bumps :attr:`version`, so a stale index
        is unobservable.
        """
        if self._csr_version != self.version:
            self._sync_csr()
        return (self._csr_indptr, self._csr_indices, self._csr_nnz)

    def _sync_csr(self):
        n = self._n
        if self._csr_full or self._max_hops_seen > self._csr_width:
            self._rebuild_csr()
        else:
            width = self._csr_width
            tail = min(n, self._csr_nrows)
            kern = kernels.active()
            dirty = self._csr_dirty
            if dirty:
                rows = np.fromiter(dirty, dtype=np.int64, count=len(dirty))
                rows = rows[rows < tail]
                if len(rows):
                    kern.patch_rows(self._csr_mat, self._routes, rows,
                                    width)
            if tail < n:
                kern.copy_rows(self._csr_mat, self._routes, tail, n,
                               width)
            self._csr_nnz = n * width
            self._csr_nrows = n
        self._csr_dirty.clear()
        self._csr_version = self.version

    def _rebuild_csr(self):
        """Full rebuild: re-derive the slot width (exact max hop count
        — the one moment shrinking is cheap) and copy every row's
        leading ``width`` columns in one strided pass."""
        n = self._n
        routes = self._routes
        width = self.max_route_len
        while width > 1 and (n == 0
                             or np.all(routes[:n, width - 1]
                                       == self.pad_link)):
            width -= 1
        cap = len(self._weights)
        if self._csr_width != width or len(self._csr_indices) != cap * width:
            self._csr_width = width
            self._csr_indptr = np.arange(cap + 1, dtype=np.int64) * width
            self._csr_indices = np.empty(cap * width, dtype=np.int64)
            self._csr_mat = self._csr_indices.reshape(cap, width)
            self._kernel_buf = np.empty(cap * width)
        if n:
            kernels.active().copy_rows(self._csr_mat, routes, 0, n,
                                       width)
        self._csr_nnz = n * width
        self._csr_nrows = n
        self._max_hops_seen = width
        self._csr_full = False

    # ------------------------------------------------------------------
    # vectorized NUM kernels
    # ------------------------------------------------------------------
    def pad(self, per_link: npt.ArrayLike, pad_value: float = 0.0,
            dtype: npt.DTypeLike = np.float64) -> npt.NDArray[Any]:
        """Extend a per-link vector with the pad-link entry."""
        padded = np.empty(self.links.n_links + 1, dtype=dtype)
        padded[:-1] = per_link
        padded[-1] = pad_value
        return padded

    def price_sums(self, prices: npt.ArrayLike) -> FloatArray:
        """Per-flow sums of link prices along each route (rho_s).

        ``prices`` has one entry per real link; slack slots gather the
        pad link's pinned 0.0.  The per-route fold is strictly
        left-to-right in hop order (trailing zeros are bitwise no-ops)
        in every kernel tier, so the result is bit-for-bit the
        sequential sum of each route, independent of slot width, tier
        and thread count.
        """
        n = self._n
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        _, indices, _ = self._route_index()
        return kernels.active().price_sums(
            self.pad(prices), indices, n, self._csr_width,
            self._kernel_buf)

    def link_totals(self, per_flow: npt.ArrayLike) -> FloatArray:
        """Scatter per-flow values onto links: ``out[l] = sum_{s in S(l)} v_s``.

        This computes aggregate link load when given rates, and the
        Hessian diagonal when given rate derivatives.  The scatter
        runs over the CSR link column (slack lands in the dropped pad
        bin) via the canonical chunked reduction shared by every
        kernel tier: per-link accumulation order is flow-position
        order within each fixed-size chunk, partials folded in chunk
        order, so the floats are identical across tiers and thread
        counts (and, below one chunk, to the historical single-pass
        scatter).
        """
        n = self._n
        if n == 0:
            return np.zeros(self.links.n_links, dtype=np.float64)
        _, indices, _ = self._route_index()
        totals = kernels.active().link_totals(
            np.asarray(per_flow, dtype=np.float64), indices, n,
            self._csr_width, self.links.n_links + 1, self._kernel_buf)
        return totals[:-1]

    def link_totals2(self, a: npt.ArrayLike, b: npt.ArrayLike,
                     ) -> tuple[FloatArray, FloatArray]:
        """Fused pair of :meth:`link_totals` calls over one CSR pass.

        The allocator's price update scatters rates and rate
        derivatives over identical indices every iteration; fusing the
        two calls shares the index resolution and the gather scratch.
        (A single stacked two-weight bincount over offset bins was
        measured no faster than the two straight bincounts and would
        force an O(nnz) stacked-index rewrite per churn batch, so the
        fusion stops at the shared view.)  Returns ``(totals_a,
        totals_b)``, bitwise equal to two separate calls.
        """
        n = self._n
        if n == 0:
            zeros = np.zeros(self.links.n_links, dtype=np.float64)
            return zeros, zeros.copy()
        _, indices, _ = self._route_index()
        totals_a, totals_b = kernels.active().link_totals2(
            np.asarray(a, dtype=np.float64),
            np.asarray(b, dtype=np.float64), indices, n,
            self._csr_width, self.links.n_links + 1, self._kernel_buf)
        return totals_a[:-1], totals_b[:-1]

    def max_link_value(self, per_link: npt.ArrayLike) -> FloatArray:
        """Per-flow max of a per-link quantity along each route.

        Used by F-NORM: each flow is scaled by its most-congested
        link's ratio.  The CSR segment max (max is order-insensitive,
        so segment order cannot change the bits; slack slots
        contribute the pad link's ``-inf`` and never win) is computed
        column-wise over the uniform slots — bitwise identical to
        ``np.maximum.reduceat`` over the same segments and measured
        ~1.7x faster (contiguous SIMD passes instead of reduceat's
        scalar segment loop).  The returned array is a reusable
        reduction buffer — valid until the next ``max_link_value``
        call on this table; consumers that keep it must copy.
        """
        n = self._n
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        _, indices, _ = self._route_index()
        if len(self._max_out) < n:
            self._max_out = np.empty(len(self._weights))
        return kernels.active().max_link_value(
            self.pad(per_link, pad_value=-np.inf), indices, n,
            self._csr_width, self._kernel_buf, self._max_out[:n])

    def flows_on_link(self, link: int) -> IntArray:
        """Positional indices of flows traversing ``link`` (test aid)."""
        return np.nonzero(np.any(self.routes == link, axis=1))[0]

    def bottleneck_capacity(self) -> FloatArray:
        """Per-flow minimum link capacity along each route.

        No feasible allocation can give a flow more than this, so
        optimizers cap the Equation-3 rates at it — the physical
        counterpart is the sender NIC line rate.  Maintained
        incrementally under churn, so this is O(1) except on the
        first read after :meth:`refresh_capacity`; the returned view
        is read-only and valid until the next churn event or capacity
        refresh.
        """
        n = self._n
        if self._capacity_dirty:
            if n:
                kernels.active().min_link_value(
                    self._capacity_padded(), self._routes[:n],
                    np.empty((n, self.max_route_len)),
                    self._bottleneck._data[:n])
            self._capacity_dirty = False
        view = self._bottleneck._data[: self._n]
        view.flags.writeable = False
        return view

    def clone(self) -> FlowTable:
        """Deep copy with the same flows in the same positional order
        (used to solve for the optimum without disturbing the live
        allocator state).  The whole population rides one batched
        :meth:`apply_churn` — one validation pass, one slice insert —
        instead of the per-flow ``add_flow`` loop it replaced.
        """
        copy = FlowTable(self.links, max_route_len=self.max_route_len)
        n = self._n
        if n == 0:
            return copy
        routes = self._routes
        lengths = np.sum(routes[:n] != self.pad_link, axis=1).tolist()
        weights = self._weights[:n].tolist()
        copy.apply_churn(starts=[
            (flow_id, routes[i, : lengths[i]], weights[i])
            for i, flow_id in enumerate(self._ids[:n])])
        return copy

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"FlowTable(n_flows={self._n}, n_links={self.links.n_links}, "
            f"max_route_len={self.max_route_len})"
        )
