"""The Flowtune centralized allocator (fig. 1 of the paper).

Ties the pieces together: endpoints report flowlet starts and ends;
the optimizer (NED by default) re-computes rates from warm-started
prices; the normalizer (F-NORM by default) scales them to feasibility;
and the allocator decides *which endpoints to notify* using the
rate-change threshold of §6.4 — a flow allocated 1 Gbit/s with a 0.01
threshold is only notified when its rate leaves [0.99, 1.01] Gbit/s.
To keep the un-notified error from over-filling links, the allocator
allocates against capacities reduced by the threshold (99 % of each
link for threshold 0.01), exactly as described in the paper.
"""

from __future__ import annotations

import inspect
import threading
from collections.abc import Hashable, Iterable
from typing import Any, NamedTuple

import numpy as np
import numpy.typing as npt

from .ned import NedOptimizer
from .network import FlowTable, LinkSet
from .normalization import FNormalizer, Normalizer
from .utility import Utility

__all__ = ["RateUpdate", "AllocationResult", "FlowtuneAllocator",
           "ChurnQueue", "threshold_update_indices",
           "threshold_update_mask"]


class RateUpdate(NamedTuple):
    """One rate notification destined for a flow's sender."""

    flow_id: object
    rate: float


_NO_UPDATES = np.zeros(0, dtype=np.intp)


def threshold_update_mask(rate_vec: npt.NDArray[np.float64],
                          last: npt.NDArray[np.float64],
                          pending: npt.NDArray[np.bool_],
                          threshold: float) -> npt.NDArray[np.bool_]:
    """The §6.4 notification filter as one vectorized mask.

    A flow is selected when it is new (``last`` is NaN or ``pending``),
    when a zero rate turns positive, or when its rate leaves
    ``[(1-t)*last, (1+t)*last]``.  The selected rows of ``last`` and
    ``pending`` are updated *in place* (they are live flow-table
    columns), so every scheduler that shares this helper applies
    bitwise-identical update semantics.

    Returns the boolean ``changed`` mask rather than indices: when
    nearly everything changed (the ECMP fair-share model under churn
    renotifies most mice each refresh), masked stores beat building a
    90 k-entry index array the caller may never read.  Use
    :func:`threshold_update_indices` when positions are needed
    eagerly.
    """
    # NaN (never notified) compares False everywhere, so it only
    # contributes through the is_new term.
    is_new = np.isnan(last) | pending
    went_positive = (last <= 0.0) & (rate_vec > 0.0)
    moved = np.abs(rate_vec - last) > threshold * last
    changed = is_new | went_positive | ((last > 0.0) & moved)
    if changed.any():
        np.copyto(last, rate_vec, where=changed)
        pending[changed] = False
    return changed


def threshold_update_indices(rate_vec: npt.NDArray[np.float64],
                             last: npt.NDArray[np.float64],
                             pending: npt.NDArray[np.bool_],
                             threshold: float) -> npt.NDArray[np.intp]:
    """:func:`threshold_update_mask` rendered as update positions."""
    return np.flatnonzero(
        threshold_update_mask(rate_vec, last, pending, threshold))


class AllocationResult:
    """Outcome of one allocator invocation.

    ``flow_ids`` and ``rate_vector`` expose the full allocation in the
    flow table's positional order; ``update_indices`` are the positions
    whose endpoints must be notified (rate moved by more than the
    threshold, or flow is new).  ``updates`` renders those positions as
    :class:`RateUpdate` objects, ``rates`` a full id->rate dict, and
    ``flow_ids`` a plain id list — all materialized lazily on first
    access, so hot-path consumers that stick to the vector forms pay
    nothing for them (at 10k flows the RateUpdate list alone dominates
    ``iterate``'s cost, and at 100k even the id-list copy shows).

    The allocator constructs results over the flow table's *live*
    positionally-aligned id column, so the lazy views are snapshots of
    the moment they are first accessed: consume a result (or touch the
    properties you need) before applying further churn, as every
    driver in this repo does within its tick.
    """

    __slots__ = ("_ids", "rate_vector", "update_indices",
                 "_updates", "_rates_dict", "_flow_ids")

    def __init__(self, flow_ids: npt.NDArray[Any] | list[Any],
                 rate_vector: npt.NDArray[np.float64],
                 update_indices: npt.NDArray[np.intp] = _NO_UPDATES,
                 ) -> None:
        self._ids = flow_ids  # list or positionally-aligned id array
        self.rate_vector = rate_vector  # numpy array aligned with ids
        self.update_indices = update_indices
        self._updates = None
        self._rates_dict = None
        self._flow_ids = None

    @property
    def flow_ids(self) -> list[Any]:
        if self._flow_ids is None:
            ids = self._ids
            self._flow_ids = (ids.tolist() if isinstance(ids, np.ndarray)
                              else list(ids))
        return self._flow_ids

    @property
    def updates(self) -> list[RateUpdate]:
        if self._updates is None:
            ids = self._ids
            sent = np.asarray(self.rate_vector, dtype=np.float64)[
                self.update_indices].tolist()
            self._updates = [RateUpdate(ids[i], rate) for i, rate in
                             zip(self.update_indices.tolist(), sent)]
        return self._updates

    @property
    def rates(self) -> dict[Any, float]:
        if self._rates_dict is None:
            self._rates_dict = dict(zip(
                self._ids,
                np.asarray(self.rate_vector, dtype=np.float64).tolist()))
        return self._rates_dict

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"AllocationResult(n_flows={len(self._ids)}, "
                f"n_updates={len(self.update_indices)})")


class FlowtuneAllocator:
    """Centralized flowlet-granularity rate allocator.

    Parameters
    ----------
    links:
        The network's :class:`~repro.core.network.LinkSet` (full
        capacities; the threshold headroom is applied internally).
    utility:
        NUM objective; default proportional fairness.
    optimizer_cls:
        Price-update algorithm (default
        :class:`~repro.core.ned.NedOptimizer`).
    normalizer:
        Feasibility post-processor (default F-NORM).
    update_threshold:
        Relative rate-change threshold for notifying endpoints (§6.4);
        also the capacity headroom fraction.
    gamma:
        Optimizer step size (§6.2 uses 0.4 in simulation, 1.0 in the
        allocator microbenchmarks).
    """

    def __init__(self, links: LinkSet, utility: Utility | None = None,
                 optimizer_cls: type = NedOptimizer,
                 normalizer: Normalizer | None = None,
                 update_threshold: float = 0.01, gamma: float = 1.0,
                 max_route_len: int = 8,
                 optimizer_kwargs: dict | None = None) -> None:
        if not 0 <= update_threshold < 1:
            raise ValueError("update_threshold must be in [0, 1)")
        self.full_links = links
        self.update_threshold = float(update_threshold)
        effective = LinkSet(links.capacity * (1.0 - self.update_threshold),
                            names=links.names)
        self.table = FlowTable(effective, max_route_len=max_route_len)
        kwargs = dict(optimizer_kwargs or {})
        accepts_gamma = "gamma" in inspect.signature(
            optimizer_cls.__init__).parameters
        if accepts_gamma:
            kwargs.setdefault("gamma", gamma)
        self.optimizer = optimizer_cls(self.table, utility=utility, **kwargs)
        self.normalizer = normalizer if normalizer is not None else FNormalizer()
        # The normalizer must accept the optimizer's per-link load
        # (saves F-NORM's re-scatter of the very rates the price
        # update just scattered).  The two-argument compatibility
        # fallback is gone; fail at construction, not mid-iterate.
        try:
            # signature() on the callable itself follows __call__ for
            # instances and reports real parameters for plain
            # functions (inspecting .__call__ directly would see the
            # generic (*args, **kwargs) method-wrapper for those).
            params = inspect.signature(self.normalizer).parameters.values()
            takes_load = any(p.name == "link_load" or p.kind == p.VAR_KEYWORD
                             for p in params)
        except (TypeError, ValueError):  # builtins, odd callables
            takes_load = False
        if not takes_load:
            raise TypeError(
                "normalizer must accept a link_load= keyword: add "
                "link_load=None to "
                f"{type(self.normalizer).__name__}.__call__ (see "
                "repro.core.normalization.Normalizer); the legacy "
                "two-argument form is no longer called")
        # Positionally-aligned per-flow state, maintained by the flow
        # table under swap-remove churn: the rate each endpoint was
        # last notified of (NaN = never notified) and whether the flow
        # is new since its last notification.  Their column defaults
        # make flowlet start/end pure table operations.
        self._last_sent = self.table.add_column(default=np.nan)
        self._pending_new = self.table.add_column(default=True,
                                                  dtype=np.bool_)

    # ------------------------------------------------------------------
    # endpoint notifications (fig. 1 left-to-right arrows)
    # ------------------------------------------------------------------
    def flowlet_start(self, flow_id: Hashable, route: npt.ArrayLike,
                      weight: float = 1.0) -> None:
        """An endpoint reports a new backlogged flowlet on ``route``."""
        self.table.add_flow(flow_id, route, weight=weight)

    def flowlet_end(self, flow_id: Hashable) -> None:
        """An endpoint reports its queue for ``flow_id`` drained."""
        self.table.remove_flow(flow_id)

    def apply_churn(self, starts: Iterable[tuple[Any, ...]] = (),
                    ends: Iterable[Hashable] = ()) -> None:
        """Apply a batch of flowlet events in one call.

        ``ends`` (flow ids) are removed first, then ``starts``
        (``(flow_id, route)`` or ``(flow_id, route, weight)`` tuples)
        are added, so an id appearing in both is restarted and will be
        re-notified as new.  Drivers that buffer notifications per
        allocator tick (the fluid simulator, the ns-style allocator
        node) use this to amortize bookkeeping across the batch.
        """
        self.table.apply_churn(starts=starts, ends=ends)

    @property
    def n_flows(self) -> int:
        return self.table.n_flows

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self.table

    # ------------------------------------------------------------------
    # RateScheduler protocol surface (repro.sampling.scheduler)
    # ------------------------------------------------------------------
    #: Whether drivers should feed per-flow byte counts through
    #: :meth:`report_usage`.  The full allocator prices every flow and
    #: needs no usage stream; the sampled scheduler flips this on.
    wants_usage: bool = False

    @property
    def links(self) -> LinkSet:
        """Effective (headroom-adjusted) link set the allocator prices."""
        return self.table.links

    @property
    def max_route_len(self) -> int:
        return self.table.max_route_len

    def link_load(self, rates: npt.ArrayLike) -> npt.NDArray[np.float64]:
        """Per-link load of a rate vector aligned with the last result."""
        return self.table.link_totals(rates)

    def report_usage(self, flow_id: Hashable, nbytes: float) -> None:
        """Cumulative byte-count report for a flow (§6.2 usage stream).

        The full allocator prices every flow already, so the stream
        carries no scheduling signal here — it exists so drivers can
        program against :class:`~repro.sampling.RateScheduler` without
        caring which scheme is behind it.
        """

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def iterate(self, n: int = 1) -> AllocationResult:
        """Run ``n`` optimizer iterations, normalize, emit notifications.

        The threshold filter of §6.4 runs as one vectorized mask over
        the positionally-aligned ``last_sent`` column: a flow is
        notified when it is new, when a zero rate turns positive, or
        when its rate leaves ``[(1-t)*last, (1+t)*last]``.
        """
        raw = self.optimizer.iterate(n)
        loader = getattr(self.optimizer, "link_load_for", None)
        normalized = self.normalizer(
            self.table, raw,
            link_load=loader(raw) if loader is not None else None)
        # O(1) view of the table's positionally-aligned id column —
        # the per-iterate list rebuild this replaces used to cost a
        # full O(n_flows) copy whether or not anyone read the ids.
        flow_ids = self.table.flow_id_array()
        update_idx = _NO_UPDATES
        if len(flow_ids):
            rate_vec = np.asarray(normalized, dtype=np.float64)
            update_idx = threshold_update_indices(
                rate_vec, self._last_sent.data, self._pending_new.data,
                self.update_threshold)
        return AllocationResult(flow_ids=flow_ids, rate_vector=normalized,
                                update_indices=update_idx)

    def current_rates(self) -> dict[Any, float]:
        """Latest *notified* rate per flow (what endpoints believe)."""
        last = self._last_sent.data
        notified = ~np.isnan(last)
        ids = self.table.flow_id_array()
        return {ids[i]: rate for i, rate in
                zip(np.nonzero(notified)[0].tolist(),
                    last[notified].tolist())}

    def raw_rates(self) -> dict[Any, float]:
        """Un-normalized optimizer rates for the active flows."""
        raw = self.optimizer.rate_update()
        return dict(zip(self.table.flow_ids(), (float(r) for r in raw)))

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"FlowtuneAllocator(n_flows={self.table.n_flows}, "
                f"optimizer={self.optimizer.name}, "
                f"normalizer={self.normalizer.name}, "
                f"threshold={self.update_threshold})")


# Pending-event kinds (ChurnQueue); module-level so drain() can
# dispatch on identity rather than string compare.
_EV_START = "start"
_EV_END = "end"
_EV_RESTART = "restart"


class ChurnQueue:
    """Non-blocking ingest buffer that coalesces same-flow churn.

    Producers (e.g. the allocator service's socket loop) call
    :meth:`push_start` / :meth:`push_end` as events arrive; the
    allocation loop calls :meth:`drain` once per duty cycle and feeds
    the result straight into :meth:`FlowtuneAllocator.apply_churn`.
    Events for the same flow id within one batch coalesce to the
    table-level outcome the paper's batching implies:

    * start then end before any drain → the flow never existed; both
      events vanish.
    * end then start → a restart; ``drain`` emits the id in *both*
      lists (``apply_churn`` removes ends first, so the flow is
      re-admitted as new and re-notified per §6.4).
    * repeated starts → last route/weight wins.
    * end of a flow with no pending start → plain end.

    All methods take one lock for a dict operation, so producers never
    block on the allocator's iterate and vice versa.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._pending = {}  # flow_id -> (kind, route, weight)

    def push_start(self, flow_id: Hashable, route: npt.ArrayLike,
                   weight: float = 1.0) -> None:
        with self._lock:
            prior = self._pending.get(flow_id)
            kind = _EV_START
            if prior is not None and prior[0] in (_EV_END, _EV_RESTART):
                kind = _EV_RESTART
            self._pending[flow_id] = (kind, route, weight)

    def push_end(self, flow_id: Hashable) -> None:
        with self._lock:
            prior = self._pending.get(flow_id)
            if prior is None:
                self._pending[flow_id] = (_EV_END, None, None)
            elif prior[0] == _EV_START:
                # Started and ended within one batch: never materialized.
                del self._pending[flow_id]
            elif prior[0] == _EV_RESTART:
                self._pending[flow_id] = (_EV_END, None, None)
            # prior end: no-op (idempotent)

    def pending_kind(self, flow_id: Hashable) -> str | None:
        """The coalesced pending kind for ``flow_id`` (or ``None``).

        Lets the service validate duplicate starts / unknown ends at
        dispatch time — before a bad event reaches ``apply_churn``
        mid-cycle — without draining.
        """
        with self._lock:
            ev = self._pending.get(flow_id)
            return ev[0] if ev is not None else None

    def drain(self) -> tuple[list[tuple[Any, Any, Any]], list[Any]]:
        """Atomically take the batch: ``(starts, ends)`` for apply_churn.

        ``starts`` is a list of ``(flow_id, route, weight)``; ``ends``
        a list of flow ids.  Restarted flows appear in both.
        """
        with self._lock:
            pending, self._pending = self._pending, {}
        starts, ends = [], []
        for flow_id, (kind, route, weight) in pending.items():
            if kind == _EV_END:
                ends.append(flow_id)
                continue
            if kind == _EV_RESTART:
                ends.append(flow_id)
            starts.append((flow_id, route, weight))
        return starts, ends

    def __len__(self):
        with self._lock:
            return len(self._pending)

    def __bool__(self):
        with self._lock:
            return bool(self._pending)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"ChurnQueue(pending={len(self)})"
