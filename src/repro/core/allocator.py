"""The Flowtune centralized allocator (fig. 1 of the paper).

Ties the pieces together: endpoints report flowlet starts and ends;
the optimizer (NED by default) re-computes rates from warm-started
prices; the normalizer (F-NORM by default) scales them to feasibility;
and the allocator decides *which endpoints to notify* using the
rate-change threshold of §6.4 — a flow allocated 1 Gbit/s with a 0.01
threshold is only notified when its rate leaves [0.99, 1.01] Gbit/s.
To keep the un-notified error from over-filling links, the allocator
allocates against capacities reduced by the threshold (99 % of each
link for threshold 0.01), exactly as described in the paper.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

import numpy as np

from .ned import NedOptimizer
from .network import FlowTable, LinkSet
from .normalization import FNormalizer, Normalizer
from .utility import Utility

__all__ = ["RateUpdate", "AllocationResult", "FlowtuneAllocator"]


@dataclass(frozen=True)
class RateUpdate:
    """One rate notification destined for a flow's sender."""

    flow_id: object
    rate: float


@dataclass
class AllocationResult:
    """Outcome of one allocator invocation.

    ``updates`` lists only the flows whose endpoints must be notified
    (rate moved by more than the threshold, or flow is new); ``rates``
    maps every active flow to its current normalized rate.
    ``flow_ids`` and ``rate_vector`` expose the same allocation in the
    flow table's positional order for vectorized consumers.
    """

    updates: list
    rates: dict
    flow_ids: list
    rate_vector: object  # numpy array aligned with flow_ids


class FlowtuneAllocator:
    """Centralized flowlet-granularity rate allocator.

    Parameters
    ----------
    links:
        The network's :class:`~repro.core.network.LinkSet` (full
        capacities; the threshold headroom is applied internally).
    utility:
        NUM objective; default proportional fairness.
    optimizer_cls:
        Price-update algorithm (default
        :class:`~repro.core.ned.NedOptimizer`).
    normalizer:
        Feasibility post-processor (default F-NORM).
    update_threshold:
        Relative rate-change threshold for notifying endpoints (§6.4);
        also the capacity headroom fraction.
    gamma:
        Optimizer step size (§6.2 uses 0.4 in simulation, 1.0 in the
        allocator microbenchmarks).
    """

    def __init__(self, links: LinkSet, utility: Utility | None = None,
                 optimizer_cls=NedOptimizer, normalizer: Normalizer | None = None,
                 update_threshold: float = 0.01, gamma: float = 1.0,
                 max_route_len: int = 8, optimizer_kwargs: dict | None = None):
        if not 0 <= update_threshold < 1:
            raise ValueError("update_threshold must be in [0, 1)")
        self.full_links = links
        self.update_threshold = float(update_threshold)
        effective = LinkSet(links.capacity * (1.0 - self.update_threshold),
                            names=links.names)
        self.table = FlowTable(effective, max_route_len=max_route_len)
        kwargs = dict(optimizer_kwargs or {})
        accepts_gamma = "gamma" in inspect.signature(
            optimizer_cls.__init__).parameters
        if accepts_gamma:
            kwargs.setdefault("gamma", gamma)
        self.optimizer = optimizer_cls(self.table, utility=utility, **kwargs)
        self.normalizer = normalizer if normalizer is not None else FNormalizer()
        self._last_sent = {}
        self._pending_new = set()

    # ------------------------------------------------------------------
    # endpoint notifications (fig. 1 left-to-right arrows)
    # ------------------------------------------------------------------
    def flowlet_start(self, flow_id, route, weight: float = 1.0):
        """An endpoint reports a new backlogged flowlet on ``route``."""
        self.table.add_flow(flow_id, route, weight=weight)
        self._pending_new.add(flow_id)

    def flowlet_end(self, flow_id):
        """An endpoint reports its queue for ``flow_id`` drained."""
        self.table.remove_flow(flow_id)
        self._last_sent.pop(flow_id, None)
        self._pending_new.discard(flow_id)

    @property
    def n_flows(self):
        return self.table.n_flows

    def __contains__(self, flow_id):
        return flow_id in self.table

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def iterate(self, n: int = 1) -> AllocationResult:
        """Run ``n`` optimizer iterations, normalize, emit notifications."""
        raw = self.optimizer.iterate(n)
        normalized = self.normalizer(self.table, raw)
        flow_ids = self.table.flow_ids()
        rates = dict(zip(flow_ids, (float(r) for r in normalized)))
        updates = []
        threshold = self.update_threshold
        for flow_id, rate in rates.items():
            last = self._last_sent.get(flow_id)
            is_new = flow_id in self._pending_new
            if last is None or is_new:
                changed = True
            elif last <= 0.0:
                changed = rate > 0.0
            else:
                changed = abs(rate - last) > threshold * last
            if changed:
                updates.append(RateUpdate(flow_id, rate))
                self._last_sent[flow_id] = rate
                self._pending_new.discard(flow_id)
        return AllocationResult(updates=updates, rates=rates,
                                flow_ids=flow_ids, rate_vector=normalized)

    def current_rates(self):
        """Latest *notified* rate per flow (what endpoints believe)."""
        return dict(self._last_sent)

    def raw_rates(self):
        """Un-normalized optimizer rates for the active flows."""
        raw = self.optimizer.rate_update()
        return dict(zip(self.table.flow_ids(), (float(r) for r in raw)))

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"FlowtuneAllocator(n_flows={self.table.n_flows}, "
                f"optimizer={self.optimizer.name}, "
                f"normalizer={self.normalizer.name}, "
                f"threshold={self.update_threshold})")
