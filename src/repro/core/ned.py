"""Newton-Exact-Diagonal (NED) — the paper's rate-allocation algorithm.

NED's insight (§3): in the datacenter, the allocator knows every flow's
utility function and route, so the diagonal of the dual Hessian,

    H_ll = sum_{s in S(l)} d x_s(p) / d p_l
         = sum_{s in S(l)} ((U_s')^{-1})'( sum_{m in L(s)} p_m ),

can be *computed exactly* instead of measured (the Newton-like method
of Athuraliya & Low) or ignored (Gradient projection).  The price
update is then

    p_l <- max(0, p_l - gamma * H_ll^{-1} * G_l),

with ``G_l`` the link's over-allocation.  Since every admissible
utility is strictly concave, ``H_ll`` is strictly negative on any link
carrying flows, so an over-allocated link (``G_l > 0``) raises its
price proportionally to how *insensitive* its flows are — exactly the
second-order scaling a Newton step provides, at first-order cost.

Links with no flows have ``H_ll = 0``; their price is driven straight
to zero (nothing to price).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .network import FlowTable
from .optimizer import PriceOptimizer
from .utility import Utility

__all__ = ["NedOptimizer"]


class NedOptimizer(PriceOptimizer):
    """Algorithm 1 of the paper.

    Parameters
    ----------
    gamma:
        Step-size scale; the paper uses ``gamma = 1`` for the allocator
        benchmarks and finds the network insensitive for gamma in
        [0.2, 1.5] (§6.2, which uses 0.4).
    """

    name = "NED"

    def __init__(self, table: FlowTable, utility: Utility | None = None,
                 gamma: float = 1.0, initial_price: float = 1.0,
                 cap_rates: bool = True) -> None:
        super().__init__(table, utility=utility, initial_price=initial_price,
                         cap_rates=cap_rates)
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)
        # Idle links carry no pricing information; parking them at the
        # price a lone capacity-filling flow would see keeps the first
        # allocation after an arrival near line rate instead of either
        # absurdly high (price ~ 0) or throttled (stale high price).
        self._idle_price = np.asarray(
            self.utility.inverse_rate(table.links.capacity, 1.0),
            dtype=np.float64)

    def refresh_capacity(self) -> None:
        super().refresh_capacity()
        self._idle_price = np.asarray(
            self.utility.inverse_rate(self.table.links.capacity, 1.0),
            dtype=np.float64)

    def hessian_diagonal(self, prices: npt.NDArray[np.float64] | None = None,
                         ) -> npt.NDArray[np.float64]:
        """Exact ``H_ll`` for all links (non-positive by concavity).

        Evaluated at the capped operating point (see
        :meth:`PriceOptimizer.effective_price_sums`) so rate and
        sensitivity describe the same allocation; within ``iterate``
        the memoized price sums of the rate update are reused.
        """
        rho = self.effective_price_sums(prices)
        per_flow = self.utility.rate_derivative(rho, self.table.weights)
        return self.table.link_totals(per_flow)

    def _update_prices(self, rates):
        # One fused CSR pass for both scatters: the rates (load) and
        # rate derivatives (Hessian diagonal) ride identical indices,
        # and the load is memoized for the allocator's normalizer.
        # Same floats as over_allocation + hessian_diagonal.
        table = self.table
        rho = self.effective_price_sums()
        per_flow = self.utility.rate_derivative(rho, table.weights)
        load, hessian = table.link_totals2(rates, per_flow)
        self._load_memo = (table.version, rates, load)
        over = load - table.links.capacity
        carrying = hessian < 0.0
        # H_ll < 0, so G/H_ll has the opposite sign of G; subtracting it
        # raises the price of an over-allocated link (Equation 4).
        step = np.divide(over, hessian, out=np.zeros_like(self.prices),
                         where=carrying)
        new_prices = np.where(carrying, self.prices - self.gamma * step,
                              self._idle_price)
        np.maximum(new_prices, 0.0, out=new_prices)
        self.prices = new_prices
