"""Fast weighted Gradient Method (Beck, Nedic, Ozdaglar & Teboulle 2014).

An accelerated (Nesterov-momentum) projected gradient on the NUM dual.
Instead of the exact Hessian diagonal it uses a *crude upper bound* on
the curvature of the rate response: for utility ``U`` with rates capped
by the largest link capacity ``x_max``, the per-flow slope magnitude is
at most ``|((U')^{-1})'(U'(x_max))|`` (the response is steepest where
prices are lowest, i.e. rates largest).  Each link's Lipschitz weight
is that bound times the number of flows crossing it.

The momentum sequence assumes a *static* problem; under flowlet churn
the extrapolation step keeps pushing prices along stale directions,
which is exactly the "does not handle the stream of updates well"
behaviour the paper reports in fig. 12.  ``reset()`` restarts the
momentum (used by tests to verify the static-case convergence).
"""

from __future__ import annotations

import numpy as np

from .optimizer import PriceOptimizer

__all__ = ["FgmOptimizer"]


class FgmOptimizer(PriceOptimizer):
    """Nesterov-accelerated dual gradient with a crude Lipschitz bound.

    Parameters
    ----------
    max_rate:
        Cap used in the curvature bound; defaults to the largest link
        capacity (no flow can sustainably exceed it).
    """

    name = "FGM"

    def __init__(self, table, utility=None, max_rate: float | None = None,
                 initial_price: float = 1.0):
        super().__init__(table, utility=utility, initial_price=initial_price)
        self.max_rate = (float(max_rate) if max_rate is not None
                         else float(np.max(table.links.capacity)))
        self._momentum_t = 1.0
        self._previous_prices = self.prices.copy()

    def reset(self):
        """Restart the momentum sequence (after large churn)."""
        self._momentum_t = 1.0
        self._previous_prices = self.prices.copy()

    def _lipschitz_weights(self):
        """Per-link upper bound on ``|H_ll|``: flow count x curvature cap."""
        weights = self.table.weights
        price_at_max = self.utility.inverse_rate(
            np.full(self.table.n_flows, self.max_rate), weights)
        per_flow_bound = np.abs(
            self.utility.rate_derivative(price_at_max, weights))
        bound = self.table.link_totals(per_flow_bound)
        return np.maximum(bound, 1e-12)

    def _update_prices(self, rates):
        # Nesterov extrapolation point.
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * self._momentum_t ** 2))
        beta = (self._momentum_t - 1.0) / t_next
        extrapolated = self.prices + beta * (self.prices - self._previous_prices)
        np.maximum(extrapolated, 0.0, out=extrapolated)
        # Dual gradient at the extrapolated point (not at self.prices).
        rates_at_y = self.rate_update(extrapolated)
        over = self.over_allocation(rates_at_y)
        step = over / self._lipschitz_weights()
        new_prices = extrapolated + step
        np.maximum(new_prices, 0.0, out=new_prices)
        self._previous_prices = self.prices
        self.prices = new_prices
        self._momentum_t = t_next
