"""Gradient projection (Low & Lapsley) — the first-order baseline.

The simplest dual method: each link adjusts its price directly from
its over-allocation,

    p_l <- max(0, p_l + gamma * G_l).

The paper's critique (§3): Gradient does not know how sensitive flows
are to a price change, so ``gamma`` must be small enough for the most
price-sensitive operating point the network will ever visit, making it
slow everywhere else.  We keep it as the convergence baseline used in
figures 12 and 13.
"""

from __future__ import annotations

import numpy as np

from .optimizer import PriceOptimizer

__all__ = ["GradientOptimizer"]


class GradientOptimizer(PriceOptimizer):
    """Low-Lapsley gradient projection on the NUM dual.

    Parameters
    ----------
    gamma:
        Fixed step size in price units per unit of over-allocation.
        The default is tuned for capacities expressed in Gbit/s with
        unit-weight log utilities (prices of order ``n_flows / c``);
        too large a value oscillates, too small crawls — which is the
        point of the comparison.
    """

    name = "Gradient"

    def __init__(self, table, utility=None, gamma: float = 1e-3,
                 initial_price: float = 1.0):
        super().__init__(table, utility=utility, initial_price=initial_price)
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    def _update_prices(self, rates):
        over = self.over_allocation(rates)
        new_prices = self.prices + self.gamma * over
        np.maximum(new_prices, 0.0, out=new_prices)
        self.prices = new_prices
