"""Experiment configuration for the packet-level simulator.

One dataclass carries every scheme's knobs so that a run is fully
described by (topology, workload, SimConfig, seed).  Defaults follow
§6.2 where the paper specifies them (allocator period 10 µs, gamma
0.4, threshold 0.01, 20/30 µs control RTOs, 40 Gbit/s allocator links)
and the cited schemes' own papers elsewhere (DCTCP K=65 @ 10 G,
pFabric ~2xBDP buffers and aggressive RTO, CoDel scaled to datacenter
RTTs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SimConfig", "SCHEMES"]

#: the five compared schemes of §6.5 plus plain TCP as a substrate.
SCHEMES = ("flowtune", "dctcp", "pfabric", "sfqcodel", "xcp", "tcp")


@dataclass
class SimConfig:
    """All tunables for one packet-level simulation run."""

    scheme: str = "flowtune"

    # --- queues -------------------------------------------------------
    queue_capacity_packets: int = 256
    ecn_threshold_packets: int = 65          # DCTCP K for 10 Gbit/s
    pfabric_queue_packets: int = 24          # ~2xBDP at 10 G / 22 µs
    codel_target: float = 5e-3               # ns2 CoDel default target
    codel_interval: float = 100e-3           # ns2 CoDel default interval
    sfq_buckets: int = 64                    # sfqCoDel hash buckets
    sfq_overflow: str = "fattest"            # shared-buffer drop policy

    # --- window transports ---------------------------------------------
    initial_cwnd: float = 4.0                # packets (ns2-era IW)
    min_rto: float = 45e-6                   # datacenter minRTO (pFabric)
    max_rto: float = 20e-3
    dctcp_g: float = 1.0 / 16.0
    cubic_c: float = 0.4
    cubic_beta: float = 0.7
    pfabric_rto: float = 60e-6               # ~3 x 4-hop RTT
    pfabric_cwnd_packets: float = 18.0       # line-rate BDP cap
    pfabric_probe_after: int = 5             # timeouts before probe mode
    xcp_initial_cwnd: float = 2.0

    # --- Flowtune control plane (§6.2) ---------------------------------
    allocator_period: float = 10e-6
    allocator_gamma: float = 0.4
    update_threshold: float = 0.01
    #: window during the pre-allocation TCP phase; the first rate
    #: update lands ~2 RTTs in, so this bounds the unscheduled burst.
    flowtune_initial_cwnd: float = 2.0
    #: capacity fraction reserved for traffic the allocator does not
    #: schedule on data links: reverse-path ACKs (~64 B per 1518 B
    #: data packet ~ 4.2 %) plus control frames.  Without it, paced
    #: traffic + ACKs persistently oversubscribe busy host links.
    allocator_capacity_margin: float = 0.05
    rate_expiry: float = 0.0                 # 0 disables TCP fallback
    control_rto: float = 30e-6
    allocator_link_gbps: float = 40.0
    allocator_link_delay: float = 1.5e-6

    # --- environment ----------------------------------------------------
    host_delay: float = 2e-6                 # folded into edge links
    throughput_window: float = 0.0           # >0 enables fig.4 sampling

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; one of {SCHEMES}")

    def for_scheme(self, scheme: str) -> "SimConfig":
        """Copy with a different scheme name."""
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; one of {SCHEMES}")
        return replace(self, scheme=scheme)
