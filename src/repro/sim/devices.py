"""Hosts and switches for the packet simulator.

Packets carry their full route (a tuple of :class:`~repro.sim.link.Link`
objects) and a hop index, so switches forward with a single array
lookup — the simulator analogue of source routing, appropriate because
Flowtune assumes the allocator knows each flow's path (§7) and ECMP
pins flows to paths.
"""

from __future__ import annotations

from .packet import Packet

__all__ = ["Device", "Host", "Switch"]


class Device:
    """Anything a link can deliver packets to."""

    def receive(self, packet: Packet):
        raise NotImplementedError


class Switch(Device):
    """Forwards along the packet's embedded route."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def receive(self, packet):
        packet.hop += 1
        packet.route[packet.hop].send(packet)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Switch({self.name})"


class Host(Device):
    """An endpoint: dispatches packets to per-flow transport agents.

    ``senders``/``receivers`` are keyed by flow id; the optional
    ``control_agent`` handles Flowtune control-plane packets.
    """

    __slots__ = ("name", "host_id", "senders", "receivers",
                 "control_agent", "stats")

    def __init__(self, name, host_id, stats=None):
        self.name = name
        self.host_id = host_id
        self.senders = {}
        self.receivers = {}
        self.control_agent = None
        self.stats = stats

    def receive(self, packet):
        if packet.kind == Packet.CONTROL:
            if self.control_agent is not None:
                self.control_agent.on_packet(packet)
            return
        flow_id = packet.flow.flow_id
        if packet.kind == Packet.DATA:
            receiver = self.receivers.get(flow_id)
            if receiver is not None:
                receiver.on_data(packet)
        else:  # ACK
            sender = self.senders.get(flow_id)
            if sender is not None:
                sender.on_ack(packet)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Host({self.name})"
