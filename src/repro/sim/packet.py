"""Packets and simulated flows.

One packet class serves every scheme: the scheme-specific header
fields (pFabric priority, ECN bits, XCP feedback, control payloads)
are plain slots — a faithful mirror of how ns2 composes headers, and
``__slots__`` keeps the per-packet footprint small at millions of
events per run.
"""

from __future__ import annotations

__all__ = ["Packet", "SimFlow", "MSS_BYTES", "DATA_HEADER_BYTES",
           "ACK_BYTES", "packets_for"]

#: TCP maximum segment size (payload bytes per full data packet).
MSS_BYTES = 1460
#: Ethernet+IP+TCP header bytes added to each data segment.
DATA_HEADER_BYTES = 40 + 18
#: Size of a pure ACK (or control ACK) on the wire.
ACK_BYTES = 64


def packets_for(size_bytes):
    """Number of MSS-sized segments needed for ``size_bytes``."""
    return max(1, -(-int(size_bytes) // MSS_BYTES))


class Packet:
    """A simulated packet; header fields are scheme-specific slots."""

    __slots__ = (
        "flow", "seq", "size_bytes", "kind", "route", "hop",
        "priority", "ecn_ce", "ece", "sent_time", "enqueued_at",
        "queue_delay", "is_retransmit",
        "ack_seq", "ack_cum",
        "xcp_cwnd_bytes", "xcp_rtt", "xcp_feedback",
        "payload",
    )

    DATA = 0
    ACK = 1
    CONTROL = 2

    def __init__(self, flow, seq, size_bytes, kind, route):
        self.flow = flow
        self.seq = seq
        self.size_bytes = size_bytes
        self.kind = kind
        self.route = route        # tuple of Link objects
        self.hop = -1             # index of the link just traversed
        self.priority = 0.0       # pFabric: lower = more urgent
        self.ecn_ce = False       # congestion experienced (marked)
        self.ece = False          # receiver echo of CE
        self.sent_time = 0.0
        self.enqueued_at = 0.0
        self.queue_delay = 0.0    # accumulated queueing across hops
        self.is_retransmit = False
        self.ack_seq = -1         # selective ack: the seq this acks
        self.ack_cum = 0          # cumulative ack: next expected seq
        self.xcp_cwnd_bytes = 0.0
        self.xcp_rtt = 0.0
        self.xcp_feedback = 0.0   # bytes of window change, router-clamped
        self.payload = None       # control messages

    def __repr__(self):  # pragma: no cover - debugging aid
        kinds = {0: "DATA", 1: "ACK", 2: "CTRL"}
        fid = self.flow.flow_id if self.flow is not None else None
        return (f"Packet({kinds.get(self.kind)}, flow={fid}, "
                f"seq={self.seq}, hop={self.hop})")


class SimFlow:
    """A flow(let) in the packet simulator, with FCT bookkeeping."""

    __slots__ = (
        "flow_id", "src", "dst", "size_bytes", "n_packets", "arrival",
        "route", "reverse_route", "start_time", "finish_time",
        "first_packet_time", "bytes_delivered", "weight",
    )

    def __init__(self, flow_id, src, dst, size_bytes, arrival,
                 route=None, reverse_route=None, weight=1.0):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_bytes = float(size_bytes)
        self.n_packets = packets_for(size_bytes)
        self.arrival = float(arrival)
        self.route = route
        self.reverse_route = reverse_route
        self.start_time = None
        self.finish_time = None
        self.first_packet_time = None
        self.bytes_delivered = 0
        self.weight = weight

    def segment_bytes(self, seq):
        """Wire size of data segment ``seq`` (last one may be short)."""
        if seq < self.n_packets - 1:
            return MSS_BYTES + DATA_HEADER_BYTES
        tail = int(self.size_bytes) - (self.n_packets - 1) * MSS_BYTES
        return max(1, tail) + DATA_HEADER_BYTES

    @property
    def fct(self):
        """Flow completion time: arrival to last byte delivered."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival

    @property
    def n_hops(self):
        return len(self.route) if self.route is not None else 0

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"SimFlow({self.flow_id}, {self.src}->{self.dst}, "
                f"{self.n_packets}pkts)")
