"""Packet-level experiment harnesses for the §6 simulations.

Three entry points:

* :func:`build_network` — a ready network for any scheme, with the
  Flowtune control plane (allocator node + per-host agents) wired up
  when the scheme is ``flowtune``.
* :func:`convergence_experiment` — the fig. 4 scenario: five senders to
  one receiver; a flow joins every 10 ms, then one leaves every 10 ms;
  per-flow throughput sampled in 100 µs windows.
* :func:`fct_experiment` — the figs. 8-11 scenario: Poisson flowlet
  churn from a Facebook workload at a target load; returns the
  :class:`~repro.sim.stats.RunStats` with FCTs, queueing delays and
  drops.

Scale knobs default to values a Python event loop can sustain; the
benchmarks pass larger ones (see ``benchmarks/_scale.py``).
"""

from __future__ import annotations

from ..control.allocator_node import AllocatorNode
from ..control.endpoint import HostControlAgent
from ..topology.clos import TwoTierClos
from ..workloads.distributions import WORKLOADS
from ..workloads.generator import PoissonFlowletGenerator
from .config import SimConfig
from .network import PacketNetwork

__all__ = ["build_network", "convergence_experiment", "fct_experiment",
           "run_arrivals"]


def build_network(scheme, topology=None, config=None, **config_overrides):
    """Construct a :class:`PacketNetwork` (+ control plane if Flowtune)."""
    if topology is None:
        topology = TwoTierClos(n_racks=3, hosts_per_rack=8, n_spines=2)
    if config is None:
        config = SimConfig(scheme=scheme, **config_overrides)
    else:
        config = config.for_scheme(scheme)
    network = PacketNetwork(topology, config)
    if scheme == "flowtune":
        AllocatorNode(network)
        for host in network.hosts:
            HostControlAgent(network, host)
    return network


def convergence_experiment(scheme, n_senders=5, join_interval=10e-3,
                           topology=None, config=None,
                           flow_gbits=2.0, **config_overrides):
    """Fig. 4: staircase join/leave of long flows sharing one receiver.

    Returns ``(network, flow_ids)``; per-flow series come from
    ``network.stats.throughput_series``.  ``flow_gbits`` bounds each
    flow's size (it must outlive its active period at line rate).
    """
    config_overrides.setdefault("throughput_window", 100e-6)
    network = build_network(scheme, topology=topology, config=config,
                            **config_overrides)
    receiver_host = 0
    flow_ids = []
    senders = {}

    def start_one(index):
        flow = network.make_flow(f"conv{index}", index + 1, receiver_host,
                                 flow_gbits * 1e9 / 8.0)
        senders[index] = network.start_flow(flow)

    def stop_one(index):
        sender = senders.get(index)
        if sender is not None and not sender.done:
            sender.abort()

    for i in range(n_senders):
        flow_ids.append(f"conv{i}")
        network.sim.at(i * join_interval, start_one, i)
    for i in range(n_senders):
        network.sim.at((n_senders + i) * join_interval, stop_one, i)
    total = 2 * n_senders * join_interval
    network.run_until(total)
    return network, flow_ids


def run_arrivals(network, arrivals, t_end, drain=5e-3, max_events=None):
    """Schedule flowlet arrivals, run to ``t_end`` + drain, return stats."""
    sim = network.sim

    def admit(arrival):
        flow = network.make_flow(arrival.flow_id, arrival.src, arrival.dst,
                                 arrival.size_bytes, arrival=arrival.time)
        network.start_flow(flow)

    for arrival in arrivals:
        sim.at(arrival.time, admit, arrival)
    network.run_until(t_end + drain, max_events=max_events)
    return network.stats


def fct_experiment(scheme, workload="web", load=0.6, duration=20e-3,
                   drain=10e-3, seed=0, topology=None, config=None,
                   max_events=None, **config_overrides):
    """Figs. 8-11 runs: Poisson churn at a target load for one scheme.

    Returns ``(network, stats, duration)``.  The same ``seed`` yields
    the same arrival sequence for every scheme, so per-flow FCTs are
    directly comparable (the paper's speedup ratios).
    """
    network = build_network(scheme, topology=topology, config=config,
                            **config_overrides)
    topology = network.topology
    dist = WORKLOADS[workload]() if isinstance(workload, str) else workload
    generator = PoissonFlowletGenerator(
        dist, n_hosts=topology.n_hosts, load=load,
        host_capacity_gbps=topology.host_capacity, seed=seed)
    arrivals = generator.arrivals_until(duration)
    network.start_queue_sampler()  # fig. 9's sampled-length methodology
    stats = run_arrivals(network, arrivals, duration, drain=drain,
                         max_events=max_events)
    return network, stats, duration
