"""Simulated links: a transmitter + queue + propagation delay.

A link drains its queue one packet at a time at the configured rate
(store-and-forward), then delivers to the downstream device after the
propagation delay.  Queueing delay — the fig. 9 metric — is accumulated
*per packet* (time from enqueue to start of transmission), which is
strictly more precise than the paper's 1 ms queue-length sampling.
"""

from __future__ import annotations

from .packet import Packet

__all__ = ["Link"]


class Link:
    """One directed link; owns its output queue."""

    __slots__ = ("sim", "name", "index", "rate_bps", "delay", "queue",
                 "dst_device", "busy", "tx_bytes", "tx_packets", "xcp")

    def __init__(self, sim, name, index, rate_bps, delay, queue,
                 dst_device):
        self.sim = sim
        self.name = name
        self.index = index
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.queue = queue
        self.dst_device = dst_device
        self.busy = False
        self.tx_bytes = 0
        self.tx_packets = 0
        self.xcp = None  # optional XcpController

    def send(self, packet: Packet):
        """Entry point for upstream devices."""
        admitted = self.queue.enqueue(packet, self.sim.now)
        if admitted and not self.busy:
            self._start_next()

    def _start_next(self):
        packet = self.queue.dequeue(self.sim.now)
        if packet is None:
            self.busy = False
            return
        self.busy = True
        packet.queue_delay += self.sim.now - packet.enqueued_at
        if self.xcp is not None:
            self.xcp.on_forward(packet, self.queue.bytes_queued, self.sim.now)
        tx_time = packet.size_bytes * 8.0 / self.rate_bps
        self.sim.after(tx_time, self._tx_done, packet)

    def _tx_done(self, packet):
        self.tx_bytes += packet.size_bytes
        self.tx_packets += 1
        self.sim.after(self.delay, self.dst_device.receive, packet)
        self._start_next()

    @property
    def dropped_bytes(self):
        return self.queue.stats.dropped_bytes

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.rate_bps/1e9:.0f}Gbps)"
