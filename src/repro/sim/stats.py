"""Run-level measurement collection for the packet simulator.

Gathers exactly what the paper's figures need:

* per-flow FCTs (fig. 8, fig. 11),
* per-packet accumulated queueing delay grouped by path length
  (fig. 9's 2-hop / 4-hop split),
* dropped bytes per second (fig. 10),
* optional per-flow throughput time series at a sampling window
  (fig. 4's 100 µs convergence plots).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RunStats"]


class RunStats:
    """Accumulators shared by all agents of one simulation run."""

    def __init__(self, throughput_window=None):
        self.flows = {}
        self.queue_delay_by_hops = {}
        #: path queueing delays from periodically *sampled* queue
        #: lengths — the paper's §6.5 methodology ("collected queue
        #: lengths ... every 1 ms"); misses sub-interval microbursts
        #: by construction, unlike the per-packet accounting above.
        self.sampled_path_delay_by_hops = {}
        self.delivered_bytes = 0.0
        self.throughput_window = throughput_window
        self._throughput = {}  # flow_id -> {window index -> bytes}
        self.control_bytes_to_allocator = 0.0
        self.control_bytes_from_allocator = 0.0
        self.control_messages = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def register_flow(self, flow):
        self.flows[flow.flow_id] = flow

    def record_delivery(self, packet, now):
        """Called by receivers for every *new* data packet delivered."""
        flow = packet.flow
        hops = flow.n_hops
        self.queue_delay_by_hops.setdefault(hops, []).append(
            packet.queue_delay)
        payload = packet.size_bytes
        self.delivered_bytes += payload
        if self.throughput_window:
            window = int(now / self.throughput_window)
            series = self._throughput.setdefault(flow.flow_id, {})
            series[window] = series.get(window, 0.0) + payload

    # ------------------------------------------------------------------
    # figure extracts
    # ------------------------------------------------------------------
    def completed_flows(self):
        return [f for f in self.flows.values() if f.finish_time is not None]

    def fct_seconds(self):
        """flow_id -> FCT for completed flows."""
        return {f.flow_id: f.fct for f in self.completed_flows()}

    def p99_queue_delay(self, hops):
        """99th-percentile accumulated queueing delay for a path length."""
        samples = self.queue_delay_by_hops.get(hops)
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples), 99))

    def record_path_sample(self, hops, delay):
        self.sampled_path_delay_by_hops.setdefault(hops, []).append(delay)

    def p99_sampled_queue_delay(self, hops):
        """p99 path queueing from sampled lengths (paper's fig. 9)."""
        samples = self.sampled_path_delay_by_hops.get(hops)
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples), 99))

    def dropped_bytes(self, links):
        return float(sum(link.dropped_bytes for link in links))

    def drop_gbps(self, links, duration):
        """Dropped data per second in Gbit/s (fig. 10's y-axis)."""
        if duration <= 0:
            return 0.0
        return self.dropped_bytes(links) * 8.0 / duration / 1e9

    def throughput_series(self, flow_id, t_end):
        """(times, gbps) arrays for one flow (fig. 4)."""
        window = self.throughput_window
        if not window:
            raise ValueError("run was not configured with a throughput window")
        series = self._throughput.get(flow_id, {})
        n_windows = int(t_end / window) + 1
        gbps = np.zeros(n_windows)
        for index, byte_count in series.items():
            if index < n_windows:
                gbps[index] = byte_count * 8.0 / window / 1e9
        times = (np.arange(n_windows) + 0.5) * window
        return times, gbps

    def completion_fraction(self):
        if not self.flows:
            return 1.0
        return len(self.completed_flows()) / len(self.flows)
