"""Build a packet-level network from a topology + scheme config.

Responsible for: instantiating hosts/switches/links with the scheme's
queue discipline, folding the §6.2 host processing delay into edge
links (so RTTs come out at ~14 µs / ~22 µs without per-packet
overhead events), attaching XCP controllers, wiring the optional
Flowtune allocator device to every spine over dedicated 40 Gbit/s
links, and starting flows with the scheme's transport.
"""

from __future__ import annotations

from ..topology.graph import LinkKind
from .config import SimConfig
from .devices import Host, Switch
from .engine import Simulator
from .link import Link
from .packet import SimFlow
from .queues import (DropTailQueue, EcnQueue, PFabricQueue, SfqCoDelQueue,
                     XcpController)
from .stats import RunStats

__all__ = ["PacketNetwork"]


class PacketNetwork:
    """A live simulated network for one experiment run."""

    def __init__(self, topology, config: SimConfig | None = None,
                 sim: Simulator | None = None, stats: RunStats | None = None):
        self.topology = topology
        self.config = config if config is not None else SimConfig()
        self.sim = sim if sim is not None else Simulator()
        self.stats = stats if stats is not None else RunStats(
            throughput_window=self.config.throughput_window or None)
        self.hosts = [Host(f"h{i}", i, self.stats)
                      for i in range(topology.n_hosts)]
        self.switches = {}
        for rack in range(topology.n_racks):
            name = f"tor{rack}"
            self.switches[name] = Switch(name)
        for spine in range(topology.n_spines):
            name = f"spine{spine}"
            self.switches[name] = Switch(name)
        self.links = [self._build_link(spec) for spec in topology.links]
        if self.config.scheme == "xcp":
            self._attach_xcp()
        # Flowtune control-plane attachments (filled by attach_allocator).
        self.allocator_device = None
        self._allocator_uplinks = {}    # spine -> Link (spine->allocator)
        self._allocator_downlinks = {}  # spine -> Link (allocator->spine)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _device_by_name(self, name):
        if name.startswith("h"):
            return self.hosts[int(name[1:])]
        return self.switches[name]

    def _make_queue(self):
        cfg = self.config
        scheme = cfg.scheme
        if scheme == "dctcp":
            return EcnQueue(cfg.queue_capacity_packets,
                            cfg.ecn_threshold_packets)
        if scheme == "pfabric":
            return PFabricQueue(cfg.pfabric_queue_packets)
        if scheme == "sfqcodel":
            return SfqCoDelQueue(cfg.queue_capacity_packets,
                                 n_buckets=cfg.sfq_buckets,
                                 target=cfg.codel_target,
                                 interval=cfg.codel_interval,
                                 overflow=cfg.sfq_overflow)
        # flowtune, xcp, tcp: plain FIFO
        return DropTailQueue(cfg.queue_capacity_packets)

    def _build_link(self, spec):
        # §6.2: servers add 2 µs processing; folding it into the edge
        # links reproduces the 14 µs / 22 µs RTTs with zero extra events.
        delay = spec.delay
        if spec.kind in (LinkKind.HOST_UP, LinkKind.HOST_DOWN):
            delay += self.config.host_delay
        return Link(self.sim, f"{spec.src}->{spec.dst}", spec.index,
                    spec.capacity * 1e9, delay, self._make_queue(),
                    self._device_by_name(spec.dst))

    def _attach_xcp(self):
        for link in self.links:
            controller = XcpController(link.rate_bps)
            link.xcp = controller
            self._schedule_xcp_tick(controller)

    def _schedule_xcp_tick(self, controller):
        def tick():
            interval = controller.end_interval(self.sim.now)
            self.sim.after(interval, tick, daemon=True)
        # Periodic control ticks must not keep the simulation alive.
        self.sim.after(controller.interval, tick, daemon=True)

    # ------------------------------------------------------------------
    # flows
    # ------------------------------------------------------------------
    def route_links(self, src, dst, flow_id=0):
        return tuple(self.links[i]
                     for i in self.topology.route(src, dst, flow_id))

    def make_flow(self, flow_id, src, dst, size_bytes, arrival=None):
        flow = SimFlow(flow_id, src, dst, size_bytes,
                       self.sim.now if arrival is None else arrival,
                       route=self.route_links(src, dst, flow_id),
                       reverse_route=self.route_links(dst, src, flow_id))
        self.stats.register_flow(flow)
        return flow

    def start_flow(self, flow: SimFlow):
        """Create sender/receiver agents for ``flow`` and begin."""
        from ..transport import make_receiver, make_sender
        receiver = make_receiver(self, flow)
        self.hosts[flow.dst].receivers[flow.flow_id] = receiver
        sender = make_sender(self, flow)
        self.hosts[flow.src].senders[flow.flow_id] = sender
        sender.start()
        return sender

    # ------------------------------------------------------------------
    # Flowtune allocator attachment
    # ------------------------------------------------------------------
    def attach_allocator(self, allocator_device):
        """Wire an allocator device to every spine (§6.2: 40 G links)."""
        cfg = self.config
        self.allocator_device = allocator_device
        for spine in range(self.topology.n_spines):
            name = f"spine{spine}"
            up = Link(self.sim, f"{name}->allocator", -1,
                      cfg.allocator_link_gbps * 1e9,
                      cfg.allocator_link_delay,
                      DropTailQueue(cfg.queue_capacity_packets),
                      allocator_device)
            down = Link(self.sim, f"allocator->{name}", -1,
                        cfg.allocator_link_gbps * 1e9,
                        cfg.allocator_link_delay,
                        DropTailQueue(cfg.queue_capacity_packets),
                        self.switches[name])
            self._allocator_uplinks[spine] = up
            self._allocator_downlinks[spine] = down

    def control_route_to_allocator(self, host):
        """host -> ToR -> spine -> allocator (spine by host hash)."""
        topo = self.topology
        rack = topo.rack_of(host)
        spine = host % topo.n_spines
        return (self.links[topo.host_up_link(host)],
                self.links[topo.fabric_up_link(rack, spine)],
                self._allocator_uplinks[spine])

    def control_route_from_allocator(self, host):
        """allocator -> spine -> ToR -> host (same spine choice)."""
        topo = self.topology
        rack = topo.rack_of(host)
        spine = host % topo.n_spines
        return (self._allocator_downlinks[spine],
                self.links[topo.fabric_down_link(rack, spine)],
                self.links[topo.host_down_link(host)])

    # ------------------------------------------------------------------
    # queue-length sampling (the paper's fig. 9 methodology)
    # ------------------------------------------------------------------
    def start_queue_sampler(self, interval=100e-6, paths_per_sample=32,
                            seed=0):
        """Periodically sample active flows' path queueing delays.

        §6.5 collects queue lengths every 1 ms and infers path
        queueing; this sampler sums each sampled route's instantaneous
        per-link delays (queued bytes / rate).  The default interval is
        tighter than the paper's because our runs are milliseconds, not
        seconds.
        """
        rng = __import__("random").Random(seed)

        def sample():
            active = [f for f in self.stats.flows.values()
                      if f.start_time is not None and f.finish_time is None]
            if active:
                chosen = active if len(active) <= paths_per_sample else \
                    rng.sample(active, paths_per_sample)
                for flow in chosen:
                    delay = sum(link.queue.bytes_queued * 8.0 / link.rate_bps
                                for link in flow.route)
                    self.stats.record_path_sample(flow.n_hops, delay)
            self.sim.after(interval, sample, daemon=True)

        self.sim.after(interval, sample, daemon=True)

    # ------------------------------------------------------------------
    # run helpers
    # ------------------------------------------------------------------
    def run_until(self, t_end, max_events=None):
        return self.sim.run_until(t_end, max_events=max_events)

    def total_dropped_bytes(self):
        return sum(link.dropped_bytes for link in self.links)
