"""Packet-level event simulator: the reproduction's ns2 stand-in."""

from .config import SCHEMES, SimConfig
from .devices import Device, Host, Switch
from .engine import Simulator, Timer
from .link import Link
from .network import PacketNetwork
from .packet import (ACK_BYTES, DATA_HEADER_BYTES, MSS_BYTES, Packet,
                     SimFlow, packets_for)
from .queues import (CoDelState, DropTailQueue, EcnQueue, PFabricQueue,
                     QueueStats, SfqCoDelQueue, XcpController)
from .stats import RunStats

__all__ = ["Simulator", "Timer", "Packet", "SimFlow", "packets_for",
           "MSS_BYTES", "ACK_BYTES", "DATA_HEADER_BYTES", "Link",
           "Device", "Host", "Switch", "PacketNetwork", "RunStats",
           "SimConfig", "SCHEMES", "DropTailQueue", "EcnQueue",
           "PFabricQueue", "SfqCoDelQueue", "CoDelState", "XcpController",
           "QueueStats"]
