"""Per-port queue disciplines for every compared scheme (§6.5).

Each link owns one queue instance.  The queue decides admission
(drop/mark) at enqueue and ordering at dequeue:

* :class:`DropTailQueue` — plain FIFO with a byte/packet cap (TCP,
  Flowtune, and the substrate for XCP's controller).
* :class:`EcnQueue` — DropTail plus DCTCP's single-threshold marking:
  CE is set on arrivals that see queue occupancy >= K packets.
* :class:`PFabricQueue` — the pFabric switch: tiny buffer; when full,
  the *lowest-priority* (largest remaining size) packet is evicted in
  favour of higher-priority arrivals; dequeue serves the
  highest-priority packet (earliest-arrived among ties).
* :class:`SfqCoDelQueue` — stochastic fair queueing (flow-hashed
  buckets served deficit-round-robin) with a CoDel instance per
  bucket, ns2's ``sfqCoDel``.

XCP needs no special queueing (FIFO) but a per-link *controller*; that
lives in :class:`XcpController` and is attached to the link.
"""

from __future__ import annotations

from collections import deque

from .packet import Packet

__all__ = ["QueueStats", "DropTailQueue", "EcnQueue", "PFabricQueue",
           "CoDelState", "SfqCoDelQueue", "XcpController"]


class QueueStats:
    """Shared drop/occupancy accounting (per link)."""

    __slots__ = ("enqueued_packets", "enqueued_bytes", "dropped_packets",
                 "dropped_bytes", "marked_packets")

    def __init__(self):
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.marked_packets = 0

    def record_drop(self, packet):
        self.dropped_packets += 1
        self.dropped_bytes += packet.size_bytes

    def record_enqueue(self, packet):
        self.enqueued_packets += 1
        self.enqueued_bytes += packet.size_bytes


class DropTailQueue:
    """FIFO with a packet-count cap."""

    def __init__(self, capacity_packets=256):
        self.capacity_packets = int(capacity_packets)
        self._queue = deque()
        self.bytes_queued = 0
        self.stats = QueueStats()

    def __len__(self):
        return len(self._queue)

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Admit ``packet``; returns False (and counts a drop) if not."""
        if len(self._queue) >= self.capacity_packets:
            self.stats.record_drop(packet)
            return False
        packet.enqueued_at = now
        self._queue.append(packet)
        self.bytes_queued += packet.size_bytes
        self.stats.record_enqueue(packet)
        return True

    def dequeue(self, now: float):
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.bytes_queued -= packet.size_bytes
        return packet


class EcnQueue(DropTailQueue):
    """DropTail + DCTCP threshold marking (mark if occupancy >= K)."""

    def __init__(self, capacity_packets=256, mark_threshold_packets=65):
        super().__init__(capacity_packets)
        self.mark_threshold_packets = int(mark_threshold_packets)

    def enqueue(self, packet, now):
        if len(self._queue) >= self.mark_threshold_packets:
            packet.ecn_ce = True
            self.stats.marked_packets += 1
        return super().enqueue(packet, now)


class PFabricQueue:
    """pFabric's priority-drop, priority-dequeue switch queue.

    ``priority`` is the flow's remaining size when the packet was sent
    — smaller is more urgent.  ACKs get priority 0 (never evicted in
    practice).  The buffer is deliberately tiny (2 x BDP in the paper).
    """

    def __init__(self, capacity_packets=24):
        self.capacity_packets = int(capacity_packets)
        self._queue = []           # small; linear scans are fine
        self.bytes_queued = 0
        self.stats = QueueStats()
        self._arrival_counter = 0

    def __len__(self):
        return len(self._queue)

    def enqueue(self, packet, now):
        if len(self._queue) >= self.capacity_packets:
            # Evict the worst (highest priority value, latest arrival).
            worst_index = None
            worst_key = (packet.priority, -1)  # the arrival itself
            for i, (key, queued) in enumerate(self._queue):
                if key > worst_key:
                    worst_key = key
                    worst_index = i
            if worst_index is None:
                self.stats.record_drop(packet)
                return False
            _, evicted = self._queue.pop(worst_index)
            self.bytes_queued -= evicted.size_bytes
            self.stats.record_drop(evicted)
        packet.enqueued_at = now
        self._arrival_counter += 1
        self._queue.append(((packet.priority, self._arrival_counter), packet))
        self.bytes_queued += packet.size_bytes
        self.stats.record_enqueue(packet)
        return True

    def dequeue(self, now):
        if not self._queue:
            return None
        best_index = 0
        best_key = self._queue[0][0]
        for i in range(1, len(self._queue)):
            if self._queue[i][0] < best_key:
                best_key = self._queue[i][0]
                best_index = i
        _, packet = self._queue.pop(best_index)
        self.bytes_queued -= packet.size_bytes
        return packet


class CoDelState:
    """One CoDel AQM instance (Nichols & Jacobson, CACM 2012).

    Drop-at-dequeue controlled by packet sojourn time: once sojourn
    stays above ``target`` for ``interval``, drop and tighten the next
    drop time by ``interval / sqrt(count)``.
    """

    __slots__ = ("target", "interval", "first_above_time", "drop_next",
                 "count", "dropping")

    def __init__(self, target, interval):
        self.target = target
        self.interval = interval
        self.first_above_time = 0.0
        self.drop_next = 0.0
        self.count = 0
        self.dropping = False

    def should_drop(self, sojourn, now):
        """CoDel control law; returns True if this packet should drop."""
        if sojourn < self.target:
            self.first_above_time = 0.0
            self.dropping = False
            return False
        if self.first_above_time == 0.0:
            self.first_above_time = now + self.interval
            return False
        if now < self.first_above_time:
            return False
        if not self.dropping:
            self.dropping = True
            self.count = max(1, self.count - 2 if self.count > 2 else 1)
            self.drop_next = now + self.interval / (self.count ** 0.5)
            return True
        if now >= self.drop_next:
            self.count += 1
            self.drop_next = now + self.interval / (self.count ** 0.5)
            return True
        return False


class SfqCoDelQueue:
    """ns2's sfqCoDel: flow-hashed buckets, DRR service, CoDel each.

    Parameters follow CoDel but are exposed so datacenter-scaled values
    (§6.2's RTTs are microseconds, not WAN milliseconds) can be used.
    """

    def __init__(self, capacity_packets=512, n_buckets=1024,
                 target=100e-6, interval=1e-3, quantum_bytes=1514,
                 overflow="tail"):
        if overflow not in ("tail", "fattest"):
            raise ValueError("overflow must be 'tail' or 'fattest'")
        self.capacity_packets = int(capacity_packets)
        self.n_buckets = int(n_buckets)
        self.target = target
        self.interval = interval
        self.quantum_bytes = quantum_bytes
        self.overflow = overflow
        self._buckets = {}          # bucket id -> deque of packets
        self._codel = {}            # bucket id -> CoDelState
        self._active = deque()      # DRR order of bucket ids
        self._active_set = set()    # O(1) membership for _active
        self._deficit = {}
        self._total_packets = 0
        self.bytes_queued = 0
        self.stats = QueueStats()

    def __len__(self):
        return self._total_packets

    def _bucket_of(self, packet):
        flow = packet.flow
        key = flow.flow_id if flow is not None else -1
        if not isinstance(key, int):
            key = hash(key)
        # Knuth multiplicative hash spreads sequential flow ids.
        return (key * 2654435761) % self.n_buckets

    def enqueue(self, packet, now):
        if self._total_packets >= self.capacity_packets:
            if self.overflow == "tail":
                # ns2-style shared-buffer overflow: the arrival drops,
                # whichever flow it belongs to — this is what turns
                # medium flows' final packets into timeouts (§6.5).
                self.stats.record_drop(packet)
                return False
            # fq_codel-style: evict from the fattest bucket instead.
            fattest = max(self._buckets, key=lambda b: len(self._buckets[b]),
                          default=None)
            if fattest is None:
                self.stats.record_drop(packet)
                return False
            victim = self._buckets[fattest].pop()
            self._total_packets -= 1
            self.bytes_queued -= victim.size_bytes
            self.stats.record_drop(victim)
        bucket = self._bucket_of(packet)
        queue = self._buckets.get(bucket)
        if queue is None:
            queue = self._buckets[bucket] = deque()
            self._codel[bucket] = CoDelState(self.target, self.interval)
        if bucket not in self._active_set:
            self._deficit[bucket] = self.quantum_bytes
            self._active.append(bucket)
            self._active_set.add(bucket)
        packet.enqueued_at = now
        queue.append(packet)
        self._total_packets += 1
        self.bytes_queued += packet.size_bytes
        self.stats.record_enqueue(packet)
        return True

    def _deactivate_head(self):
        bucket = self._active.popleft()
        self._active_set.discard(bucket)

    def dequeue(self, now):
        while self._active:
            bucket = self._active[0]
            queue = self._buckets.get(bucket)
            if not queue:
                self._deactivate_head()
                continue
            if self._deficit[bucket] <= 0:
                self._deficit[bucket] += self.quantum_bytes
                self._active.rotate(-1)
                continue
            codel = self._codel[bucket]
            packet = queue.popleft()
            self._total_packets -= 1
            self.bytes_queued -= packet.size_bytes
            sojourn = now - packet.enqueued_at
            if codel.should_drop(sojourn, now):
                self.stats.record_drop(packet)
                continue  # CoDel dropped it; try the next packet
            self._deficit[bucket] -= packet.size_bytes
            if not queue:
                self._deactivate_head()
            return packet
        return None


class XcpController:
    """Per-link XCP efficiency + fairness controller (Katabi et al.).

    Runs in control intervals of roughly the average RTT.  Each
    interval computes the aggregate feedback

        phi = alpha * spare_bytes - beta * queue_bytes,

    and per-packet feedback scale factors (xi) from the *previous*
    interval's traffic, applied to packets forwarded in the next one.
    The router writes ``min(packet feedback so far, own feedback)``
    into the header — the bottleneck wins.
    """

    ALPHA = 0.4
    BETA = 0.226
    GAMMA_SHUFFLE = 0.1

    def __init__(self, capacity_bps, initial_interval=50e-6):
        self.capacity_bps = capacity_bps
        self.interval = initial_interval
        # accumulators for the running interval
        self._input_bytes = 0.0
        self._rtt_weighted = 0.0
        self._sum_inv = 0.0         # sum of rtt^2 * size / cwnd  (xi_p)
        self._sum_rtt_size = 0.0    # sum of rtt * size           (xi_n)
        self._n_packets = 0
        self._min_queue_bytes = float("inf")
        # factors computed from the finished interval
        self._xi_pos = 0.0
        self._xi_neg = 0.0
        self._interval_start = 0.0

    def on_forward(self, packet, queue_bytes, now):
        """Called for each data packet the link transmits."""
        if packet.kind != Packet.DATA:
            return
        size = packet.size_bytes
        rtt = max(packet.xcp_rtt, 1e-6)
        cwnd = max(packet.xcp_cwnd_bytes, size)
        self._input_bytes += size
        self._rtt_weighted += rtt * size
        self._sum_inv += rtt * rtt * size / cwnd
        self._sum_rtt_size += rtt * size
        self._n_packets += 1
        self._min_queue_bytes = min(self._min_queue_bytes, queue_bytes)
        # Apply the factors from the previous interval.
        positive = self._xi_pos * rtt * rtt * size / cwnd
        negative = self._xi_neg * rtt * size
        feedback = positive - negative
        if packet.xcp_feedback == 0.0 or feedback < packet.xcp_feedback:
            packet.xcp_feedback = feedback

    def end_interval(self, now):
        """Close the interval; compute next xi factors; returns the
        new interval length (avg RTT, clamped)."""
        duration = max(now - self._interval_start, 1e-9)
        if self._n_packets:
            mean_rtt = self._rtt_weighted / max(self._input_bytes, 1.0)
            self.interval = min(max(mean_rtt, 20e-6), 10e-3)
        input_rate = self._input_bytes / duration
        spare = self.capacity_bps / 8.0 - input_rate          # bytes/s
        queue = (0.0 if self._min_queue_bytes == float("inf")
                 else self._min_queue_bytes)
        phi = (self.ALPHA * spare * self.interval
               - self.BETA * queue)                            # bytes
        shuffle = max(0.0, self.GAMMA_SHUFFLE * self._input_bytes
                      - abs(phi))
        pos_pool = shuffle + max(phi, 0.0)
        neg_pool = shuffle + max(-phi, 0.0)
        self._xi_pos = (pos_pool / (self.interval * self._sum_inv)
                        if self._sum_inv > 0 else 0.0) * self.interval
        self._xi_neg = (neg_pool / self._sum_rtt_size
                        if self._sum_rtt_size > 0 else 0.0)
        # reset accumulators
        self._input_bytes = 0.0
        self._rtt_weighted = 0.0
        self._sum_inv = 0.0
        self._sum_rtt_size = 0.0
        self._n_packets = 0
        self._min_queue_bytes = float("inf")
        self._interval_start = now
        return self.interval
