"""Discrete-event simulation engine (the ns2 stand-in's core loop).

A single binary heap of ``(time, sequence, callback, args)`` entries.
The sequence number breaks ties deterministically (FIFO among
same-time events), which keeps every experiment bit-reproducible for a
given seed.

Cancellable timers are implemented with generation counters on the
caller's side (see :class:`Timer`): cancelling just bumps the
generation so the stale heap entry becomes a no-op — cheaper than
removing from the middle of a heap, and the standard trick in
high-event-rate simulators.
"""

from __future__ import annotations

import heapq

__all__ = ["Simulator", "Timer"]


class Simulator:
    """Event loop with absolute-time scheduling.

    *Daemon* events (periodic allocator/XCP ticks) do not keep the
    simulation alive: :meth:`run` stops once only daemon events remain,
    the same semantics as daemon threads.  :meth:`run_until` is purely
    time-bounded and processes daemons as long as real work may still
    appear.
    """

    def __init__(self):
        self._heap = []
        self._sequence = 0
        self._live = 0  # non-daemon events outstanding
        self.now = 0.0
        self.events_processed = 0

    def at(self, time, callback, *args, daemon=False):
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past "
                             f"({time} < {self.now})")
        self._sequence += 1
        heapq.heappush(self._heap,
                       (time, self._sequence, daemon, callback, args))
        if not daemon:
            self._live += 1

    def after(self, delay, callback, *args, daemon=False):
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        self.at(self.now + delay, callback, *args, daemon=daemon)

    def run_until(self, t_end, max_events=None):
        """Process events with time <= ``t_end``; returns events run."""
        processed = 0
        heap = self._heap
        while heap and heap[0][0] <= t_end:
            time, _, daemon, callback, args = heapq.heappop(heap)
            if not daemon:
                self._live -= 1
            self.now = time
            callback(*args)
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if not heap or heap[0][0] > t_end:
            self.now = max(self.now, t_end)
        self.events_processed += processed
        return processed

    def run(self, max_events=None):
        """Run until only daemon events remain; returns events run."""
        processed = 0
        heap = self._heap
        while heap and self._live > 0:
            time, _, daemon, callback, args = heapq.heappop(heap)
            if not daemon:
                self._live -= 1
            self.now = time
            callback(*args)
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        self.events_processed += processed
        return processed

    @property
    def pending(self):
        """Non-daemon events outstanding (what keeps :meth:`run` going)."""
        return self._live


class Timer:
    """A restartable one-shot timer (retransmission timeouts etc.).

    ``restart`` supersedes any armed instance; ``cancel`` disarms.  The
    callback fires only if the generation at scheduling time is still
    current when the event pops.
    """

    __slots__ = ("sim", "callback", "_generation", "armed", "expires_at",
                 "daemon")

    def __init__(self, sim: Simulator, callback, daemon=False):
        self.sim = sim
        self.callback = callback
        self._generation = 0
        self.armed = False
        self.expires_at = None
        self.daemon = daemon

    def restart(self, delay):
        self._generation += 1
        self.armed = True
        self.expires_at = self.sim.now + delay
        self.sim.after(delay, self._fire, self._generation,
                       daemon=self.daemon)

    def cancel(self):
        self._generation += 1
        self.armed = False
        self.expires_at = None

    def _fire(self, generation):
        if generation != self._generation:
            return  # superseded or cancelled
        self.armed = False
        self.callback()
