"""Three-tier Clos fabrics — the §7 "Scaling to larger networks" case.

The paper's allocator targets two-tier pods; §7 asks whether the
FlowBlock/LinkBlock abstraction generalizes "beyond a few thousand
endpoints [where] some networks add a third tier of spine switches
that connects two-tier pods".  This module provides that fabric so the
NUM core (which is topology-agnostic — it only sees link indices) can
be exercised on it, and so the open question can be studied
quantitatively: :meth:`ThreeTierClos.pod_block_coupling` measures how
many cross-pod links a pod-level block partitioning would share, the
quantity that §7 says makes the two-tier partitioning break down.

Topology: ``n_pods`` pods, each a two-tier leaf-spine (racks x hosts,
pod spines), joined by a core layer.  Every pod spine connects to
``n_core // n_spines``... — concretely we use the folded-Clos wiring
where core switch ``c`` connects to pod spine ``c % n_spines`` of
every pod, the Jupiter/fat-tree arrangement.
"""

from __future__ import annotations

import zlib

import numpy as np
import numpy.typing as npt

from .graph import LinkKind, Topology

__all__ = ["ThreeTierClos"]


class ThreeTierClos(Topology):
    """A fat-tree-style three-tier fabric with deterministic ECMP.

    Hosts are numbered globally; host ``i`` is in pod
    ``i // (racks_per_pod * hosts_per_rack)``.  Intra-pod routes are
    the familiar 2-hop / 4-hop Clos paths; cross-pod routes take 6
    hops: host -> ToR -> pod spine -> core -> pod spine -> ToR -> host.

    Link layout extends the two-tier ranges with core up/down links;
    core links are classified FABRIC_UP/FABRIC_DOWN by direction so
    LinkBlock-style groupings remain expressible.
    """

    def __init__(self, n_pods: int = 2, racks_per_pod: int = 2,
                 hosts_per_rack: int = 4, n_spines: int = 2,
                 n_core: int | None = None, host_capacity: float = 10.0,
                 fabric_capacity: float | None = None,
                 core_capacity: float | None = None,
                 link_delay: float = 1.5e-6,
                 host_delay: float = 2.0e-6) -> None:
        super().__init__()
        if n_pods < 2:
            raise ValueError("a three-tier fabric needs at least 2 pods")
        self.n_pods = int(n_pods)
        self.racks_per_pod = int(racks_per_pod)
        self.hosts_per_rack = int(hosts_per_rack)
        self.n_spines = int(n_spines)
        self.n_core = int(n_core) if n_core is not None else self.n_spines
        if self.n_core % self.n_spines:
            raise ValueError("n_core must be a multiple of n_spines")
        self.host_capacity = float(host_capacity)
        if fabric_capacity is None:
            fabric_capacity = host_capacity * hosts_per_rack / n_spines
        self.fabric_capacity = float(fabric_capacity)
        if core_capacity is None:
            core_capacity = (self.fabric_capacity * racks_per_pod
                             / (self.n_core // self.n_spines))
        self.core_capacity = float(core_capacity)
        self.link_delay = float(link_delay)
        self.host_delay = float(host_delay)
        self.n_racks = self.n_pods * self.racks_per_pod
        self.n_hosts = self.n_racks * self.hosts_per_rack
        self.hosts_per_pod = self.racks_per_pod * self.hosts_per_rack

        # Ranges mirror TwoTierClos, then core links:
        #   [0, H)               host -> ToR
        #   [H, 2H)              ToR -> host
        #   [2H, 2H+R*S)         ToR -> pod spine
        #   [.., +R*S)           pod spine -> ToR
        #   [.., +P*S*K)         pod spine -> core   (K = n_core/n_spines)
        #   [.., +P*S*K)         core -> pod spine
        for host in range(self.n_hosts):
            rack = host // self.hosts_per_rack
            self.add_link(f"h{host}", f"tor{rack}", self.host_capacity,
                          self.link_delay, LinkKind.HOST_UP)
        for host in range(self.n_hosts):
            rack = host // self.hosts_per_rack
            self.add_link(f"tor{rack}", f"h{host}", self.host_capacity,
                          self.link_delay, LinkKind.HOST_DOWN)
        for rack in range(self.n_racks):
            pod = rack // self.racks_per_pod
            for spine in range(self.n_spines):
                self.add_link(f"tor{rack}", f"pspine{pod}.{spine}",
                              self.fabric_capacity, self.link_delay,
                              LinkKind.FABRIC_UP)
        for rack in range(self.n_racks):
            pod = rack // self.racks_per_pod
            for spine in range(self.n_spines):
                self.add_link(f"pspine{pod}.{spine}", f"tor{rack}",
                              self.fabric_capacity, self.link_delay,
                              LinkKind.FABRIC_DOWN)
        per_spine_core = self.n_core // self.n_spines
        for pod in range(self.n_pods):
            for spine in range(self.n_spines):
                for k in range(per_spine_core):
                    core = spine * per_spine_core + k
                    self.add_link(f"pspine{pod}.{spine}", f"core{core}",
                                  self.core_capacity, self.link_delay,
                                  LinkKind.FABRIC_UP)
        for pod in range(self.n_pods):
            for spine in range(self.n_spines):
                for k in range(per_spine_core):
                    core = spine * per_spine_core + k
                    self.add_link(f"core{core}", f"pspine{pod}.{spine}",
                                  self.core_capacity, self.link_delay,
                                  LinkKind.FABRIC_DOWN)

    # ------------------------------------------------------------------
    # index arithmetic
    # ------------------------------------------------------------------
    def pod_of(self, host: int) -> int:
        return host // self.hosts_per_pod

    def rack_of(self, host: int) -> int:
        return host // self.hosts_per_rack

    def host_up_link(self, host: int) -> int:
        return host

    def host_down_link(self, host: int) -> int:
        return self.n_hosts + host

    def tor_spine_link(self, rack: int, spine: int) -> int:
        return 2 * self.n_hosts + rack * self.n_spines + spine

    def spine_tor_link(self, rack: int, spine: int) -> int:
        return (2 * self.n_hosts + self.n_racks * self.n_spines
                + rack * self.n_spines + spine)

    def _core_base(self):
        return 2 * self.n_hosts + 2 * self.n_racks * self.n_spines

    def spine_core_link(self, pod: int, spine: int, k: int) -> int:
        per_spine = self.n_core // self.n_spines
        return (self._core_base()
                + (pod * self.n_spines + spine) * per_spine + k)

    def core_spine_link(self, pod: int, spine: int, k: int) -> int:
        per_spine = self.n_core // self.n_spines
        total = self.n_pods * self.n_spines * per_spine
        return (self._core_base() + total
                + (pod * self.n_spines + spine) * per_spine + k)

    @staticmethod
    def _mix(*values):
        key = 0
        for value in values:
            if not isinstance(value, int):
                value = zlib.crc32(str(value).encode())
            key = (key * 2654435761 + value + 0x9E3779B9) & 0xFFFFFFFF
        key ^= key >> 13
        return key

    def route(self, src_host: int, dst_host: int,
              flow_id: object = 0) -> npt.NDArray[np.int64]:
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        src_rack, dst_rack = self.rack_of(src_host), self.rack_of(dst_host)
        if src_rack == dst_rack:
            return np.array([self.host_up_link(src_host),
                             self.host_down_link(dst_host)], dtype=np.int64)
        src_pod, dst_pod = self.pod_of(src_host), self.pod_of(dst_host)
        spine = self._mix(src_host, dst_host, flow_id) % self.n_spines
        if src_pod == dst_pod:
            return np.array([
                self.host_up_link(src_host),
                self.tor_spine_link(src_rack, spine),
                self.spine_tor_link(dst_rack, spine),
                self.host_down_link(dst_host),
            ], dtype=np.int64)
        per_spine = self.n_core // self.n_spines
        k = self._mix(flow_id, src_pod, dst_pod) % per_spine
        return np.array([
            self.host_up_link(src_host),
            self.tor_spine_link(src_rack, spine),
            self.spine_core_link(src_pod, spine, k),
            self.core_spine_link(dst_pod, spine, k),
            self.spine_tor_link(dst_rack, spine),
            self.host_down_link(dst_host),
        ], dtype=np.int64)

    def candidate_routes(self, src_host: int, dst_host: int,
                         ) -> list[npt.NDArray[np.int64]]:
        """All equal-cost paths ECMP may hash a flow onto.

        One path intra-rack, one per pod spine intra-pod, and one per
        (spine, core-uplink) pair cross-pod.  :meth:`route` always
        returns an element of this list.
        """
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        src_rack, dst_rack = self.rack_of(src_host), self.rack_of(dst_host)
        if src_rack == dst_rack:
            return [np.array([self.host_up_link(src_host),
                              self.host_down_link(dst_host)],
                             dtype=np.int64)]
        src_pod, dst_pod = self.pod_of(src_host), self.pod_of(dst_host)
        if src_pod == dst_pod:
            return [np.array([self.host_up_link(src_host),
                              self.tor_spine_link(src_rack, spine),
                              self.spine_tor_link(dst_rack, spine),
                              self.host_down_link(dst_host)],
                             dtype=np.int64)
                    for spine in range(self.n_spines)]
        per_spine = self.n_core // self.n_spines
        return [np.array([self.host_up_link(src_host),
                          self.tor_spine_link(src_rack, spine),
                          self.spine_core_link(src_pod, spine, k),
                          self.core_spine_link(dst_pod, spine, k),
                          self.spine_tor_link(dst_rack, spine),
                          self.host_down_link(dst_host)], dtype=np.int64)
                for spine in range(self.n_spines)
                for k in range(per_spine)]

    # ------------------------------------------------------------------
    # the §7 open question, quantified
    # ------------------------------------------------------------------
    def pod_block_coupling(self) -> float:
        """Fraction of a pod-block's links shared with other pods.

        §7: "the links going into and out of a pod are used by all
        servers in a pod, so splitting a pod into multiple blocks
        creates expensive updates".  This returns (core links used by a
        pod) / (all upward links a pod-block would own) — the share of
        LinkBlock state that cross-pod FlowBlocks would contend on.
        """
        per_spine = self.n_core // self.n_spines
        core_links = self.n_spines * per_spine
        pod_up_links = (self.hosts_per_pod
                        + self.racks_per_pod * self.n_spines + core_links)
        return core_links / pod_up_links

    def six_hop_rtt(self) -> float:
        """Cross-pod RTT with the same delay accounting as two-tier."""
        return 2 * (6 * self.link_delay + 2 * self.host_delay)
