"""Datacenter topologies and routing for the Flowtune reproduction."""

from .clos import HOST_DELAY_S, LINK_DELAY_S, TwoTierClos, paper_topology
from .graph import LinkKind, LinkSpec, Topology
from .three_tier import ThreeTierClos

__all__ = ["Topology", "LinkSpec", "LinkKind", "TwoTierClos",
           "ThreeTierClos", "paper_topology", "LINK_DELAY_S",
           "HOST_DELAY_S"]
