"""Generic topology description shared by the allocator and simulators.

A topology is a set of *directed* links with capacities and
propagation delays, plus a routing function that maps (source host,
destination host, flow id) to a sequence of link indices.  Directed
links are the unit the NUM formulation prices, and they map one-to-one
onto the output queues of the packet simulator.

Capacities are expressed in Gbit/s throughout the experiments: it
keeps NUM prices and Hessians O(1) in float64 and makes the float32
real-time variants viable, exactly the scaling concern a C
implementation would have.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np
import numpy.typing as npt

from ..core.network import LinkSet

__all__ = ["LinkKind", "LinkSpec", "Topology"]


class LinkKind(Enum):
    """Direction of a link in the Clos fabric (drives LinkBlocks, §5)."""

    HOST_UP = "host_up"        # server -> ToR
    FABRIC_UP = "fabric_up"    # ToR -> spine
    FABRIC_DOWN = "fabric_down"  # spine -> ToR
    HOST_DOWN = "host_down"    # ToR -> server
    CONTROL = "control"        # spine <-> allocator attachment


@dataclass(frozen=True)
class LinkSpec:
    """One directed link: endpoints are opaque node names."""

    index: int
    src: str
    dst: str
    capacity: float          # Gbit/s
    delay: float             # seconds (propagation)
    kind: LinkKind

    @property
    def is_upward(self):
        return self.kind in (LinkKind.HOST_UP, LinkKind.FABRIC_UP)

    @property
    def is_downward(self):
        return self.kind in (LinkKind.HOST_DOWN, LinkKind.FABRIC_DOWN)


class Topology:
    """Base class: a list of :class:`LinkSpec` plus host bookkeeping.

    Subclasses populate ``links`` and implement :meth:`route`.
    """

    def __init__(self):
        self.links: list[LinkSpec] = []
        self.n_hosts = 0

    def add_link(self, src: str, dst: str, capacity: float, delay: float,
                 kind: LinkKind) -> int:
        spec = LinkSpec(len(self.links), src, dst, float(capacity),
                        float(delay), kind)
        self.links.append(spec)
        return spec.index

    @property
    def n_links(self) -> int:
        return len(self.links)

    def link_set(self) -> LinkSet:
        """The :class:`~repro.core.network.LinkSet` view for NUM."""
        return LinkSet(
            np.array([link.capacity for link in self.links]),
            names=[f"{link.src}->{link.dst}" for link in self.links],
        )

    def route(self, src_host: int, dst_host: int,
              flow_id: object = 0) -> npt.NDArray[np.int64]:
        """Return the link-index array for a flow (ECMP-stable)."""
        raise NotImplementedError

    def path_delay(self, route: npt.ArrayLike) -> float:
        """One-way propagation along ``route`` (excl. host processing)."""
        return float(sum(self.links[i].delay for i in route))

    def bisection_capacity(self) -> float:
        """Sum of host access-link capacity — the paper's "network
        capacity" denominator for control-overhead fractions."""
        return float(sum(link.capacity for link in self.links
                         if link.kind is LinkKind.HOST_UP))

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(n_hosts={self.n_hosts}, "
                f"n_links={self.n_links})")
