"""Two-tier (leaf-spine) Clos topologies, §6.2 of the paper.

The evaluation topology is "a two-tier full-bisection topology with 4
spine switches connected to 9 racks of 16 servers each, where servers
are connected with a 10 Gbit/s link" — the pFabric topology.  Full
bisection with 16 x 10G hosts per rack and 4 spines means each
ToR-spine link carries 40 Gbit/s.

Link delays follow §6.2: links contribute 1.5 µs, servers 2 µs of
processing each; the resulting RTTs (~14 µs for 2-hop, ~22 µs for
4-hop) are matched by the packet simulator's delay accounting.

Routing is ECMP by a deterministic flow-id hash: all packets of one
flow use one spine (no reordering), different flows spread across
spines — the paper's assumption that Flowtune is *given* each flow's
path (§7).
"""

from __future__ import annotations

import zlib

import numpy as np
import numpy.typing as npt

from .graph import LinkKind, Topology

__all__ = ["TwoTierClos", "paper_topology"]

# §6.2 constants.
LINK_DELAY_S = 1.5e-6
HOST_DELAY_S = 2.0e-6


class TwoTierClos(Topology):
    """A leaf-spine fabric with deterministic ECMP routing.

    Hosts are numbered ``0 .. n_racks*hosts_per_rack - 1``; host ``i``
    lives in rack ``i // hosts_per_rack``.

    Parameters
    ----------
    n_racks, hosts_per_rack, n_spines:
        Fabric shape.  Full bisection requires ``fabric_capacity *
        n_spines >= host_capacity * hosts_per_rack``.
    host_capacity, fabric_capacity:
        Gbit/s of server access links and ToR-spine links.  When
        ``fabric_capacity`` is None it is sized for exact full
        bisection.
    link_delay:
        One-way propagation per link (seconds).
    oversubscription:
        Convenience divisor applied to the computed fabric capacity
        (2.0 means a 2:1 oversubscribed fabric); only used when
        ``fabric_capacity`` is None.
    """

    def __init__(self, n_racks: int = 9, hosts_per_rack: int = 16,
                 n_spines: int = 4, host_capacity: float = 10.0,
                 fabric_capacity: float | None = None,
                 link_delay: float = LINK_DELAY_S,
                 host_delay: float = HOST_DELAY_S,
                 oversubscription: float = 1.0) -> None:
        super().__init__()
        if n_racks < 1 or hosts_per_rack < 1 or n_spines < 1:
            raise ValueError("topology dimensions must be positive")
        if oversubscription <= 0:
            raise ValueError("oversubscription must be positive")
        self.n_racks = int(n_racks)
        self.hosts_per_rack = int(hosts_per_rack)
        self.n_spines = int(n_spines)
        self.n_hosts = self.n_racks * self.hosts_per_rack
        self.host_capacity = float(host_capacity)
        if fabric_capacity is None:
            fabric_capacity = (host_capacity * hosts_per_rack
                               / n_spines / oversubscription)
        self.fabric_capacity = float(fabric_capacity)
        self.link_delay = float(link_delay)
        self.host_delay = float(host_delay)

        # Link layout (contiguous ranges make index arithmetic cheap):
        #   [0, H)                      host -> ToR      (HOST_UP)
        #   [H, 2H)                     ToR  -> host     (HOST_DOWN)
        #   [2H, 2H + R*S)              ToR  -> spine    (FABRIC_UP)
        #   [2H + R*S, 2H + 2*R*S)      spine -> ToR     (FABRIC_DOWN)
        for host in range(self.n_hosts):
            rack = host // self.hosts_per_rack
            self.add_link(f"h{host}", f"tor{rack}", self.host_capacity,
                          self.link_delay, LinkKind.HOST_UP)
        for host in range(self.n_hosts):
            rack = host // self.hosts_per_rack
            self.add_link(f"tor{rack}", f"h{host}", self.host_capacity,
                          self.link_delay, LinkKind.HOST_DOWN)
        for rack in range(self.n_racks):
            for spine in range(self.n_spines):
                self.add_link(f"tor{rack}", f"spine{spine}",
                              self.fabric_capacity, self.link_delay,
                              LinkKind.FABRIC_UP)
        for rack in range(self.n_racks):
            for spine in range(self.n_spines):
                self.add_link(f"spine{spine}", f"tor{rack}",
                              self.fabric_capacity, self.link_delay,
                              LinkKind.FABRIC_DOWN)

    # ------------------------------------------------------------------
    # link-index arithmetic
    # ------------------------------------------------------------------
    def rack_of(self, host: int) -> int:
        return host // self.hosts_per_rack

    def host_up_link(self, host: int) -> int:
        return host

    def host_down_link(self, host: int) -> int:
        return self.n_hosts + host

    def fabric_up_link(self, rack: int, spine: int) -> int:
        return 2 * self.n_hosts + rack * self.n_spines + spine

    def fabric_down_link(self, rack: int, spine: int) -> int:
        return (2 * self.n_hosts + self.n_racks * self.n_spines
                + rack * self.n_spines + spine)

    def spine_for(self, src_host: int, dst_host: int,
                  flow_id: object = 0) -> int:
        """Deterministic ECMP hash — stable per flow, spread across flows.

        Uses an explicit integer mix rather than Python's ``hash`` so
        routes are reproducible across interpreter runs regardless of
        ``PYTHONHASHSEED``.
        """
        if isinstance(flow_id, int):
            fid = flow_id
        else:
            fid = zlib.crc32(str(flow_id).encode())
        key = (int(src_host) * 2654435761 + int(dst_host) * 40503
               + fid * 2246822519) & 0xFFFFFFFF
        key ^= key >> 13
        return key % self.n_spines

    def route(self, src_host: int, dst_host: int,
              flow_id: object = 0) -> npt.NDArray[np.int64]:
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        src_rack = self.rack_of(src_host)
        dst_rack = self.rack_of(dst_host)
        if src_rack == dst_rack:
            return np.array([self.host_up_link(src_host),
                             self.host_down_link(dst_host)], dtype=np.int64)
        spine = self.spine_for(src_host, dst_host, flow_id)
        return np.array([
            self.host_up_link(src_host),
            self.fabric_up_link(src_rack, spine),
            self.fabric_down_link(dst_rack, spine),
            self.host_down_link(dst_host),
        ], dtype=np.int64)

    def candidate_routes(self, src_host: int, dst_host: int,
                         ) -> list[npt.NDArray[np.int64]]:
        """All equal-cost paths ECMP may hash a flow onto.

        Intra-rack pairs have exactly one path; cross-rack pairs one
        per spine.  :meth:`route` always returns an element of this
        list (the one :meth:`spine_for` picks for the flow id), which
        is what lets an unpriced mouse keep its hash-assigned path
        when the sampling front-end later promotes it.
        """
        if src_host == dst_host:
            raise ValueError("source and destination host must differ")
        src_rack = self.rack_of(src_host)
        dst_rack = self.rack_of(dst_host)
        if src_rack == dst_rack:
            return [np.array([self.host_up_link(src_host),
                              self.host_down_link(dst_host)],
                             dtype=np.int64)]
        return [np.array([self.host_up_link(src_host),
                          self.fabric_up_link(src_rack, spine),
                          self.fabric_down_link(dst_rack, spine),
                          self.host_down_link(dst_host)], dtype=np.int64)
                for spine in range(self.n_spines)]

    # ------------------------------------------------------------------
    # block partitioning hooks (§5)
    # ------------------------------------------------------------------
    def rack_blocks(self, n_blocks: int) -> list[npt.NDArray[np.int64]]:
        """Split racks into ``n_blocks`` contiguous groups (§5 fig. 2).

        Returns a list of rack-index arrays.  Requires ``n_racks %
        n_blocks == 0`` so LinkBlocks stay equal-sized (the paper's
        "each LinkBlock contains exactly the same number of links").
        """
        if self.n_racks % n_blocks:
            raise ValueError(
                f"{n_blocks} blocks do not evenly divide {self.n_racks} racks")
        per = self.n_racks // n_blocks
        return [np.arange(b * per, (b + 1) * per) for b in range(n_blocks)]

    def upward_link_block(self, racks: npt.ArrayLike,
                          ) -> npt.NDArray[np.int64]:
        """All upward links owned by the racks of one block."""
        racks = np.asarray(racks)
        host_ids = np.concatenate([
            np.arange(r * self.hosts_per_rack, (r + 1) * self.hosts_per_rack)
            for r in racks])
        fabric = np.concatenate([
            [self.fabric_up_link(r, s) for s in range(self.n_spines)]
            for r in racks]).astype(np.int64)
        return np.concatenate([host_ids.astype(np.int64), fabric])

    def downward_link_block(self, racks: npt.ArrayLike,
                            ) -> npt.NDArray[np.int64]:
        """All downward links owned by the racks of one block."""
        racks = np.asarray(racks)
        host_ids = np.concatenate([
            self.n_hosts
            + np.arange(r * self.hosts_per_rack, (r + 1) * self.hosts_per_rack)
            for r in racks])
        fabric = np.concatenate([
            [self.fabric_down_link(r, s) for s in range(self.n_spines)]
            for r in racks]).astype(np.int64)
        return np.concatenate([host_ids.astype(np.int64), fabric])

    def two_hop_rtt(self) -> float:
        """Intra-rack RTT: 2 links + both hosts, each way (§6.2 ~14 µs)."""
        return 2 * (2 * self.link_delay + 2 * self.host_delay)

    def four_hop_rtt(self) -> float:
        """Cross-rack RTT: 4 links + both hosts, each way (§6.2 ~22 µs)."""
        return 2 * (4 * self.link_delay + 2 * self.host_delay)


def paper_topology() -> TwoTierClos:
    """The exact §6.2 evaluation fabric: 9 racks x 16 hosts, 4 spines."""
    return TwoTierClos(n_racks=9, hosts_per_rack=16, n_spines=4,
                       host_capacity=10.0)
