"""Flowlet trace recording and replay.

The paper evaluates on (private) production traces; this module gives
the reproduction the same workflow: record a generated arrival stream
once, then replay the identical flowlets across schemes, seeds or
library versions.  Traces are plain ``.npz`` files (structure-of-
arrays) so they stay compact at millions of flowlets and diff-able
with numpy alone.
"""

from __future__ import annotations

import numpy as np

from .generator import FlowletArrival

__all__ = ["FlowletTrace", "record_trace"]


class FlowletTrace:
    """An immutable, replayable sequence of flowlet arrivals."""

    def __init__(self, times, srcs, dsts, sizes, flow_ids=None):
        self.times = np.asarray(times, dtype=np.float64)
        self.srcs = np.asarray(srcs, dtype=np.int64)
        self.dsts = np.asarray(dsts, dtype=np.int64)
        self.sizes = np.asarray(sizes, dtype=np.float64)
        n = len(self.times)
        if not (len(self.srcs) == len(self.dsts) == len(self.sizes) == n):
            raise ValueError("trace arrays must have equal length")
        if n and np.any(np.diff(self.times) < 0):
            raise ValueError("trace times must be non-decreasing")
        self.flow_ids = (np.asarray(flow_ids, dtype=np.int64)
                         if flow_ids is not None
                         else np.arange(n, dtype=np.int64))

    def __len__(self):
        return len(self.times)

    def __iter__(self):
        for i in range(len(self)):
            yield FlowletArrival(int(self.flow_ids[i]),
                                 float(self.times[i]), int(self.srcs[i]),
                                 int(self.dsts[i]), float(self.sizes[i]))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path):
        np.savez_compressed(path, times=self.times, srcs=self.srcs,
                            dsts=self.dsts, sizes=self.sizes,
                            flow_ids=self.flow_ids)

    @classmethod
    def load(cls, path):
        with np.load(path) as data:
            return cls(data["times"], data["srcs"], data["dsts"],
                       data["sizes"], data["flow_ids"])

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    @property
    def duration(self):
        return float(self.times[-1] - self.times[0]) if len(self) else 0.0

    def offered_load(self, n_hosts, host_capacity_gbps):
        """Mean per-server load this trace offers (sanity checks)."""
        if self.duration <= 0:
            return 0.0
        bits = float(self.sizes.sum()) * 8.0
        return bits / (self.duration * n_hosts * host_capacity_gbps * 1e9)

    def slice(self, t_start, t_end):
        """Sub-trace with arrivals in ``[t_start, t_end)``."""
        mask = (self.times >= t_start) & (self.times < t_end)
        return FlowletTrace(self.times[mask], self.srcs[mask],
                            self.dsts[mask], self.sizes[mask],
                            self.flow_ids[mask])


def record_trace(generator, duration):
    """Materialize ``duration`` seconds of a generator into a trace."""
    arrivals = generator.arrivals_until(duration)
    return FlowletTrace(
        [a.time for a in arrivals], [a.src for a in arrivals],
        [a.dst for a in arrivals], [a.size_bytes for a in arrivals],
        [a.flow_id for a in arrivals])
