"""Workload generation: flow-size distributions + Poisson flowlet churn."""

from .distributions import (WORKLOADS, EmpiricalSizeDistribution,
                            cache_workload, hadoop_workload,
                            uniform_workload, web_workload)
from .generator import FlowletArrival, PoissonFlowletGenerator
from .traces import FlowletTrace, record_trace

__all__ = ["EmpiricalSizeDistribution", "WORKLOADS", "web_workload",
           "cache_workload", "hadoop_workload", "uniform_workload",
           "FlowletArrival", "PoissonFlowletGenerator", "FlowletTrace",
           "record_trace"]
