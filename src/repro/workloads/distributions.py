"""Flowlet-size distributions for the §6.2 workloads.

The paper draws flowlet sizes from "the Web, Cache, and Hadoop
workloads published by Facebook" (Roy et al., SIGCOMM 2015).  The raw
traces are not public, so we encode piecewise log-linear CDFs
approximating the published figures.  What the Flowtune evaluation
actually relies on is the *ordering and churn structure*:

* **Web** has the smallest mean flowlet, hence the highest flowlet
  arrival rate at a given load and the most allocator update traffic
  (§6.4: 1.13 % of capacity, the most stressful workload);
* **Cache** sits in the middle (0.57 %) — bimodal: tiny metadata
  responses plus large object transfers;
* **Hadoop** has the largest mean (0.17 %) — bulk shuffle/replication
  traffic.

Those properties hold for these approximations by construction, and
every distribution exposes its exact mean so generators can hit load
targets precisely.  DESIGN.md records this substitution.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EmpiricalSizeDistribution", "WORKLOADS", "web_workload",
           "cache_workload", "hadoop_workload", "uniform_workload"]


class EmpiricalSizeDistribution:
    """Inverse-CDF sampler over piecewise log-linear flow sizes.

    ``points`` is a sequence of ``(size_bytes, cdf)`` pairs with
    strictly increasing sizes and CDF values spanning [0, 1].
    Interpolation is linear in ``log(size)``, which matches how such
    CDFs are published (log-x axes) and keeps heavy tails heavy.
    """

    def __init__(self, name, points):
        sizes = np.array([p[0] for p in points], dtype=np.float64)
        cdf = np.array([p[1] for p in points], dtype=np.float64)
        if np.any(np.diff(sizes) <= 0):
            raise ValueError("sizes must be strictly increasing")
        if np.any(np.diff(cdf) < 0) or cdf[0] != 0.0 or cdf[-1] != 1.0:
            raise ValueError("cdf must be non-decreasing from 0 to 1")
        self.name = name
        self._log_sizes = np.log(sizes)
        self._cdf = cdf
        self.min_bytes = float(sizes[0])
        self.max_bytes = float(sizes[-1])
        self.mean_bytes = self._numeric_mean()

    def _numeric_mean(self):
        """Mean of the piecewise log-linear distribution (exact).

        Within a segment the CDF is linear in ``u = log s``, so the
        density in ``u`` is uniform and ``E[s | segment] =
        (e^{u2} - e^{u1}) / (u2 - u1)``.
        """
        total = 0.0
        for i in range(len(self._cdf) - 1):
            du = self._log_sizes[i + 1] - self._log_sizes[i]
            dp = self._cdf[i + 1] - self._cdf[i]
            if dp <= 0:
                continue
            if du < 1e-12:
                segment_mean = np.exp(self._log_sizes[i])
            else:
                segment_mean = ((np.exp(self._log_sizes[i + 1])
                                 - np.exp(self._log_sizes[i])) / du)
            total += dp * segment_mean
        return float(total)

    def sample(self, rng: np.random.Generator, n=None):
        """Draw flow sizes in bytes (scalar when ``n`` is None)."""
        u = rng.random(n)
        log_size = np.interp(u, self._cdf, self._log_sizes)
        sizes = np.exp(log_size)
        if n is None:
            return float(sizes)
        return sizes

    def quantile(self, q):
        """Inverse CDF at ``q`` (scalar or array), in bytes."""
        return np.exp(np.interp(q, self._cdf, self._log_sizes))

    def cdf_at(self, size_bytes):
        """CDF evaluated at ``size_bytes`` (scalar or array)."""
        log_s = np.log(np.maximum(np.asarray(size_bytes, dtype=np.float64),
                                  1e-9))
        return np.interp(log_s, self._log_sizes, self._cdf)

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"EmpiricalSizeDistribution({self.name!r}, "
                f"mean={self.mean_bytes:.0f}B)")


def web_workload():
    """Facebook web servers: small request/response flows, modest tail.

    Smallest mean of the three — the highest-churn workload (§6.2
    "stresses Flowtune the most").
    """
    return EmpiricalSizeDistribution("web", [
        (70, 0.0),
        (200, 0.15),
        (600, 0.40),
        (1_500, 0.60),
        (5_000, 0.80),
        (20_000, 0.92),
        (100_000, 0.975),
        (1_000_000, 0.997),
        (10_000_000, 1.0),
    ])


def cache_workload():
    """Facebook cache followers: bimodal — tiny hits, large objects."""
    return EmpiricalSizeDistribution("cache", [
        (100, 0.0),
        (400, 0.30),
        (2_000, 0.55),
        (10_000, 0.62),
        (100_000, 0.70),
        (500_000, 0.80),
        (1_000_000, 0.90),
        (5_000_000, 0.99),
        (20_000_000, 1.0),
    ])


def hadoop_workload():
    """Facebook Hadoop: bulk transfers dominate bytes; largest mean."""
    return EmpiricalSizeDistribution("hadoop", [
        (300, 0.0),
        (1_000, 0.10),
        (10_000, 0.30),
        (100_000, 0.50),
        (1_000_000, 0.75),
        (10_000_000, 0.95),
        (100_000_000, 1.0),
    ])


def uniform_workload(min_bytes=1_000, max_bytes=1_000_000):
    """Log-uniform sizes — a neutral workload for tests and examples."""
    return EmpiricalSizeDistribution(
        "uniform", [(min_bytes, 0.0), (max_bytes, 1.0)])


#: name -> factory, the three §6.2 workloads.
WORKLOADS = {
    "web": web_workload,
    "cache": cache_workload,
    "hadoop": hadoop_workload,
}
