"""Poisson flowlet arrival processes targeting a server load (§6.2).

"To model micro-bursts, flowlets follow a Poisson arrival process...
The Poisson rate at which flows enter the system is chosen to reach a
specific average server load, where 100 % load is when the rate equals
server link capacity divided by the mean flow size.  Sources and
destinations are chosen uniformly at random."

Loads are per *source server*: at load ``u`` each server originates
flowlets at rate ``u * C / E[size]`` where ``C`` is its access-link
capacity.  The aggregate process over all servers is Poisson with the
summed rate, which is how we generate it (one exponential clock for
the whole fabric, then a uniform source choice).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .distributions import EmpiricalSizeDistribution

__all__ = ["FlowletArrival", "PoissonFlowletGenerator"]


@dataclass(frozen=True)
class FlowletArrival:
    """One flowlet entering the system."""

    flow_id: int
    time: float          # seconds
    src: int             # host index
    dst: int             # host index
    size_bytes: float

    @property
    def size_bits(self):
        return self.size_bytes * 8.0


@dataclass
class PoissonFlowletGenerator:
    """Open-loop Poisson flowlet source over a host population.

    Parameters
    ----------
    workload:
        Flow-size distribution.
    n_hosts:
        Number of servers; sources and destinations are uniform over
        them (destination resampled until it differs from the source).
    load:
        Target per-server load in (0, 1]; 1.0 saturates access links.
    host_capacity_gbps:
        Server access-link capacity (the load denominator).
    seed:
        Deterministic RNG seed.
    first_flow_id:
        Starting id (ids increase by 1 per arrival).
    """

    workload: EmpiricalSizeDistribution
    n_hosts: int
    load: float
    host_capacity_gbps: float = 10.0
    seed: int = 0
    first_flow_id: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _time: float = field(init=False, default=0.0)
    _next_id: int = field(init=False)

    def __post_init__(self):
        if not 0 < self.load <= 2.0:
            raise ValueError("load must be in (0, 2] (1.0 = line rate)")
        if self.n_hosts < 2:
            raise ValueError("need at least two hosts for src != dst")
        self._rng = np.random.default_rng(self.seed)
        self._next_id = self.first_flow_id

    @property
    def per_host_rate(self):
        """Flowlet arrivals per second per server."""
        capacity_bits = self.host_capacity_gbps * 1e9
        return self.load * capacity_bits / (self.workload.mean_bytes * 8.0)

    @property
    def aggregate_rate(self):
        """Flowlet arrivals per second over the whole fabric."""
        return self.per_host_rate * self.n_hosts

    def __iter__(self):
        return self

    def __next__(self) -> FlowletArrival:
        self._time += self._rng.exponential(1.0 / self.aggregate_rate)
        src = int(self._rng.integers(self.n_hosts))
        dst = int(self._rng.integers(self.n_hosts - 1))
        if dst >= src:
            dst += 1
        size = float(self.workload.sample(self._rng))
        arrival = FlowletArrival(self._next_id, self._time, src, dst, size)
        self._next_id += 1
        return arrival

    def arrivals_until(self, t_end):
        """All arrivals with time <= ``t_end`` (list, consumes the stream)."""
        out = []
        while True:
            arrival = self.peek()
            if arrival.time > t_end:
                break
            out.append(self.take())
        return out

    # one-item lookahead so callers can interleave with other event sources
    _peeked: FlowletArrival | None = field(init=False, default=None)

    def peek(self) -> FlowletArrival:
        if self._peeked is None:
            self._peeked = next(self)
        return self._peeked

    def take(self) -> FlowletArrival:
        arrival = self.peek()
        self._peeked = None
        return arrival
