"""The allocator as a simulated device on the fabric (fig. 1 in ns2).

Attached to every spine over dedicated 40 Gbit/s links (§6.2).  All
control traffic traverses the network and is only *applied* once its
bytes arrive — the paper's ns2 fidelity requirement.  Every
``allocator_period`` (10 µs):

1. buffered, deduplicated notifications are applied to the embedded
   :class:`~repro.core.allocator.FlowtuneAllocator` (flowlet start/end);
2. one NED iteration runs, F-NORM normalizes, and the threshold filter
   picks the flows whose endpoints must hear about their new rate;
3. updates are batched per destination server into single frames
   (6 bytes per update, §6.2) and sent unreliably — rates are
   soft-state.

An ``ends-before-starts`` race (the ARQ can reorder a retransmitted
start behind an end) is handled by parking orphan ends for the next
tick.
"""

from __future__ import annotations

from ..core.ned import NedOptimizer
from ..core.normalization import FNormalizer
from ..sampling import make_scheduler
from ..sampling.scheduler import RateScheduler
from ..sim.devices import Device
from ..sim.packet import Packet
from .endpoint import control_frame_bytes
from .messages import RATE_UPDATE_BYTES

__all__ = ["AllocatorNode"]

#: Give up re-trying an orphan end after this many ticks (lost start
#: would otherwise leak a phantom removal forever).
MAX_ORPHAN_TICKS = 64


class AllocatorNode(Device):
    """The centralized allocator as a network-attached device."""

    def __init__(self, network, allocator: RateScheduler | None = None,
                 mode: str | None = None):
        self.network = network
        self.sim = network.sim
        self.config = network.config
        topology = network.topology
        if allocator is None:
            # Reserve headroom for reverse-path ACKs and control frames
            # (the allocator prices data flows only), and use
            # scale-down-only F-NORM: in the online setting, scaling
            # flows *up* the instant a flowlet departs double-books
            # links for the ~2 ticks it takes the scale-downs to reach
            # other endpoints.  Both trade a sliver of throughput for
            # the near-empty queues §6.5 measures.
            links = topology.link_set()
            links.capacity *= 1.0 - self.config.allocator_capacity_margin
            if mode is None:
                mode = getattr(self.config, "scheduler_mode", "flowtune")
            scheduler_kwargs = {}
            if mode != "ecmp":
                scheduler_kwargs = dict(
                    optimizer_cls=NedOptimizer,
                    normalizer=FNormalizer(allow_scale_up=False),
                    gamma=self.config.allocator_gamma)
            allocator = make_scheduler(
                links, mode=mode,
                update_threshold=self.config.update_threshold,
                **scheduler_kwargs)
        elif mode is not None:
            raise ValueError("pass either a constructed allocator or "
                             "mode=, not both")
        self.allocator = allocator
        self.topology = topology
        network.attach_allocator(self)
        self._seen = set()          # (host, seq) dedupe for the ARQ
        self._inbox = []            # (kind, data) to apply at next tick
        self._orphan_ends = {}      # flow_id -> remaining retries
        self._flow_src = {}         # flow_id -> source host
        self.iterations = 0
        self.name = "allocator"
        # Periodic; must not keep the simulation alive on its own.
        self.sim.after(self.config.allocator_period, self._tick,
                       daemon=True)

    # ------------------------------------------------------------------
    # packet intake
    # ------------------------------------------------------------------
    def receive(self, packet: Packet):
        payload = packet.payload
        if payload is None or payload[0] != "notify":
            return
        _, seq, host_id, kind, data = payload
        self._ack(host_id, seq)
        key = (host_id, seq)
        if key in self._seen:
            return  # ARQ duplicate
        self._seen.add(key)
        self._inbox.append((kind, data))

    def _ack(self, host_id, seq):
        route = self.network.control_route_from_allocator(host_id)
        ack = Packet(None, seq, 64, Packet.CONTROL, route)
        ack.payload = ("ctrl_ack", seq)
        ack.hop = 0
        self.network.stats.control_bytes_from_allocator += 64
        route[0].send(ack)

    # ------------------------------------------------------------------
    # the 10 µs allocation loop
    # ------------------------------------------------------------------
    def _tick(self):
        self._apply_inbox()
        if self.allocator.n_flows:
            result = self.allocator.iterate(1)
            self.iterations += 1
            self._send_updates(result.updates)
        self.sim.after(self.config.allocator_period, self._tick,
                       daemon=True)

    def _apply_inbox(self):
        """Reduce the tick's buffered events to their net effect and
        apply them as one batched ``apply_churn`` call.

        A start followed by an end in the same tick cancels out; an
        end followed by a start restarts the flow (remove-then-add).
        Ends for unknown flows are parked as orphans exactly as the
        sequential version did.
        """
        inbox, self._inbox = self._inbox, []
        retired = set()
        for flow_id, retries in list(self._orphan_ends.items()):
            inbox.append(("end", (flow_id,)))
            if retries <= 1:
                # Out of retries: without remembering the id, the
                # re-injected end below would re-park itself and the
                # orphan would never actually give up.
                del self._orphan_ends[flow_id]
                retired.add(flow_id)
            else:
                self._orphan_ends[flow_id] = retries - 1
        starts = {}        # flow_id -> (src, route), in arrival order
        ends = []
        ending = set()
        orphans = []
        for kind, data in inbox:
            if kind == "start":
                flow_id, src, dst = data
                if flow_id in starts:
                    continue  # duplicate start this tick
                if flow_id in self.allocator and flow_id not in ending:
                    continue  # already active and not being removed
                starts[flow_id] = (src,
                                   self.topology.route(src, dst, flow_id))
            else:  # "end"
                flow_id = data[0]
                if flow_id in starts:
                    # Started and ended within the tick: net no-op.
                    # The end is consumed — including an orphan retry,
                    # which would otherwise keep cancelling this id's
                    # restarts for up to MAX_ORPHAN_TICKS.  Marking it
                    # retired stops a duplicate retry later in this
                    # same inbox from re-parking the consumed orphan.
                    del starts[flow_id]
                    self._orphan_ends.pop(flow_id, None)
                    retired.add(flow_id)
                elif flow_id in self.allocator:
                    if flow_id not in ending:
                        ends.append(flow_id)
                        ending.add(flow_id)
                elif (flow_id not in self._orphan_ends
                        and flow_id not in retired):
                    orphans.append(flow_id)
        self.allocator.apply_churn(
            starts=[(flow_id, route)
                    for flow_id, (_src, route) in starts.items()],
            ends=ends)
        for flow_id in ends:
            self._flow_src.pop(flow_id, None)
            self._orphan_ends.pop(flow_id, None)
        for flow_id, (src, _route) in starts.items():
            self._flow_src[flow_id] = src
        for flow_id in orphans:
            self._orphan_ends[flow_id] = MAX_ORPHAN_TICKS

    def _send_updates(self, updates):
        if not updates:
            return
        per_host = {}
        for update in updates:
            src = self._flow_src.get(update.flow_id)
            if src is None:
                continue
            per_host.setdefault(src, []).append(
                (update.flow_id, update.rate))
        for host_id, rates in per_host.items():
            frame = control_frame_bytes(RATE_UPDATE_BYTES * len(rates))
            route = self.network.control_route_from_allocator(host_id)
            packet = Packet(None, -1, frame, Packet.CONTROL, route)
            packet.payload = ("rates", rates)
            packet.hop = 0
            self.network.stats.control_bytes_from_allocator += frame
            route[0].send(packet)
