"""Per-host control agent: flowlet notifications + rate-update intake.

Notifications (flowlet start/end) are state — their loss would leak
flows in the allocator — so they are carried over a lightweight ARQ:
sequence numbers, allocator acks, periodic retransmission (§6.2 gives
the control connections 20/30 µs RTOs; we use one configurable RTO).
Rate updates flow the other way unreliably: allocations expire and are
refreshed, so a lost update is corrected by the next threshold
crossing (or the expiry fallback).
"""

from __future__ import annotations

from ..sim.engine import Timer
from ..sim.packet import Packet
from .messages import (FLOWLET_END_BYTES, FLOWLET_START_BYTES,
                       TCP_IP_HEADER_BYTES)

__all__ = ["HostControlAgent", "control_frame_bytes"]

_ETHERNET = 18
_MIN_FRAME = 64
#: ARQ retransmissions before declaring the allocator unreachable and
#: dropping the notification (endpoints then rely on rate expiry).
MAX_RETRIES = 64


def control_frame_bytes(payload_bytes):
    """On-wire frame size for a control payload (no preamble/IFG)."""
    return max(_MIN_FRAME, payload_bytes + TCP_IP_HEADER_BYTES + _ETHERNET)


class HostControlAgent:
    """Speaks to the allocator on behalf of one server."""

    def __init__(self, network, host):
        self.network = network
        self.sim = network.sim
        self.host = host
        host.control_agent = self
        self.config = network.config
        self._route_up = network.control_route_to_allocator(host.host_id)
        self._next_seq = 0
        self._pending = {}  # seq -> (send_time, kind, data, frame_bytes)
        self._timer = Timer(self.sim, self._retransmit_due)

    # ------------------------------------------------------------------
    # sender-side wiring
    # ------------------------------------------------------------------
    def register(self, sender):
        """Hook a Flowtune sender's lifecycle to notifications."""
        sender.start_callbacks.append(self._on_flow_start)
        sender.completion_callbacks.append(self._on_flow_end)

    def _on_flow_start(self, sender):
        flow = sender.flow
        self._send_notification("start",
                                (flow.flow_id, flow.src, flow.dst),
                                FLOWLET_START_BYTES)

    def _on_flow_end(self, sender):
        self._send_notification("end", (sender.flow.flow_id,),
                                FLOWLET_END_BYTES)

    # ------------------------------------------------------------------
    # ARQ toward the allocator
    # ------------------------------------------------------------------
    def _send_notification(self, kind, data, payload_bytes):
        seq = self._next_seq
        self._next_seq += 1
        frame = control_frame_bytes(payload_bytes)
        self._pending[seq] = (self.sim.now, kind, data, frame, 0)
        self._transmit(seq, kind, data, frame)
        if not self._timer.armed:
            self._timer.restart(self.config.control_rto)

    def _transmit(self, seq, kind, data, frame):
        packet = Packet(None, seq, frame, Packet.CONTROL, self._route_up)
        packet.payload = ("notify", seq, self.host.host_id, kind, data)
        packet.hop = 0
        self.network.stats.control_bytes_to_allocator += frame
        self.network.stats.control_messages += 1
        self._route_up[0].send(packet)

    def _retransmit_due(self):
        if not self._pending:
            return
        rto = self.config.control_rto
        now = self.sim.now
        for seq, (sent, kind, data, frame, tries) in \
                list(self._pending.items()):
            if now - sent >= rto:
                if tries >= MAX_RETRIES:
                    del self._pending[seq]  # allocator unreachable
                    continue
                self._pending[seq] = (now, kind, data, frame, tries + 1)
                self._transmit(seq, kind, data, frame)
        if self._pending:
            self._timer.restart(rto)

    # ------------------------------------------------------------------
    # downlink intake
    # ------------------------------------------------------------------
    def on_packet(self, packet):
        payload = packet.payload
        if payload is None:
            return
        if payload[0] == "ctrl_ack":
            self._pending.pop(payload[1], None)
            if not self._pending:
                self._timer.cancel()
        elif payload[0] == "rates":
            for flow_id, rate_gbps in payload[1]:
                sender = self.host.senders.get(flow_id)
                if sender is not None and hasattr(sender, "set_rate"):
                    sender.set_rate(rate_gbps)
