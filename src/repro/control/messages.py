"""Control-plane message encodings and wire-byte accounting (§6.2/§6.4).

The paper: "Notifications of flowlet start, end, and rate updates are
encoded in 16, 4, and 6 bytes plus the standard TCP/IP overheads", and
§7 observes that "Ethernet has 64-byte minimum frames and preamble and
interframe gaps, which cost 84 bytes, even if only one byte is sent".
The constants here reproduce exactly that accounting, and are used by
both the fluid overhead experiments (figures 5-7) and the packet-level
control plane.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "MessageType", "ControlMessage",
    "FLOWLET_START_BYTES", "FLOWLET_END_BYTES", "FLOWLET_USAGE_BYTES",
    "RATE_UPDATE_BYTES",
    "TCP_IP_HEADER_BYTES", "ETHERNET_HEADER_BYTES", "MIN_FRAME_BYTES",
    "PREAMBLE_IFG_BYTES", "wire_bytes", "batched_wire_bytes",
]

#: §6.2 payload encodings.
FLOWLET_START_BYTES = 16
FLOWLET_END_BYTES = 4
RATE_UPDATE_BYTES = 6
#: Flowlet usage report (not in the paper's §6.2 table; the always-on
#: service lets endpoints report cumulative bytes sent, encoded as a
#: 4-byte flow id + 8-byte counter — the accounting the service's
#: paper-equivalent byte counters use for usage traffic).
FLOWLET_USAGE_BYTES = 12

#: "standard TCP/IP overheads": 20 B IPv4 + 20 B TCP.
TCP_IP_HEADER_BYTES = 40
#: Ethernet header (14) + FCS (4).
ETHERNET_HEADER_BYTES = 18
#: Minimum Ethernet frame, excluding preamble/IFG.
MIN_FRAME_BYTES = 64
#: Preamble (8) + inter-frame gap (12) — §7's "84-byte" minimum cost.
PREAMBLE_IFG_BYTES = 20


class MessageType(Enum):
    """The control-plane message kinds — the schema shared by the
    packet-level control plane (byte accounting below) and the
    always-on allocator service's binary codecs
    (:mod:`repro.service.wire` keys its admission/rate frames to
    these kinds and reuses this module's accounting for its
    paper-equivalent traffic counters)."""

    FLOWLET_START = "start"
    FLOWLET_END = "end"
    FLOWLET_USAGE = "usage"
    RATE_UPDATE = "rate"


#: payload bytes per message type.
PAYLOAD_BYTES = {
    MessageType.FLOWLET_START: FLOWLET_START_BYTES,
    MessageType.FLOWLET_END: FLOWLET_END_BYTES,
    MessageType.FLOWLET_USAGE: FLOWLET_USAGE_BYTES,
    MessageType.RATE_UPDATE: RATE_UPDATE_BYTES,
}


@dataclass(frozen=True)
class ControlMessage:
    """A single control-plane message (used by the packet simulator)."""

    kind: MessageType
    flow_id: object
    rate: float = 0.0          # Gbit/s, RATE_UPDATE only
    route: object = None       # link-index array, FLOWLET_START only
    weight: float = 1.0

    @property
    def payload_bytes(self) -> int:
        return PAYLOAD_BYTES[self.kind]


def wire_bytes(payload_bytes: int) -> int:
    """Bytes one message consumes on the wire as its own TCP segment."""
    frame = max(MIN_FRAME_BYTES,
                payload_bytes + TCP_IP_HEADER_BYTES + ETHERNET_HEADER_BYTES)
    return frame + PREAMBLE_IFG_BYTES


def batched_wire_bytes(payload_list: Iterable[int]) -> int:
    """Bytes for a batch of payloads sharing one TCP segment.

    The allocator batches all rate updates destined to one endpoint in
    an allocation round into a single segment (§7's intermediary
    optimization starts from this batching).
    """
    total_payload = sum(payload_list)
    if total_payload == 0:
        return 0
    return wire_bytes(total_payload)
