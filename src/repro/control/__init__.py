"""Flowtune's control plane: message formats, endpoint and allocator agents."""

from .allocator_node import AllocatorNode
from .endpoint import HostControlAgent, control_frame_bytes
from .intermediaries import (UpdatePlane, direct_update_plane,
                             intermediary_update_plane)
from .messages import (FLOWLET_END_BYTES, FLOWLET_START_BYTES,
                       RATE_UPDATE_BYTES, ControlMessage, MessageType,
                       batched_wire_bytes, wire_bytes)

__all__ = ["ControlMessage", "MessageType", "FLOWLET_START_BYTES",
           "FLOWLET_END_BYTES", "RATE_UPDATE_BYTES", "wire_bytes",
           "batched_wire_bytes", "AllocatorNode", "HostControlAgent",
           "control_frame_bytes", "UpdatePlane", "direct_update_plane",
           "intermediary_update_plane"]
