"""Intermediary rate-update servers — §7's NIC-scaling proposal.

§7 observes that sending a 6-8 byte rate update as its own Ethernet
frame costs ~84 bytes of wire ("a 10x overhead"), so one allocator NIC
can only feed ~89 servers at the measured 1.12 % per-server update
rate.  The proposed fix: "employ a group of intermediary servers that
handle communication to a subset of individual endpoints.  The
allocator sends an MTU to each intermediary with all updates to the
intermediary's endpoints.  The intermediary would in turn forward rate
updates to each endpoint, scaling up to a few thousand endpoints."

This module models that arithmetic exactly, so the ablation benchmark
can reproduce the ~10x scaling claim and explore the design space
(intermediary count, MTU, update rates).
"""

from __future__ import annotations

from dataclasses import dataclass

from .messages import (PREAMBLE_IFG_BYTES, RATE_UPDATE_BYTES,
                       wire_bytes)

__all__ = ["UpdatePlane", "direct_update_plane", "intermediary_update_plane"]

MTU_BYTES = 1500
_FRAME_OVERHEAD = 58 + PREAMBLE_IFG_BYTES  # TCP/IP + Ethernet + preamble


@dataclass(frozen=True)
class UpdatePlane:
    """Capacity analysis of one rate-update distribution design."""

    name: str
    #: wire bytes leaving the allocator NIC per endpoint per second.
    allocator_bytes_per_endpoint: float
    #: endpoints one allocator NIC can feed.
    endpoints_per_nic: int
    #: intermediary servers required (0 for the direct design).
    intermediaries: int

    def scaling_vs(self, other: "UpdatePlane") -> float:
        return self.endpoints_per_nic / max(other.endpoints_per_nic, 1)


def direct_update_plane(updates_per_endpoint_per_s, nic_gbps=10.0):
    """The baseline: every update is its own minimum-size frame."""
    per_update_wire = wire_bytes(RATE_UPDATE_BYTES)
    bytes_per_endpoint = updates_per_endpoint_per_s * per_update_wire
    nic_bytes = nic_gbps * 1e9 / 8.0
    return UpdatePlane(
        name="direct",
        allocator_bytes_per_endpoint=bytes_per_endpoint,
        endpoints_per_nic=int(nic_bytes // max(bytes_per_endpoint, 1e-12)),
        intermediaries=0)


def intermediary_update_plane(updates_per_endpoint_per_s, nic_gbps=10.0,
                              endpoints_per_intermediary=None,
                              intermediary_nic_gbps=10.0):
    """§7's design: MTU-batched updates relayed by intermediaries.

    The allocator ships full MTUs to intermediaries (amortizing the
    frame overhead over ~249 six-byte updates); each intermediary
    explodes them into per-endpoint minimum frames, so *its* NIC limits
    how many endpoints it can serve.
    """
    updates_per_mtu = (MTU_BYTES - _FRAME_OVERHEAD) // RATE_UPDATE_BYTES
    allocator_bytes_per_update = MTU_BYTES / updates_per_mtu
    bytes_per_endpoint = (updates_per_endpoint_per_s
                          * allocator_bytes_per_update)
    nic_bytes = nic_gbps * 1e9 / 8.0
    endpoints = int(nic_bytes // max(bytes_per_endpoint, 1e-12))

    # Each intermediary re-expands to per-endpoint frames.
    per_update_wire = wire_bytes(RATE_UPDATE_BYTES)
    intermediary_bytes = intermediary_nic_gbps * 1e9 / 8.0
    fan_out_limit = int(intermediary_bytes
                        // max(updates_per_endpoint_per_s * per_update_wire,
                               1e-12))
    if endpoints_per_intermediary is None:
        endpoints_per_intermediary = fan_out_limit
    endpoints_per_intermediary = min(endpoints_per_intermediary,
                                     fan_out_limit)
    intermediaries = -(-endpoints // max(endpoints_per_intermediary, 1))
    return UpdatePlane(
        name="intermediary",
        allocator_bytes_per_endpoint=bytes_per_endpoint,
        endpoints_per_nic=endpoints,
        intermediaries=intermediaries)
