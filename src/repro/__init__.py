"""repro — a full reproduction of Flowtune (NSDI 2017).

Flowtune performs congestion control at *flowlet* granularity: a
centralized allocator receives flowlet start/end notifications from
endpoints, solves a network utility maximization problem with the
Newton-Exact-Diagonal (NED) method, normalizes the rates to link
capacities (F-NORM), and pushes explicit rates back to endpoints.

Subpackages
-----------
``repro.core``
    NED and the compared optimizers, U/F-NORM, the allocator.
``repro.parallel``
    The FlowBlock/LinkBlock multicore partitioning (§5).
``repro.topology``
    Two-tier Clos topologies and routing.
``repro.workloads``
    Facebook Web/Cache/Hadoop flowlet-size workloads (Poisson churn).
``repro.fluid``
    Flowlet-level (fluid) simulation of allocator dynamics.
``repro.sim``
    Packet-level event simulator (ns2 stand-in).
``repro.transport``
    DCTCP, pFabric, Cubic/sfqCoDel, XCP and Flowtune endpoints.
``repro.control``
    Flowtune's in-network control plane (notifications, rate updates).
``repro.fastpass``
    Fastpass-style timeslot arbiter (throughput comparison baseline).
``repro.analysis``
    FCT/fairness/convergence metrics used by the paper's figures.
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
