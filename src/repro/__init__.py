"""repro — a full reproduction of Flowtune (NSDI 2017).

Flowtune performs congestion control at *flowlet* granularity: a
centralized allocator receives flowlet start/end notifications from
endpoints, solves a network utility maximization problem with the
Newton-Exact-Diagonal (NED) method, normalizes the rates to link
capacities (F-NORM), and pushes explicit rates back to endpoints.

The top-level namespace is the supported public API — one import
covers the common workflows::

    from repro import FlowtuneAllocator, TwoTierClos

    topo = TwoTierClos(n_racks=3, hosts_per_rack=8, n_spines=2)
    alloc = FlowtuneAllocator(topo.link_set())
    alloc.flowlet_start(0, topo.route(0, 9))
    print(alloc.iterate(50).rates)

Every resource-owning object here (:class:`MulticoreNedEngine`, the
fabrics, :class:`LocalCluster`, :class:`FlowtuneService`,
:class:`FlowtuneClient`) is a context manager with an idempotent
``close()``.

Subpackages hold the deeper surface:

``repro.core``
    NED and the compared optimizers, U/F-NORM, the allocator.
``repro.sampling``
    Sieve-style sampling: elephants priced, mice on ECMP, and the
    ``RateScheduler`` protocol / ``make_scheduler`` factory that
    unify full Flowtune, sampled Flowtune and pure ECMP.
``repro.parallel``
    The FlowBlock/LinkBlock multicore partitioning (§5).
``repro.service``
    The always-on allocator service and its wire schema.
``repro.topology``
    Two- and three-tier Clos topologies and routing.
``repro.workloads``
    Facebook Web/Cache/Hadoop flowlet-size workloads (Poisson churn).
``repro.fluid``
    Flowlet-level (fluid) simulation of allocator dynamics.
``repro.sim``
    Packet-level event simulator (ns2 stand-in).
``repro.transport``
    DCTCP, pFabric, Cubic/sfqCoDel, XCP and Flowtune endpoints.
``repro.control``
    Flowtune's in-network control plane (notifications, rate updates).
``repro.fastpass``
    Fastpass-style timeslot arbiter (throughput comparison baseline).
``repro.analysis``
    FCT/fairness/convergence metrics used by the paper's figures.
"""

__version__ = "1.1.0"

# the core allocator
from .core import (AllocationResult, AlphaFairUtility, ChurnQueue,
                   FlowtuneAllocator, FlowTable, FNormalizer, LinkSet,
                   LogUtility, NedOptimizer, RateUpdate, UNormalizer)
# the multicore engine and its fabrics
from .parallel import (FabricError, LocalCluster, MulticoreNedEngine,
                       SharedMemoryFabric, SocketFabric)
# the sampling front-end and the scheduler protocol
from .sampling import (EcmpScheduler, ElephantDetector, RateScheduler,
                       SampledAllocator, make_scheduler)
# the always-on service
from .service import (FlowtuneClient, FlowtuneService, ServiceError,
                      spawn_service)
# topologies
from .topology import ThreeTierClos, Topology, TwoTierClos, paper_topology

__all__ = [
    "__version__",
    # core
    "FlowtuneAllocator", "AllocationResult", "RateUpdate", "ChurnQueue",
    "FlowTable", "LinkSet", "NedOptimizer",
    "FNormalizer", "UNormalizer", "LogUtility", "AlphaFairUtility",
    # parallel
    "MulticoreNedEngine", "LocalCluster",
    "SharedMemoryFabric", "SocketFabric", "FabricError",
    # sampling
    "RateScheduler", "SampledAllocator", "EcmpScheduler",
    "ElephantDetector", "make_scheduler",
    # service
    "FlowtuneService", "FlowtuneClient", "ServiceError", "spawn_service",
    # topology
    "TwoTierClos", "ThreeTierClos", "Topology", "paper_topology",
]
