"""Sieve-style sampling front-end: price elephants, ECMP the mice.

Flowtune's central NUM loop scales with the number of flows it
prices.  This package bounds that number: an
:class:`ElephantDetector` watches the §6.2 usage stream, an
:class:`EcmpScheduler` gives unpriced mice hash-assigned paths and a
fair-share rate model, and :class:`SampledAllocator` composes the two
around the existing :class:`~repro.core.allocator.FlowtuneAllocator`.

All three rate-assignment schemes — full Flowtune, sampled Flowtune,
pure ECMP — implement the :class:`RateScheduler` protocol, and every
driver (fluid simulator, ns-style allocator node, allocator service)
constructs them through one door::

    from repro import make_scheduler

    scheduler = make_scheduler(topology.link_set(), mode="sampled")
"""

from __future__ import annotations

from typing import Any

from ..core.allocator import FlowtuneAllocator
from ..core.network import LinkSet
from ..core.normalization import Normalizer
from ..core.utility import Utility
from .detector import ElephantDetector
from .ecmp import EcmpAssigner, EcmpScheduler
from .sampled import SampledAllocator, replay_priced_journal
from .scheduler import RateScheduler

__all__ = ["RateScheduler", "SampledAllocator", "EcmpScheduler",
           "EcmpAssigner", "ElephantDetector", "make_scheduler",
           "replay_priced_journal", "SCHEDULER_MODES"]

#: The mode strings :func:`make_scheduler` accepts.
SCHEDULER_MODES = ("flowtune", "sampled", "ecmp")


def make_scheduler(links: LinkSet, mode: str = "flowtune",
                   *, utility: Utility | None = None,
                   optimizer_cls: type | None = None,
                   normalizer: Normalizer | None = None,
                   update_threshold: float = 0.01, gamma: float = 1.0,
                   max_route_len: int = 8,
                   optimizer_kwargs: dict[str, Any] | None = None,
                   promote_bytes: float = float(1 << 20),
                   idle_epochs: int = 100, mice_refresh: int = 4,
                   **kwargs: Any) -> RateScheduler:
    """The one construction point for every rate-assignment scheme.

    ``mode`` selects the scheme:

    * ``"flowtune"`` — the paper's allocator: every flow priced by the
      NUM optimizer (default NED) and normalized (default F-NORM).
    * ``"sampled"`` — sieve sampling: only detector-promoted elephants
      priced; mice on ECMP fair share.  ``promote_bytes``,
      ``idle_epochs`` and ``mice_refresh`` configure the front-end.
    * ``"ecmp"`` — no pricing at all; the fair-share baseline.  The
      optimizer/normalizer/detector knobs do not apply.

    The NUM knobs (``utility`` … ``optimizer_kwargs``) pass through to
    the priced allocator in the first two modes; extra keyword
    arguments pass to the selected class (e.g. ``record_priced=`` for
    ``"sampled"``).
    """
    if mode not in SCHEDULER_MODES:
        raise ValueError(
            f"unknown scheduler mode {mode!r}; pick one of "
            f"{', '.join(SCHEDULER_MODES)}")
    if mode == "ecmp":
        for name, value in (("utility", utility),
                            ("optimizer_cls", optimizer_cls),
                            ("normalizer", normalizer),
                            ("optimizer_kwargs", optimizer_kwargs)):
            if value is not None:
                raise ValueError(
                    f"{name}= does not apply to mode='ecmp' (nothing "
                    "is priced); drop it or pick a priced mode")
        return EcmpScheduler(links, update_threshold=update_threshold,
                             max_route_len=max_route_len, **kwargs)
    num_kwargs: dict[str, Any] = dict(
        utility=utility, normalizer=normalizer,
        update_threshold=update_threshold, gamma=gamma,
        max_route_len=max_route_len, optimizer_kwargs=optimizer_kwargs)
    if optimizer_cls is not None:
        num_kwargs["optimizer_cls"] = optimizer_cls
    if mode == "flowtune":
        return FlowtuneAllocator(links, **num_kwargs, **kwargs)
    return SampledAllocator(links, promote_bytes=promote_bytes,
                            idle_epochs=idle_epochs,
                            mice_refresh=mice_refresh,
                            **num_kwargs, **kwargs)
