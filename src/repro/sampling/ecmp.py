"""ECMP mice: hash-assigned paths, TCP-fair-share rate model.

In a real sieve deployment mice are not centrally scheduled at all —
they take the ECMP path their flow-id hash picks and let endpoint
congestion control find their share.  The fluid model still needs a
rate for every flow, so :class:`EcmpScheduler` models the mice as
weighted max-min-ish fair sharing: each flow gets

    ``rate_i = w_i / max_{l in route(i)} (W_l / avail_l)``

where ``W_l`` is the total weight crossing link ``l`` and ``avail_l``
the capacity left after any externally-reported (elephant) load.  The
allocation is feasible by construction — each link's load is divided
by at least its own contention ratio — and collapses to the exact
fair share on a single bottleneck.

Three properties keep this off the priced hot path when it runs inside
:class:`~repro.sampling.SampledAllocator` with 10x more mice than
elephants:

* Flows live in a **slot store** (struct-of-arrays plus a free list),
  so a churn batch costs O(batch): ended flows just return their slots,
  nothing is compacted, and no link-major index is maintained — the
  share model only ever needs the flow-major route rows.
* ``W_l`` is maintained *incrementally* under churn (a scatter over
  the churn batch, not over all flows), with a periodic exact rebuild
  so float drift cannot accumulate.
* The full per-flow recompute (the one pass that touches every mouse)
  runs every ``refresh_every`` iterates.  On the paced iterates in
  between, flows keep their last-notified rate and only *new* flows
  get a rate — estimated from the cached contention ratios, clipped
  to their path bottleneck.  Mice are latency-bound, not rate-bound
  (RepFlow's argument), so a slightly stale share costs them little.

Results are :class:`_LazySlotResult`: the per-flow notification list
(``updates``) is materialized O(changed) at iterate time, while the
full id/rate vectors are gathered only if someone reads them — like
the base class they are live views, to be consumed before further
churn.

Path assignment itself lives in :class:`EcmpAssigner`: a stable hash
onto the candidate path list the Clos topologies expose
(``candidate_routes``), identical to the topologies' own ``route``.
"""

from __future__ import annotations

import collections
import operator
import zlib
from collections.abc import Hashable, Iterable
from typing import Any

import numpy as np
import numpy.typing as npt

from ..core.allocator import (AllocationResult, RateUpdate, _NO_UPDATES,
                              threshold_update_mask)
from ..core.kernels import active as _active_kernels
from ..core.network import LinkSet

__all__ = ["EcmpScheduler", "EcmpAssigner"]

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]

_EPSILON = 1e-12

#: Exact ``W`` rebuilds every this many churn batches bound the
#: incremental float drift (each rebuild is one scatter over all
#: flows, so this trades a rare O(n) pass for exactness).
_W_REBUILD_EVERY = 256


class _LazySlotResult(AllocationResult):
    """Slot-store allocation result with O(changed) notifications.

    ``updates`` is built from the update slots captured at iterate
    time; the full ``rate_vector`` / id column are gathered from the
    store only on first access (``__getattr__`` fires exactly when the
    base-class slot is still unset).  Like the base class these lazy
    views snapshot the store at first access: consume the result
    before applying further churn.
    """

    __slots__ = ("_store", "_update_slots", "_update_mask")

    def __init__(self, store: "EcmpScheduler",
                 update_slots: npt.NDArray[np.intp] | None,
                 update_mask: npt.NDArray[np.bool_] | None = None) -> None:
        self._store = store
        # Refresh passes hand over the raw changed *mask* (at 90%+
        # churn-renotification density the flatnonzero + index gather
        # is the expensive part); the slot list is derived on demand.
        self._update_slots = update_slots
        self._update_mask = update_mask
        self._updates = None
        self._rates_dict = None
        self._flow_ids = None

    def _slots(self) -> npt.NDArray[np.intp]:
        slots = self._update_slots
        if slots is None:
            slots = self._update_slots = np.flatnonzero(self._update_mask)
        return slots

    def __getattr__(self, name: str) -> Any:
        # Only ever reached for the three lazily-gathered base slots
        # (set once here, so each materializes at most once).
        if name in ("_ids", "rate_vector", "update_indices"):
            ids, rates, update_idx = self._store._materialize(self._slots())
            self._ids = ids
            self.rate_vector = rates
            self.update_indices = update_idx
            return getattr(self, name)
        raise AttributeError(name)

    @property
    def updates(self) -> list[RateUpdate]:
        if self._updates is None:
            store = self._store
            slots = self._slots()
            self._updates = [
                RateUpdate(flow_id, rate) for flow_id, rate in
                zip(store._ids[slots].tolist(),
                    store._last[slots].tolist())]
        return self._updates


class EcmpScheduler:
    """Fair-share rate model for unpriced (ECMP-routed) flows.

    Implements the full :class:`~repro.sampling.RateScheduler`
    protocol, so it serves both as the mice half of
    :class:`~repro.sampling.SampledAllocator` and as the standalone
    ``mode="ecmp"`` baseline.

    Parameters
    ----------
    links:
        Full link capacities (ECMP models no headroom: there is no
        un-notified pricing error to absorb, only the share model).
    update_threshold:
        §6.4 notification filter, shared bit-for-bit with the priced
        path via ``threshold_update_indices``.
    refresh_every:
        Recompute every flow's share every this many iterates; in
        between, only new flows receive (estimated) rates.
    external_floor:
        Guaranteed fraction of each link the fair-share model keeps
        even under a full external reservation
        (:meth:`set_external_load`).  Without it, mice hashed onto a
        link the priced elephants already fill would be allocated
        ~zero, never register any load, and so never push the
        elephants back — a permanent-starvation fixed point of the
        sampled scheme's symmetric coupling.  Irrelevant while no
        external load is set (the standalone ECMP baseline).
    """

    wants_usage: bool = False

    def __init__(self, links: LinkSet, update_threshold: float = 0.01,
                 refresh_every: int = 1, max_route_len: int = 8,
                 external_floor: float = 0.1) -> None:
        if not 0 <= update_threshold < 1:
            raise ValueError("update_threshold must be in [0, 1)")
        if refresh_every < 1:
            raise ValueError("refresh_every must be at least 1")
        if max_route_len < 1:
            raise ValueError("max_route_len must be at least 1")
        if not 0 <= external_floor <= 1:
            raise ValueError("external_floor must be in [0, 1]")
        self.full_links = links
        self.update_threshold = float(update_threshold)
        self.refresh_every = int(refresh_every)
        self._max_route_len = int(max_route_len)
        #: Pad value for unused route cells (indexes the -inf/+inf
        #: sentinel row of the padded per-link vectors).
        self.pad_link = links.n_links
        # --- the slot store -------------------------------------------
        # Flow-major struct-of-arrays, ``_cap`` rows; freed rows go on
        # ``_free`` and are reused, so churn never moves a live row.
        # The route matrix is only as wide as the longest route seen
        # (grown on demand up to max_route_len) — the refresh gather
        # scales with it.
        cap = 1024
        self._cap = cap
        self._width = 1
        self._n = 0
        self._mat: IntArray = np.full((cap, 1), self.pad_link,
                                      dtype=np.int64)
        self._w: FloatArray = np.zeros(cap)
        # Free rows hold last=0.0 / pending=False / active=False: the
        # refresh threshold filter then never selects them (rate 0,
        # not new, never "went positive").
        self._last: FloatArray = np.zeros(cap)
        self._pending: npt.NDArray[np.bool_] = np.zeros(cap, dtype=bool)
        self._active: npt.NDArray[np.bool_] = np.zeros(cap, dtype=bool)
        self._ids: npt.NDArray[Any] = np.empty(cap, dtype=object)
        self._slot_of: dict[Hashable, int] = {}
        self._free: list[int] = list(range(cap - 1, -1, -1))
        #: High-water mark: one past the highest slot ever allocated.
        #: The refresh passes scan ``[:_top]`` instead of the full
        #: capacity (slots above it have never held a flow).
        self._top = 0
        #: Slots started since the last iterate (the paced pass only
        #: looks here, never at the whole store).
        self._new_slots: list[int] = []
        # --- the share model ------------------------------------------
        self._W: FloatArray = np.zeros(links.n_links)
        self._external: FloatArray = np.zeros(links.n_links)
        self._avail_floor: FloatArray = np.maximum(
            float(external_floor) * np.asarray(links.capacity,
                                               dtype=np.float64),
            _EPSILON)
        # capacity with the pad sentinel (+inf: pads never bottleneck)
        self._cap_padded: FloatArray = np.append(
            np.asarray(links.capacity, dtype=np.float64), np.inf)
        # W/avail with the pad sentinel (-inf: pads never worst);
        # written in place each refresh.
        self._ratio_padded: FloatArray = np.full(links.n_links + 1, -np.inf)
        self._refreshed = False
        self._slot_rates: FloatArray = self._last
        # Refresh scratch, sized with the store: the flow-major gather
        # buffer and per-row output the kernel tier writes into.
        self._gather_buf: FloatArray = np.empty(cap * 1)
        self._worst: FloatArray = np.empty(cap)
        self._iterates = 0
        self._churn_batches = 0

    # ------------------------------------------------------------------
    # churn (slot allocation + incremental W maintenance)
    # ------------------------------------------------------------------
    def flowlet_start(self, flow_id: Hashable, route: npt.ArrayLike,
                      weight: float = 1.0) -> None:
        self.apply_churn(starts=[(flow_id, route, weight)])

    def flowlet_end(self, flow_id: Hashable) -> None:
        self.apply_churn(ends=[flow_id])

    def apply_churn(self, starts: Iterable[tuple[Any, ...]] = (),
                    ends: Iterable[Hashable] = ()) -> None:
        """Batched churn with the flow table's ends-first semantics.

        ``ends`` are validated as a batch (an unknown or duplicated id
        raises ``KeyError`` with nothing applied), then freed; the
        starts are validated next, so a bad start leaves the ends done
        and no start applied — the same restart contract as
        :meth:`repro.core.FlowTable.apply_churn`.  ``W`` is patched
        from the batch itself: the ends' routes are read before their
        slots are freed, the starts' routes come with the batch.
        """
        starts = list(starts)
        ends = list(ends)
        if ends:
            self._apply_ends(ends)
        if starts:
            self._apply_starts(starts)
        self._churn_batches += 1
        if self._n == 0:
            self._W[:] = 0.0  # free exact reset
        elif self._churn_batches % _W_REBUILD_EVERY == 0:
            self._rebuild_w()

    def _apply_ends(self, ends: list[Hashable]) -> None:
        # Validate the whole batch before touching the index: the
        # itemgetter lookup is a C-speed pass that raises on the first
        # unknown id with nothing applied, and the dup check catches
        # an id listed twice.  Only then are the keys deleted (also at
        # C speed — ``map`` over the bound ``__delitem__``).
        slot_of = self._slot_of
        if len(ends) > 1 and len(set(ends)) != len(ends):
            seen: set[Hashable] = set()
            for flow_id in ends:
                if flow_id in seen:
                    raise KeyError(f"flow {flow_id!r} is not active")
                seen.add(flow_id)
        try:
            if len(ends) == 1:
                slots = [slot_of[ends[0]]]
            else:
                slots = list(operator.itemgetter(*ends)(slot_of))
        except KeyError as exc:
            raise KeyError(f"flow {exc.args[0]!r} is not active") from None
        collections.deque(map(slot_of.__delitem__, ends), maxlen=0)
        rows = np.asarray(slots, dtype=np.intp)
        mat = self._mat[rows]
        mask = mat != self.pad_link
        self._W -= np.bincount(
            mat[mask],
            weights=np.broadcast_to(self._w[rows][:, None], mat.shape)[mask],
            minlength=len(self._W))
        self._mat[rows] = self.pad_link
        self._w[rows] = 0.0
        self._last[rows] = 0.0
        self._pending[rows] = False
        self._active[rows] = False
        self._ids[rows] = None
        self._free.extend(slots)
        self._n -= len(ends)

    def _apply_starts(self, starts: list[tuple[Any, ...]]) -> None:
        k = len(starts)
        slot_of = self._slot_of
        # Columnar unpack when the batch is shape-uniform (the usual
        # case); the scalar loop only runs for mixed 2-/3-tuple
        # batches.  ``weights is None`` means "all ones" and lets the
        # scatters below skip the weight expansion entirely.
        weights: FloatArray | None
        shapes = set(map(len, starts))
        if shapes == {2}:
            ids, routes_seq = zip(*starts)
            weights = None
        elif shapes == {3}:
            ids, routes_seq, wcol = zip(*starts)
            weights = np.asarray(wcol, dtype=np.float64)
        else:
            ids_l: list[Hashable] = []
            routes_l: list[Any] = []
            weights = np.ones(k)
            for j, start in enumerate(starts):
                if len(start) == 3:
                    flow_id, route, weights[j] = start
                else:
                    flow_id, route = start
                ids_l.append(flow_id)
                routes_l.append(route)
            ids, routes_seq = tuple(ids_l), tuple(routes_l)
        if len(set(ids)) != k or not slot_of.keys().isdisjoint(ids):
            seen: set[Hashable] = set()
            for flow_id in ids:
                if flow_id in seen or flow_id in slot_of:
                    raise KeyError(f"flow {flow_id!r} is already active")
                seen.add(flow_id)
        try:
            lengths = np.fromiter(map(len, routes_seq), dtype=np.int64,
                                  count=k)
        except TypeError:
            raise ValueError(
                "route must be a non-empty 1-D sequence of links") from None
        widest = int(lengths.max())
        if lengths.min() < 1:
            raise ValueError("route must be a non-empty 1-D sequence of links")
        if widest > self._max_route_len:
            raise ValueError(f"route has {widest} hops; table supports "
                             f"{self._max_route_len}")
        arr: IntArray | None = None
        if int(lengths.min()) == widest:
            # Uniform-width batch: routes stack straight into the row
            # block, no concatenate and no padded scatter.
            stacked = np.asarray(routes_seq, dtype=np.int64)
            if stacked.ndim != 2:
                raise ValueError(
                    "route must be a non-empty 1-D sequence of links")
            arr = stacked
            flat = arr.reshape(-1)
        else:
            flat = np.concatenate(routes_seq)
            if flat.ndim != 1 or len(flat) != int(lengths.sum()):
                raise ValueError(
                    "route must be a non-empty 1-D sequence of links")
            flat = flat.astype(np.int64, copy=False)
        if flat.min() < 0 or flat.max() >= self.full_links.n_links:
            raise ValueError("route contains an unknown link index")
        if weights is not None and not np.all(weights > 0):
            raise ValueError("flow weight must be positive")
        # Validation done — allocate rows and fill.
        if widest > self._width:
            self._widen(widest)
        if len(self._free) < k:
            self._grow(self._n + k)
        slots = self._free[-k:]
        del self._free[-k:]
        top = max(slots) + 1
        if top > self._top:
            self._top = top
        rows_idx = np.asarray(slots, dtype=np.intp)
        if arr is not None and widest == self._width:
            rows = arr
        else:
            rows = np.full((k, self._width), self.pad_link, dtype=np.int64)
            if arr is not None:
                rows[:, :widest] = arr
            else:
                rows[np.arange(self._width) < lengths[:, None]] = flat
        self._mat[rows_idx] = rows
        self._w[rows_idx] = 1.0 if weights is None else weights
        self._last[rows_idx] = np.nan
        self._pending[rows_idx] = True
        self._active[rows_idx] = True
        # fromiter keeps tuple ids scalar — a slice-assign would make
        # numpy broadcast them as nested sequences.
        self._ids[rows_idx] = np.fromiter(ids, dtype=object, count=k)
        slot_of.update(zip(ids, slots))
        self._new_slots.extend(slots)
        if weights is None:
            self._W += np.bincount(flat, minlength=len(self._W))
        else:
            self._W += np.bincount(flat,
                                   weights=np.repeat(weights, lengths),
                                   minlength=len(self._W))
        self._n += k

    def _widen(self, width: int) -> None:
        mat = np.full((self._cap, width), self.pad_link, dtype=np.int64)
        mat[:, : self._width] = self._mat
        self._mat = mat
        self._width = width
        self._gather_buf = np.empty(self._cap * width)

    def _grow(self, need: int) -> None:
        new_cap = max(2 * self._cap, need)
        def enlarge(arr: np.ndarray, fill: Any) -> np.ndarray:
            out = np.full((new_cap,) + arr.shape[1:], fill, dtype=arr.dtype)
            out[: self._cap] = arr
            return out
        self._mat = enlarge(self._mat, self.pad_link)
        self._w = enlarge(self._w, 0.0)
        self._last = enlarge(self._last, 0.0)
        self._pending = enlarge(self._pending, False)
        self._active = enlarge(self._active, False)
        ids = np.empty(new_cap, dtype=object)
        ids[: self._cap] = self._ids
        self._ids = ids
        self._free.extend(range(new_cap - 1, self._cap - 1, -1))
        self._cap = new_cap
        self._gather_buf = np.empty(new_cap * self._width)
        self._worst = np.empty(new_cap)

    def _rebuild_w(self) -> None:
        mat = self._mat[: self._top]
        mask = mat != self.pad_link
        self._W = np.bincount(
            mat[mask],
            weights=np.broadcast_to(self._w[: self._top, None],
                                    mat.shape)[mask],
            minlength=len(self._W))

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def set_external_load(self, load: npt.ArrayLike | None) -> None:
        """Per-link load reserved by someone else (the priced elephants).

        Consumed at the next full refresh; pass ``None`` to clear.
        """
        if load is None:
            self._external = np.zeros(len(self._W))
        else:
            self._external = np.asarray(load, dtype=np.float64)

    def will_refresh(self) -> bool:
        """Whether the next :meth:`iterate` runs the full recompute."""
        return (not self._refreshed
                or self._iterates % self.refresh_every == 0)

    def iterate(self, n: int = 1) -> AllocationResult:
        """Assign fair-share rates; ``n`` is accepted for protocol
        compatibility (the share model has no inner iteration)."""
        full = self.will_refresh()
        self._iterates += 1
        if self._n == 0:
            self._new_slots.clear()
            return AllocationResult(flow_ids=np.empty(0, dtype=object),
                                    rate_vector=np.zeros(0))
        if full:
            avail = np.maximum(self.full_links.capacity - self._external,
                               self._avail_floor)
            np.divide(self._W, avail, out=self._ratio_padded[:-1])
            # Per-slot worst contention via the kernel tier: chunked
            # take + column maxima over the used prefix of the store
            # (free rows below the high-water mark gather the -inf
            # pad, so they fall out at rate 0).
            top = self._top
            worst = self._worst[:top]
            _active_kernels().max_link_value(
                self._ratio_padded, self._mat.reshape(-1), top,
                self._width, self._gather_buf, worst)
            np.maximum(worst, _EPSILON, out=worst)
            rates = self._w[:top] / worst
            changed = threshold_update_mask(
                rates, self._last[:top], self._pending[:top],
                self.update_threshold)
            self._slot_rates = rates
            self._refreshed = True
            self._new_slots.clear()
            return _LazySlotResult(self, None, changed)
        else:
            # Paced iterate: everyone keeps their notified rate; flows
            # that arrived since the last iterate get a first-rate
            # estimate from the cached ratios (which do not yet include
            # them), clipped to their path bottleneck so an empty
            # cached path cannot hand out an unbounded share.
            update_slots = _NO_UPDATES
            if self._new_slots:
                fresh = np.asarray(self._new_slots, dtype=np.intp)
                fresh = np.unique(fresh[self._pending[fresh]])
                if len(fresh):
                    mat = self._mat[fresh]
                    worst = np.maximum(self._ratio_padded[mat].max(axis=1),
                                       _EPSILON)
                    estimate = np.minimum(self._w[fresh] / worst,
                                          self._cap_padded[mat].min(axis=1))
                    self._last[fresh] = estimate
                    self._pending[fresh] = False
                    update_slots = fresh
            self._slot_rates = self._last
        self._new_slots.clear()
        return _LazySlotResult(self, update_slots)

    def _materialize(self, update_slots: npt.NDArray[np.intp],
                     ) -> tuple[npt.NDArray[Any], FloatArray,
                                npt.NDArray[np.intp]]:
        """Gather the store into dense (ids, rates, update_indices) —
        the O(n) tail the lazy result defers until someone reads it."""
        active = np.flatnonzero(self._active)
        ids = self._ids[active]
        rates = self._slot_rates[active]
        update_idx = np.searchsorted(active, update_slots)
        return ids, rates, update_idx

    def current_rates(self) -> dict[Any, float]:
        """Latest *notified* rate per flow (what endpoints believe)."""
        mask = self._active & ~np.isnan(self._last)
        return dict(zip(self._ids[mask].tolist(),
                        self._last[mask].tolist()))

    # ------------------------------------------------------------------
    # RateScheduler introspection
    # ------------------------------------------------------------------
    def report_usage(self, flow_id: Hashable, nbytes: float) -> None:
        """ECMP mice carry no detector — the stream is ignored."""

    def get_flows(self, flow_ids: Iterable[Hashable],
                  ) -> list[tuple[Hashable, IntArray, float]]:
        """``(flow_id, route, weight)`` for each id — O(batch), used by
        the sampled wrapper to re-home flows on promotion."""
        out = []
        for flow_id in flow_ids:
            slot = self._slot_of[flow_id]
            row = self._mat[slot]
            out.append((flow_id, row[row != self.pad_link].copy(),
                        float(self._w[slot])))
        return out

    @property
    def flow_index(self) -> dict[Hashable, int]:
        """Live flow-id -> slot mapping (read-only by convention); the
        sampled wrapper probes it on the churn hot path."""
        return self._slot_of

    @property
    def n_flows(self) -> int:
        return self._n

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._slot_of

    @property
    def links(self) -> LinkSet:
        return self.full_links

    @property
    def max_route_len(self) -> int:
        return self._max_route_len

    def link_load(self, rates: npt.ArrayLike) -> FloatArray:
        """Per-link load of a rate vector in result (active) order."""
        rates = np.asarray(rates, dtype=np.float64)
        if len(rates) != self._n:
            raise ValueError(f"rate vector length {len(rates)} does not "
                             f"match {self._n} active flows")
        active = np.flatnonzero(self._active)
        return self._scatter_load(self._mat[active], rates)

    def notified_link_load(self) -> FloatArray:
        """Per-link load of the latest *notified* rates.

        What the endpoints are actually sending right now (never-
        notified flows count as zero) — the sampled wrapper folds this
        into the priced half's capacities so the elephants yield to
        the mice they cannot see.  Runs over the used slot prefix
        without a gather: freed rows are padded and rate-zeroed by
        :meth:`_apply_ends`, so they contribute nothing.
        """
        top = self._top
        mat = self._mat[:top]
        rates = np.nan_to_num(self._last[:top])
        return self._scatter_load(mat, rates)

    def _scatter_load(self, mat: IntArray, rates: FloatArray) -> FloatArray:
        mask = mat != self.pad_link
        return np.bincount(
            mat[mask],
            weights=np.broadcast_to(rates[:, None], mat.shape)[mask],
            minlength=len(self._W))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EcmpScheduler(n_flows={self._n}, "
                f"refresh_every={self.refresh_every})")


class EcmpAssigner:
    """Stable hash of unpriced flows onto the topology's ECMP paths.

    Wraps a topology's ``candidate_routes`` enumeration with the
    deterministic flow-id mix the two-tier Clos uses internally: one
    flow always maps to one path (no reordering), different flows
    spread across the candidates, and the pick is reproducible across
    interpreter runs.  On :class:`~repro.topology.TwoTierClos` the
    pick coincides with ``topology.route``; on the three-tier fabric
    (whose own hash is two-level) it is an equally valid member of the
    same candidate set.
    """

    def __init__(self, topology: Any) -> None:
        if not hasattr(topology, "candidate_routes"):
            raise TypeError(
                f"{type(topology).__name__} does not expose "
                "candidate_routes(); ECMP assignment needs the "
                "equal-cost path enumeration")
        self.topology = topology

    def candidates(self, src_host: int, dst_host: int,
                   ) -> list[npt.NDArray[np.int64]]:
        routes = self.topology.candidate_routes(src_host, dst_host)
        return list(routes)

    def assign(self, src_host: int, dst_host: int,
               flow_id: object = 0) -> npt.NDArray[np.int64]:
        """Pick the flow's path among the equal-cost candidates."""
        candidates = self.candidates(src_host, dst_host)
        if len(candidates) == 1:
            return candidates[0]
        if isinstance(flow_id, int):
            fid = flow_id
        else:
            fid = zlib.crc32(str(flow_id).encode())
        key = (int(src_host) * 2654435761 + int(dst_host) * 40503
               + fid * 2246822519) & 0xFFFFFFFF
        key ^= key >> 13
        return candidates[key % len(candidates)]
