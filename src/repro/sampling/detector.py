"""Elephant detection from the §6.2 usage stream.

Sieve-style sampling prices only the flows that carry enough bytes to
matter.  Endpoints already report cumulative per-flow byte counts
(``report_usage``); the detector folds those reports into a per-flow
*new-bytes* accumulator and promotes a flow to elephant once the
accumulator crosses ``promote_bytes``.  Elephants whose byte count
stops growing for ``idle_epochs`` allocator epochs are demoted back to
mice — demotion resets the accumulator, so re-promotion requires a
fresh ``promote_bytes`` of traffic (a flow cannot flap on the strength
of bytes it sent last week).

Time is counted in *epochs*: the owning scheduler calls
:meth:`ElephantDetector.advance` once per allocator iterate, which is
the only clock the allocator loop has.  The idle scan touches every
elephant, so it runs every ``check_every`` epochs rather than every
epoch — demotion is inherently coarse (idle_epochs is a policy knob,
not a deadline), and the amortized scan keeps ``advance`` off the
priced hot path.

State is bounded by the *live* flow population two ways: counters are
created lazily on the first byte report (a silent mouse costs nothing),
and only for flows the bound membership predicate recognises — a
report that arrives after its flow ended (or before the start was
applied) creates no state.  The owning scheduler still calls
:meth:`forget` / :meth:`forget_many` from every churn path, so
counters never outlive their flows.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

__all__ = ["ElephantDetector"]

# Per-flow state slots (one list per flow: cheaper than an object,
# single dict lookup per observe).
_LAST_TOTAL = 0   # highest cumulative byte count seen
_ACCUM = 1        # new bytes since tracking (or since demotion)
_LAST_GROWTH = 2  # epoch of the last positive byte delta
_IS_ELEPHANT = 3


class ElephantDetector:
    """Byte-count promotion/demotion state for the sampling front-end.

    Parameters
    ----------
    promote_bytes:
        New-byte accumulation at which a mouse becomes an elephant.
        The default (1 MiB) is the usual datacenter elephant cut-off.
    idle_epochs:
        Epochs without byte growth after which an elephant is demoted.
    check_every:
        How often (in epochs) the idle scan over elephants runs;
        defaults to ``max(1, idle_epochs // 4)``.
    """

    def __init__(self, promote_bytes: float = float(1 << 20),
                 idle_epochs: int = 100,
                 check_every: int | None = None) -> None:
        if promote_bytes <= 0:
            raise ValueError("promote_bytes must be positive")
        if idle_epochs < 1:
            raise ValueError("idle_epochs must be at least 1")
        self.promote_bytes = float(promote_bytes)
        self.idle_epochs = int(idle_epochs)
        self.check_every = (int(check_every) if check_every is not None
                            else max(1, self.idle_epochs // 4))
        if self.check_every < 1:
            raise ValueError("check_every must be at least 1")
        self.epoch = 0
        self._flows: dict[Hashable, list[float]] = {}
        self._elephants: set[Hashable] = set()
        self._pending_promote: set[Hashable] = set()
        self._membership: Callable[[Hashable], bool] | None = None

    # ------------------------------------------------------------------
    # tracking lifecycle (mirrors flow-table membership)
    # ------------------------------------------------------------------
    def bind_membership(self, membership: Callable[[Hashable], bool],
                        ) -> None:
        """Let :meth:`observe` create state lazily for *live* flows.

        ``membership(flow_id)`` must return whether the flow is
        currently active in the owning scheduler.  Once bound, flows no
        longer need an explicit :meth:`track` — the first byte report
        creates the counter (checked against the predicate, so an
        ended flow's late report cannot resurrect state).  The sampled
        allocator binds its own membership at construction; unbound
        detectors keep the strict track-first contract.
        """
        self._membership = membership

    def track(self, flow_id: Hashable) -> None:
        """Start tracking a flow (as a mouse) eagerly."""
        self._flows[flow_id] = [0.0, 0.0, float(self.epoch), 0.0]

    def forget(self, flow_id: Hashable) -> None:
        """Drop all detector state for a flow (end / client drop).

        Idempotent, and the *only* way state leaves the detector — the
        owning scheduler calls it from every churn path so the byte
        counters cannot outlive their flows.
        """
        state = self._flows.pop(flow_id, None)
        if state is not None:
            if state[_IS_ELEPHANT]:
                self._elephants.discard(flow_id)
            self._pending_promote.discard(flow_id)

    def forget_many(self, flow_ids: Iterable[Hashable]) -> None:
        """Batched :meth:`forget` — one call per churn batch, not per
        flow (the ends path at 100 k flows is latency-sensitive)."""
        flows = self._flows
        elephants = self._elephants
        ended: list[Hashable] = []
        for flow_id in flow_ids:
            state = flows.pop(flow_id, None)
            if state is not None:
                if state[_IS_ELEPHANT]:
                    elephants.discard(flow_id)
                ended.append(flow_id)
        if self._pending_promote and ended:
            self._pending_promote.difference_update(ended)

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._flows

    def __len__(self) -> int:
        return len(self._flows)

    @property
    def n_elephants(self) -> int:
        return len(self._elephants)

    def is_elephant(self, flow_id: Hashable) -> bool:
        return flow_id in self._elephants

    @property
    def elephants(self) -> set[Hashable]:
        """The live elephant id set (read-only by convention — the
        owning scheduler reads it on the churn hot path; mutate it and
        the priced/mice split desynchronizes)."""
        return self._elephants

    # ------------------------------------------------------------------
    # the usage stream
    # ------------------------------------------------------------------
    def observe(self, flow_id: Hashable, nbytes: float) -> None:
        """Fold one cumulative byte-count report into the accumulator.

        Reports for unknown flows are dropped — unless a membership
        predicate is bound (:meth:`bind_membership`) and recognises the
        flow, in which case the counter is created on the spot.  Under
        batched churn a report can legally arrive after its flow ended
        (or before the start was applied), and resurrecting state for
        it would be the unbounded-growth bug this class exists to
        avoid.  Reports are cumulative, so a duplicate or reordered
        report contributes ``max(0, nbytes - last_total)`` — never
        double counts.
        """
        state = self._flows.get(flow_id)
        if state is None:
            membership = self._membership
            if membership is None or not membership(flow_id):
                return
            state = [0.0, 0.0, float(self.epoch), 0.0]
            self._flows[flow_id] = state
        delta = float(nbytes) - state[_LAST_TOTAL]
        if delta <= 0.0:
            return
        state[_LAST_TOTAL] = float(nbytes)
        state[_ACCUM] += delta
        state[_LAST_GROWTH] = float(self.epoch)
        if (not state[_IS_ELEPHANT]
                and state[_ACCUM] >= self.promote_bytes):
            self._pending_promote.add(flow_id)

    # ------------------------------------------------------------------
    # the epoch clock
    # ------------------------------------------------------------------
    def advance(self) -> tuple[list[Hashable], list[Hashable]]:
        """Advance one epoch; return ``(promotions, demotions)``.

        Promotions drain the threshold-crossing set accumulated by
        :meth:`observe`; demotions come from the amortized idle scan.
        The caller (the sampled scheduler) is responsible for moving
        the returned flows between the priced and ECMP tables.
        """
        self.epoch += 1
        promotions: list[Hashable] = []
        if self._pending_promote:
            for flow_id in self._pending_promote:
                self._flows[flow_id][_IS_ELEPHANT] = 1.0
                self._elephants.add(flow_id)
                promotions.append(flow_id)
            self._pending_promote.clear()
        demotions: list[Hashable] = []
        if self._elephants and self.epoch % self.check_every == 0:
            horizon = self.epoch - self.idle_epochs
            for flow_id in self._elephants:
                state = self._flows[flow_id]
                if state[_LAST_GROWTH] <= horizon:
                    state[_IS_ELEPHANT] = 0.0
                    # Only bytes sent *after* demotion may re-promote.
                    state[_ACCUM] = 0.0
                    demotions.append(flow_id)
            self._elephants.difference_update(demotions)
        return promotions, demotions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ElephantDetector(tracked={len(self._flows)}, "
                f"elephants={len(self._elephants)}, epoch={self.epoch})")
