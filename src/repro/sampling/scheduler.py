"""The ``RateScheduler`` protocol — one API over three schemes.

Before this module existed every driver (the fluid simulator, the
ns-style :class:`~repro.control.allocator_node.AllocatorNode`, the
allocator service) hard-wired a
:class:`~repro.core.allocator.FlowtuneAllocator`.  The sampling
front-end adds two more ways to assign rates — pure ECMP fair-share
and sampled Flowtune (elephants priced, mice on ECMP) — so the
drivers now program against this protocol and construct whichever
scheme via :func:`repro.sampling.make_scheduler`.

The surface is exactly what the drivers were already using, made
explicit: flowlet churn in, :class:`~repro.core.allocator.
AllocationResult` out, plus the small introspection surface
(``links``/``full_links``/``max_route_len``/``link_load``) the fluid
sampler and the service handshake need, and the §6.2 usage stream
(``report_usage``) that feeds the elephant detector.  ``wants_usage``
tells a driver whether the scheduler consumes that stream at all, so
the full allocator does not pay for reports it ignores.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Any, Protocol, runtime_checkable

import numpy as np
import numpy.typing as npt

from ..core.allocator import AllocationResult
from ..core.network import LinkSet

__all__ = ["RateScheduler"]


@runtime_checkable
class RateScheduler(Protocol):
    """What a rate-assignment scheme owes its drivers.

    Implementations: :class:`~repro.core.allocator.FlowtuneAllocator`
    (every flow priced), :class:`~repro.sampling.EcmpScheduler` (no
    flow priced), :class:`~repro.sampling.SampledAllocator` (detected
    elephants priced, mice on ECMP).
    """

    #: Whether the scheme consumes :meth:`report_usage`.
    wants_usage: bool

    # -- flowlet churn -------------------------------------------------
    def flowlet_start(self, flow_id: Hashable, route: npt.ArrayLike,
                      weight: float = 1.0) -> None: ...

    def flowlet_end(self, flow_id: Hashable) -> None: ...

    def apply_churn(self, starts: Iterable[tuple[Any, ...]] = (),
                    ends: Iterable[Hashable] = ()) -> None: ...

    # -- allocation ----------------------------------------------------
    def iterate(self, n: int = 1) -> AllocationResult: ...

    def current_rates(self) -> dict[Any, float]: ...

    # -- the §6.2 usage stream ----------------------------------------
    def report_usage(self, flow_id: Hashable, nbytes: float) -> None: ...

    # -- introspection -------------------------------------------------
    @property
    def n_flows(self) -> int: ...

    def __contains__(self, flow_id: Hashable) -> bool: ...

    @property
    def links(self) -> LinkSet: ...

    @property
    def full_links(self) -> LinkSet: ...

    @property
    def max_route_len(self) -> int: ...

    def link_load(self, rates: npt.ArrayLike) -> npt.NDArray[np.float64]: ...
