"""Sampled Flowtune: price the elephants, ECMP the mice.

The central NUM loop's cost scales with the flows it prices, so
:class:`SampledAllocator` keeps only detector-promoted elephants in
the priced :class:`~repro.core.allocator.FlowtuneAllocator` and
leaves everything else to the :class:`~repro.sampling.EcmpScheduler`
fair-share model.  The priced set is bounded by the traffic's elephant
population, not by the total flow count — the scaling escape hatch
the kernel tier cannot provide.

Composition rules:

* Every flow starts as a mouse on its ECMP-hashed path.  The §6.2
  usage stream (``report_usage``) feeds the
  :class:`~repro.sampling.ElephantDetector`; promotion and demotion
  re-run the flow through the two tables' existing batched
  ``apply_churn`` — a promoted flow keeps its route and weight, it
  just starts being priced.
* The coupling is symmetric and refreshed at the mice model's own
  pace: the mice see the elephants as external per-link load, and the
  priced half's capacities shrink by the mice's notified load (EWMA-
  smoothed, floored at a small fraction so elephants keep draining) —
  the §7 external-traffic adjustment with the mice as the
  "unscheduled" traffic.  Without the second half, a handful of
  priced elephants would be handed entire links and starve the mice
  they cannot see.
* Results merge priced-first: ``rate_vector[:n_priced]`` aligns with
  the priced table, the rest with the mice store, and both halves run
  the identical §6.4 threshold filter.  The merge is lazy — the
  notification list concatenates O(changed), the full vectors are
  stitched only if read.
* The two stores *are* the membership record: a flow is active iff it
  sits in exactly one of them, and every churn path purges its
  detector counters (:meth:`ElephantDetector.forget_many`), so
  detector state is bounded by the live flow population and cannot
  grow under churn.

For verification, ``record_priced=True`` journals every operation the
wrapper applies to the inner priced allocator; replaying the journal
into a fresh ``FlowtuneAllocator`` must reproduce the priced rates
bit for bit (the hypothesis suite does exactly that).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Any

import numpy as np
import numpy.typing as npt

from ..core.allocator import (AllocationResult, FlowtuneAllocator,
                              RateUpdate)
from ..core.ned import NedOptimizer
from ..core.network import LinkSet
from ..core.normalization import Normalizer
from ..core.utility import Utility
from .detector import ElephantDetector
from .ecmp import EcmpScheduler

__all__ = ["SampledAllocator", "replay_priced_journal"]

FloatArray = npt.NDArray[np.float64]

#: Elephants are squeezed, never zeroed, by mice load (mirrors
#: :data:`repro.core.external.MIN_CAPACITY_FRACTION`).
_MIN_PRICED_FRACTION = 0.01


class _MergedResult(AllocationResult):
    """Priced-first concatenation of the two halves' results.

    ``updates`` is the O(changed) concatenation of both halves'
    notification lists; the dense id/rate vectors are stitched only on
    first access (``__getattr__`` fires exactly when the base-class
    slot is still unset).  Lazy views snapshot the halves at first
    access — consume the result before applying further churn, as
    every driver in this repo does within its tick.
    """

    __slots__ = ("_priced", "_mice")

    def __init__(self, priced: AllocationResult,
                 mice: AllocationResult) -> None:
        self._priced = priced
        self._mice = mice
        self._updates = None
        self._rates_dict = None
        self._flow_ids = None

    def __getattr__(self, name: str) -> Any:
        if name in ("_ids", "rate_vector", "update_indices"):
            priced, mice = self._priced, self._mice
            priced_rates = np.asarray(priced.rate_vector, dtype=np.float64)
            n_priced = len(priced_rates)
            self._ids = np.concatenate(
                (np.asarray(priced._ids, dtype=object), mice._ids))
            self.rate_vector = np.concatenate(
                (priced_rates,
                 np.asarray(mice.rate_vector, dtype=np.float64)))
            self.update_indices = np.concatenate(
                (priced.update_indices, mice.update_indices + n_priced))
            return getattr(self, name)
        raise AttributeError(name)

    @property
    def updates(self) -> list[RateUpdate]:
        if self._updates is None:
            self._updates = self._priced.updates + self._mice.updates
        return self._updates


class SampledAllocator:
    """Sieve-style sampling front-end over the Flowtune allocator.

    Parameters mirror :class:`~repro.core.allocator.FlowtuneAllocator`
    (they configure the inner priced allocator), plus:

    promote_bytes, idle_epochs:
        Detector knobs — see
        :class:`~repro.sampling.ElephantDetector`.
    mice_refresh:
        The ECMP fair-share model's full-recompute period in iterates.
        Mice are latency-bound, not rate-bound, and in a real sieve
        deployment are not centrally rate-controlled at all, so the
        model does not need to track every 10 µs tick; the default
        keeps the mice pass off the priced hot path.
    mice_load_smoothing:
        EWMA weight for folding the mice's notified load into the
        priced half's capacities (the §7 closed-loop smoothing —
        transient mice bursts should not whipsaw the elephants).
    mice_floor:
        Guaranteed per-link capacity fraction for the mice (the ECMP
        model's ``external_floor``) — breaks the mutual-starvation
        fixed point where elephants filling a link keep new mice at
        zero rate forever.
    detector:
        Inject a pre-configured detector (tests use this to drive
        promotion deterministically).  The wrapper binds its own
        membership predicate to it either way.
    record_priced:
        Journal all inner priced-allocator operations to
        :attr:`priced_journal` for bitwise replay verification.
    """

    wants_usage: bool = True

    def __init__(self, links: LinkSet, utility: Utility | None = None,
                 optimizer_cls: type = NedOptimizer,
                 normalizer: Normalizer | None = None,
                 update_threshold: float = 0.01, gamma: float = 1.0,
                 max_route_len: int = 8,
                 optimizer_kwargs: dict[str, Any] | None = None,
                 promote_bytes: float = float(1 << 20),
                 idle_epochs: int = 100, mice_refresh: int = 4,
                 mice_load_smoothing: float = 0.3,
                 mice_floor: float = 0.1,
                 detector: ElephantDetector | None = None,
                 record_priced: bool = False) -> None:
        if not 0 < mice_load_smoothing <= 1:
            raise ValueError("mice_load_smoothing must be in (0, 1]")
        self.priced = FlowtuneAllocator(
            links, utility=utility, optimizer_cls=optimizer_cls,
            normalizer=normalizer, update_threshold=update_threshold,
            gamma=gamma, max_route_len=max_route_len,
            optimizer_kwargs=optimizer_kwargs)
        self.mice = EcmpScheduler(
            links, update_threshold=update_threshold,
            refresh_every=mice_refresh, max_route_len=max_route_len,
            external_floor=mice_floor)
        self.detector = (detector if detector is not None
                         else ElephantDetector(promote_bytes=promote_bytes,
                                               idle_epochs=idle_epochs))
        self.detector.bind_membership(self.__contains__)
        self.full_links = links
        self.update_threshold = float(update_threshold)
        self.mice_load_smoothing = float(mice_load_smoothing)
        # The priced half's boot capacities (already headroom-adjusted
        # by the inner allocator) — the base the mice load shrinks.
        self._priced_base = self.priced.links.capacity.copy()
        self._mice_load_ewma = np.zeros_like(self._priced_base)
        # Hot-path aliases: membership is "in exactly one of the two
        # stores", probed once per churn event at 100 k flows.
        self._mice_index = self.mice.flow_index
        self._priced_table = self.priced.table
        # Elephant ends are deferred and flushed together with the
        # next iterate's promotions/demotions, so one churn op costs a
        # single priced ``apply_churn`` — not one per source of churn.
        # ``_pending_set`` mirrors the list for O(1) membership: a
        # flow in it is *logically ended* even though its priced row
        # still exists.
        self._pending_priced_ends: list[Hashable] = []
        self._pending_set: set[Hashable] = set()
        self.priced_journal: list[tuple[Any, ...]] | None = (
            [] if record_priced else None)

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def flowlet_start(self, flow_id: Hashable, route: npt.ArrayLike,
                      weight: float = 1.0) -> None:
        self.apply_churn(starts=[(flow_id, route, weight)])

    def flowlet_end(self, flow_id: Hashable) -> None:
        self.apply_churn(ends=[flow_id])

    def apply_churn(self, starts: Iterable[tuple[Any, ...]] = (),
                    ends: Iterable[Hashable] = ()) -> None:
        """Batched flowlet churn with ends-first restart semantics.

        New flows always enter as mice; ends are routed to whichever
        store holds the flow and purge its detector state.  Matching
        the flow table's own contract, the whole ends batch is
        validated before anything is applied, and a rejected start
        leaves the ends applied and no start applied.
        """
        starts = list(starts)
        ends = list(ends)
        mice_ends: list[Hashable] = []
        if ends:
            mice_index = self._mice_index
            priced_table = self._priced_table
            pending = self._pending_set
            priced_ends: list[Hashable] = []
            for flow_id in ends:
                if flow_id in mice_index:
                    mice_ends.append(flow_id)
                elif flow_id in priced_table and flow_id not in pending:
                    priced_ends.append(flow_id)
                else:
                    raise KeyError(f"unknown flow id {flow_id!r}")
            if len(ends) > 1 and len(set(ends)) != len(ends):
                seen: set[Hashable] = set()
                for flow_id in ends:
                    if flow_id in seen:
                        raise KeyError(f"unknown flow id {flow_id!r}")
                    seen.add(flow_id)
            if priced_ends:
                # Deferred: flushed in one batch with the next
                # iterate's migrations.  The flows are logically ended
                # right now — every membership probe below excludes
                # the pending set.
                self._pending_priced_ends.extend(priced_ends)
                pending.update(priced_ends)
        if starts:
            ids = [start[0] for start in starts]
            priced_index = self._priced_table._index_of
            mice_index = self._mice_index
            pending = self._pending_set
            ended: set[Hashable] | tuple[()] = (
                set(mice_ends) if mice_ends else ())
            if (len(set(ids)) != len(ids)
                    or not mice_index.keys().isdisjoint(ids)
                    or not priced_index.keys().isdisjoint(ids)):
                seen = set()
                for flow_id in ids:
                    if (flow_id in seen
                            or (flow_id in mice_index
                                and flow_id not in ended)
                            or (flow_id in priced_index
                                and flow_id not in pending)):
                        raise ValueError(
                            f"flow id {flow_id!r} already active")
                    seen.add(flow_id)
        if mice_ends or starts:
            # One batched call: the mice store applies ends first,
            # then validates starts — so a bad route leaves the ends
            # applied and no start applied (the restart contract).
            try:
                self.mice.apply_churn(starts=starts, ends=mice_ends)
            finally:
                # Ends are purged even when a start is rejected — the
                # ends half of the batch has been applied by then.
                if ends:
                    self.detector.forget_many(ends)
        elif ends:
            self.detector.forget_many(ends)

    # ------------------------------------------------------------------
    # the usage stream -> detector
    # ------------------------------------------------------------------
    def report_usage(self, flow_id: Hashable, nbytes: float) -> None:
        """Cumulative byte count for a flow; drives elephant detection.

        Reports for unknown flows (ended, dropped, or queued-but-not-
        applied starts) are dropped by the detector — no state is ever
        created for a flow the stores do not know.
        """
        self.detector.observe(flow_id, nbytes)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def iterate(self, n: int = 1) -> AllocationResult:
        """One scheduling epoch: migrate, price, fair-share, merge."""
        promotions, demotions = self.detector.advance()
        if promotions or demotions or self._pending_priced_ends:
            self._migrate(promotions, demotions)
        refresh = self.mice.will_refresh()
        if refresh:
            # Elephants yield to the mice's notified load before this
            # epoch's pricing (the mice are the priced half's
            # "unscheduled" §7 traffic).
            self._yield_to_mice()
        priced_result = self._priced_iterate(n)
        if refresh:
            # Mice see the elephants as reserved capacity.  Refreshed
            # only when the mice model will actually look at it.
            priced_rates = np.asarray(priced_result.rate_vector,
                                      dtype=np.float64)
            self.mice.set_external_load(
                self.priced.link_load(priced_rates)
                if len(priced_rates) else None)
        mice_result = self.mice.iterate(1)
        return _MergedResult(priced_result, mice_result)

    def _yield_to_mice(self) -> None:
        """Shrink the priced capacities by the smoothed mice load.

        The mice half of the symmetric coupling: without it, a
        handful of priced elephants are handed entire links and the
        ECMP residual (``capacity - elephants``) starves every mouse
        sharing their paths.  Journaled (the priced half's rates
        depend on it), floored so elephants always keep draining.
        """
        if self.priced.n_flows == 0 and not self._mice_load_ewma.any():
            return
        alpha = self.mice_load_smoothing
        ewma = self._mice_load_ewma
        ewma *= 1.0 - alpha
        if self.mice.n_flows:
            ewma += alpha * self.mice.notified_link_load()
        capacity = np.maximum(self._priced_base - ewma,
                              self._priced_base * _MIN_PRICED_FRACTION)
        # §6.4-style deadband: re-pricing invalidates every capacity-
        # derived cache on the priced side, so only apply when some
        # link moved by more than the notification threshold (the
        # pricing error already tolerated elsewhere).  The EWMA keeps
        # advancing, so drift accumulates until it trips the band.
        applied = self.priced.links.capacity
        band = self.update_threshold * self._priced_base
        if (np.abs(capacity - applied) <= band).all():
            return
        if self.priced_journal is not None:
            self.priced_journal.append(("capacity", capacity.copy()))
        applied[:] = capacity
        self.priced.optimizer.refresh_capacity()

    def _migrate(self, promotions: list[Hashable],
                 demotions: list[Hashable]) -> None:
        """Re-home flows between the stores and flush deferred ends.

        Everything the priced allocator must hear about — promotions,
        demotions, and the elephant ends deferred by
        :meth:`apply_churn` — lands in one batched ``apply_churn``.
        Deferred ends are provably disjoint from the demotions: ending
        a flow forgets its detector state, so it cannot sit in the
        elephant set the idle scan demotes from.
        """
        promote_starts = self.mice.get_flows(promotions)
        demote_starts = self._priced_flows(demotions)
        if promotions or demote_starts:
            self.mice.apply_churn(starts=demote_starts, ends=promotions)
        priced_ends = self._pending_priced_ends
        if demotions:
            priced_ends = priced_ends + demotions
        self._priced_churn(starts=promote_starts, ends=priced_ends)
        if self._pending_priced_ends:
            self._pending_priced_ends = []
            self._pending_set.clear()

    def _priced_flows(self, flow_ids: list[Hashable],
                      ) -> list[tuple[Hashable, Any, float]]:
        table = self._priced_table
        out = []
        for flow_id in flow_ids:
            row = table.index_of(flow_id)
            route = table.routes[row]
            out.append((flow_id, route[route != table.pad_link].copy(),
                        float(table.weights[row])))
        return out

    def _priced_churn(self, starts: list[tuple[Any, ...]],
                      ends: list[Hashable]) -> None:
        if self.priced_journal is not None:
            self.priced_journal.append(("churn", list(starts), list(ends)))
        self.priced.apply_churn(starts=starts, ends=ends)

    def _priced_iterate(self, n: int) -> AllocationResult:
        if self.priced_journal is not None:
            self.priced_journal.append(("iterate", n))
        return self.priced.iterate(n)

    def current_rates(self) -> dict[Any, float]:
        rates = self.mice.current_rates()
        priced = self.priced.current_rates()
        for flow_id in self._pending_priced_ends:
            priced.pop(flow_id, None)
        rates.update(priced)
        return rates

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_flows(self) -> int:
        return self.n_priced + self.mice.n_flows

    @property
    def n_priced(self) -> int:
        return self.priced.n_flows - len(self._pending_priced_ends)

    @property
    def priced_fraction(self) -> float:
        total = self.n_flows
        return self.n_priced / total if total else 0.0

    def __contains__(self, flow_id: Hashable) -> bool:
        return (flow_id in self._mice_index
                or (flow_id in self._priced_table
                    and flow_id not in self._pending_set))

    @property
    def links(self) -> LinkSet:
        """Full capacities — the merged allocation is measured against
        the physical network, not the priced half's headroom view."""
        return self.full_links

    @property
    def max_route_len(self) -> int:
        return self.priced.max_route_len

    def link_load(self, rates: npt.ArrayLike) -> FloatArray:
        """Per-link load of a merged (priced-first) rate vector."""
        if self._pending_priced_ends:
            # Deferred elephant ends make the merged length ambiguous;
            # flush them (they are logically gone already) so the
            # vector is measured against the live population.
            self._priced_churn(starts=[], ends=self._pending_priced_ends)
            self._pending_priced_ends = []
            self._pending_set.clear()
        rates = np.asarray(rates, dtype=np.float64)
        n_priced = self.priced.n_flows
        if len(rates) != n_priced + self.mice.n_flows:
            raise ValueError(
                f"rate vector length {len(rates)} does not match "
                f"{n_priced} priced + {self.mice.n_flows} mice flows")
        return (self.priced.link_load(rates[:n_priced])
                + self.mice.link_load(rates[n_priced:]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SampledAllocator(n_flows={self.n_flows}, "
                f"n_priced={self.priced.n_flows}, "
                f"detector={self.detector!r})")


def replay_priced_journal(journal: Iterable[tuple[Any, ...]],
                          allocator: FlowtuneAllocator,
                          ) -> AllocationResult | None:
    """Replay a ``record_priced`` journal into a fresh allocator.

    Returns the last iterate's result (or ``None`` if the journal
    contains no iterate).  With identical construction parameters the
    replayed allocator's rates are bitwise equal to the sampled
    wrapper's priced half — the verification contract for the
    promotion/demotion plumbing.
    """
    result: AllocationResult | None = None
    for entry in journal:
        if entry[0] == "churn":
            _, starts, ends = entry
            allocator.apply_churn(starts=starts, ends=ends)
        elif entry[0] == "capacity":
            allocator.links.capacity[:] = entry[1]
            allocator.optimizer.refresh_capacity()
        else:
            result = allocator.iterate(entry[1])
    return result
