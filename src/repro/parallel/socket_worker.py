"""CLI entry for one socket-fabric worker "host".

Run on any machine that can reach the parent's TCP address::

    REPRO_FABRIC_TOKEN=<parent fabric token_hex> \\
        python -m repro.parallel.socket_worker HOST PORT WORKER_ID [BIND_HOST]

The process carries no pre-shared state beyond the fabric token (the
parent's ``SocketFabric.token_hex``, presented before any pickled
frame is exchanged): it connects, authenticates, receives its
bootstrap frame (plans, constants, peer map), joins the worker mesh,
and serves iterations until the parent sends ``stop`` — see
:mod:`repro.parallel.fabric`.  This module exists separately from
``fabric`` so ``python -m`` does not re-execute a module the package
already imported.
"""

from __future__ import annotations

import os
import sys

from .fabric import _socket_worker_entry

_TOKEN_ENV = "REPRO_FABRIC_TOKEN"


def parse_token(value, env_var=_TOKEN_ENV):
    """Decode a hex auth token taken from ``$REPRO_FABRIC_TOKEN``
    (or another env var — the allocator service reuses this check for
    ``$REPRO_SERVICE_TOKEN``).

    Fails fast with a message naming the env var: a missing or empty
    value would otherwise decode to ``b""`` and the parent's auth
    check would silently drop the worker (it never learns why), and a
    non-hex or odd-length value is certainly a copy-paste accident.
    """
    if not value:
        raise SystemExit(
            f"{env_var} is not set (or empty): export the parent's "
            "token_hex before starting this process — without it the "
            "parent silently drops the connection")
    try:
        return bytes.fromhex(value)
    except ValueError:
        raise SystemExit(
            f"{env_var} is not a valid hex token (got {value!r}): "
            "it must be the parent's token_hex, an even-length hex "
            "string") from None


if __name__ == "__main__":
    token = parse_token(os.environ.get(_TOKEN_ENV))
    sockbuf = os.environ.get("REPRO_FABRIC_SOCKBUF")
    _socket_worker_entry(sys.argv[1], int(sys.argv[2]), int(sys.argv[3]),
                         sys.argv[4] if len(sys.argv) > 4 else "127.0.0.1",
                         token, int(sockbuf) if sockbuf else None)
