"""CLI entry for one socket-fabric worker "host".

Run on any machine that can reach the parent's TCP address::

    REPRO_FABRIC_TOKEN=<parent fabric token_hex> \\
        python -m repro.parallel.socket_worker HOST PORT WORKER_ID [BIND_HOST]

The process carries no pre-shared state beyond the fabric token (the
parent's ``SocketFabric.token_hex``, presented before any pickled
frame is exchanged): it connects, authenticates, receives its
bootstrap frame (plans, constants, peer map), joins the worker mesh,
and serves iterations until the parent sends ``stop`` — see
:mod:`repro.parallel.fabric`.  This module exists separately from
``fabric`` so ``python -m`` does not re-execute a module the package
already imported.
"""

from __future__ import annotations

import os
import sys

from .fabric import _socket_worker_entry

if __name__ == "__main__":
    _socket_worker_entry(sys.argv[1], int(sys.argv[2]), int(sys.argv[3]),
                         sys.argv[4] if len(sys.argv) > 4 else "127.0.0.1",
                         bytes.fromhex(
                             os.environ.get("REPRO_FABRIC_TOKEN", "")))
