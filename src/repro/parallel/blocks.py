"""FlowBlock / LinkBlock partitioning of network state (§5, fig. 2).

Racks are grouped into ``n_blocks`` blocks.  All links going *up* from
a block's racks (server->ToR and ToR->spine) form its **upward
LinkBlock**; all links going *down* toward the block (spine->ToR and
ToR->server) form its **downward LinkBlock**.  Flows are partitioned
by (source block, destination block) into **FlowBlocks**; the flows of
FlowBlock (i, j) touch *only* upward LinkBlock i and downward
LinkBlock j — that locality is what eliminates cache-coherence traffic
in the multicore allocator.
"""

from __future__ import annotations

import numpy as np

from ..topology.clos import TwoTierClos

__all__ = ["BlockPartition"]


class BlockPartition:
    """The §5 partitioning for a two-tier Clos.

    Parameters
    ----------
    topology:
        A :class:`~repro.topology.TwoTierClos`.
    n_blocks:
        Number of rack groups; processors form an ``n_blocks x
        n_blocks`` grid.  Must divide ``topology.n_racks`` evenly and,
        for the aggregation schedule of fig. 3, be a power of two.
    """

    def __init__(self, topology: TwoTierClos, n_blocks: int):
        if n_blocks < 1:
            raise ValueError("n_blocks must be positive")
        if n_blocks & (n_blocks - 1):
            raise ValueError("n_blocks must be a power of two (fig. 3)")
        self.topology = topology
        self.n_blocks = int(n_blocks)
        self.rack_groups = topology.rack_blocks(n_blocks)
        self.upward_links = [topology.upward_link_block(g)
                             for g in self.rack_groups]
        self.downward_links = [topology.downward_link_block(g)
                               for g in self.rack_groups]
        # All LinkBlocks are the same size by construction (§5: "each
        # LinkBlock contains exactly the same number of links").
        sizes = {len(b) for b in self.upward_links}
        sizes |= {len(b) for b in self.downward_links}
        assert len(sizes) == 1, "unequal LinkBlock sizes"
        self.links_per_block = sizes.pop()
        self._hosts_per_block = (topology.hosts_per_rack
                                 * len(self.rack_groups[0]))

    @property
    def n_processors(self):
        return self.n_blocks * self.n_blocks

    def grid_cells(self):
        """Row-major processor coordinates — the canonical cell order
        shared by the engine and the process backend (shared-array row
        ``i`` is ``grid_cells()[i]``)."""
        n = self.n_blocks
        return [(r, c) for r in range(n) for c in range(n)]

    def link_block(self, block, upward):
        """Link indices of one LinkBlock (the payload of a fig. 3
        transfer): upward block ``block`` if ``upward`` else downward."""
        return self.upward_links[block] if upward else \
            self.downward_links[block]

    def block_of_host(self, host):
        """The rack group a host belongs to."""
        return self.topology.rack_of(host) // len(self.rack_groups[0])

    def flowblock_of(self, src_host, dst_host):
        """Processor-grid coordinates (source block, destination block)."""
        return self.block_of_host(src_host), self.block_of_host(dst_host)

    def verify_locality(self, src_host, dst_host, route):
        """True iff ``route``'s links lie in the flow's two LinkBlocks.

        This is the invariant the whole §5 design rests on; the test
        suite checks it property-style over random flows.
        """
        i, j = self.flowblock_of(src_host, dst_host)
        allowed = set(self.upward_links[i].tolist())
        allowed |= set(self.downward_links[j].tolist())
        return all(int(link) in allowed for link in np.asarray(route))

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"BlockPartition(n_blocks={self.n_blocks}, "
                f"links_per_block={self.links_per_block})")
