"""Multicore allocator: FlowBlock/LinkBlock partitioning (§5) + §6.1 model."""

from .aggregation import (Transfer, aggregation_schedule,
                          distribution_schedule, final_down_holder,
                          final_up_holder)
from .blocks import BlockPartition
from .cost_model import (CLOCK_GHZ, FABRIC_COSTS, PAPER_TABLE, BenchConfig,
                         CostModel, FabricStepCosts, PaperRow, cpu_of,
                         fabric_iteration_us, fit_cost_model, step_breakdown)
from .engine import (IterationStats, MulticoreNedEngine, ParallelBackend,
                     SimulatedBackend, ned_price_update)
from .fabric import (FabricError, LocalCluster, SenseReversingBarrier,
                     SharedMemoryFabric, SocketFabric, measure_barrier_rate)
from .shm import SharedArena

__all__ = ["BlockPartition", "MulticoreNedEngine", "IterationStats",
           "ParallelBackend", "SimulatedBackend", "SharedArena",
           "ned_price_update",
           "FabricError", "LocalCluster", "SenseReversingBarrier",
           "SharedMemoryFabric", "SocketFabric", "measure_barrier_rate",
           "Transfer", "aggregation_schedule", "distribution_schedule",
           "final_up_holder", "final_down_holder", "BenchConfig",
           "CostModel", "FabricStepCosts", "FABRIC_COSTS",
           "fabric_iteration_us", "PaperRow", "PAPER_TABLE",
           "fit_cost_model", "cpu_of", "step_breakdown", "CLOCK_GHZ"]
