"""Cycle cost model reproducing the §6.1 multicore benchmark table.

Python cannot reproduce Nehalem cycle counts, so the §6.1 table is
reproduced in two parts:

* the *structure* — flows per processor, LinkBlock sizes, the number
  of intra- vs inter-CPU aggregation steps — is computed from the real
  partitioning and fig. 3 schedule (``repro.parallel``);
* the *constants* — cycles per flow, cycles per link-entry moved
  within a CPU vs across CPUs — are calibrated against the paper's
  seven measurements by least squares.

The model is then

    cycles = c0 + c1 * max_flows_per_core
                + c2 * links_per_block * intra_cpu_steps
                + c3 * links_per_block * inter_cpu_steps,

with intra/inter classified by the paper's core->CPU mapping ("In the
4-core run, we mapped all FlowBlocks to the same CPU.  With higher
number of cores, we divided all FlowBlocks into groups of 2-by-2, and
put two adjacent groups on each CPU").  A good fit (few percent error
per row) demonstrates the *scaling shape* — linear in per-core flows,
linear in LinkBlock size, log-like in cores — is the partitioning's,
not an artifact of the constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

from .aggregation import aggregation_schedule

__all__ = ["PAPER_TABLE", "PaperRow", "BenchConfig", "cpu_of",
           "step_breakdown", "CostModel", "fit_cost_model",
           "CLOCK_GHZ", "FabricStepCosts", "FABRIC_COSTS",
           "fabric_iteration_us"]

#: E7-8870 nominal clock used by the paper to convert cycles to time.
CLOCK_GHZ = 2.4

#: §6.1 benchmark fabric shape: Facebook-pod-like, 48 servers per rack.
HOSTS_PER_RACK = 48
N_SPINES = 4


@dataclass(frozen=True)
class PaperRow:
    """One row of the §6.1 table."""

    cores: int
    nodes: int
    flows: int
    cycles: float
    time_us: float


#: The seven measurements of §6.1.
PAPER_TABLE = [
    PaperRow(4, 384, 3072, 19896.6, 8.29),
    PaperRow(16, 768, 6144, 21267.8, 8.86),
    PaperRow(64, 1536, 12288, 30317.6, 12.63),
    PaperRow(64, 1536, 24576, 33576.2, 13.99),
    PaperRow(64, 1536, 49152, 40628.5, 16.93),
    PaperRow(64, 3072, 49152, 57035.9, 23.76),
    PaperRow(64, 4608, 49152, 73703.2, 30.71),
]


@dataclass(frozen=True)
class BenchConfig:
    """Derived structural quantities for one benchmark configuration."""

    cores: int
    nodes: int
    flows: int
    grid_side: int
    racks: int
    racks_per_block: int
    links_per_block: int
    flows_per_core: float
    intra_cpu_steps: int
    inter_cpu_steps: int

    @classmethod
    def from_row(cls, cores, nodes, flows, hosts_per_rack=HOSTS_PER_RACK,
                 n_spines=N_SPINES):
        grid_side = int(round(np.sqrt(cores)))
        if grid_side * grid_side != cores:
            raise ValueError("cores must be a perfect square (n x n grid)")
        racks = nodes // hosts_per_rack
        if racks % grid_side:
            raise ValueError("blocks must divide racks evenly")
        racks_per_block = racks // grid_side
        links_per_block = racks_per_block * (hosts_per_rack + n_spines)
        intra, inter = step_breakdown(grid_side)
        return cls(cores=cores, nodes=nodes, flows=flows,
                   grid_side=grid_side, racks=racks,
                   racks_per_block=racks_per_block,
                   links_per_block=links_per_block,
                   flows_per_core=flows / cores,
                   intra_cpu_steps=intra, inter_cpu_steps=inter)


def cpu_of(coords, grid_side):
    """Paper's core->CPU mapping.

    A 2x2 grid fits one CPU.  Larger grids tile processors into 2x2
    groups and place two horizontally-adjacent groups on each CPU
    (8 cores per 10-core E7-8870, leaving 2 for housekeeping).
    """
    row, col = coords
    if grid_side <= 2:
        return 0
    group_row, group_col = row // 2, col // 2
    groups_per_row = grid_side // 2
    return group_row * (groups_per_row // 2) + group_col // 2


def step_breakdown(grid_side):
    """(intra_cpu_steps, inter_cpu_steps) for the fig. 3 schedule.

    A step counts as inter-CPU if *any* of its transfers crosses CPUs
    — the slowest transfer gates the barrier at the end of the step.
    """
    intra = inter = 0
    for step in aggregation_schedule(grid_side):
        crosses = any(cpu_of(t.src, grid_side) != cpu_of(t.dst, grid_side)
                      for t in step)
        if crosses:
            inter += 1
        else:
            intra += 1
    return intra, inter


class CostModel:
    """Calibrated cycles model (see module docstring for the form).

    Features: constant, per-core flow work, per-link-entry intra-CPU
    transfer work, per-link-entry inter-CPU transfer work, and a fixed
    per-inter-step barrier latency (QPI hop + synchronization).
    """

    N_CONSTANTS = 5

    def __init__(self, constants):
        self.constants = np.asarray(constants, dtype=np.float64)
        if self.constants.shape != (self.N_CONSTANTS,):
            raise ValueError(f"expected {self.N_CONSTANTS} constants")

    def features(self, config: BenchConfig):
        # Aggregate + distribute both traverse the schedule: factor 2.
        return np.array([
            1.0,
            config.flows_per_core,
            2.0 * config.links_per_block * config.intra_cpu_steps,
            2.0 * config.links_per_block * config.inter_cpu_steps,
            2.0 * config.inter_cpu_steps,
        ])

    def cycles(self, config: BenchConfig) -> float:
        return float(self.features(config) @ self.constants)

    def time_us(self, config: BenchConfig) -> float:
        return self.cycles(config) / (CLOCK_GHZ * 1e3)

    def throughput_tbps(self, config: BenchConfig,
                        link_gbps: float = 40.0) -> float:
        """Aggregate traffic the allocation covers per wall-clock-
        second of allocator work, as §6.1 reports (e.g. "4 cores
        allocate 15.36 Tbit/s" = 384 nodes x 40 Gbit/s)."""
        return config.nodes * link_gbps / 1e3


@dataclass(frozen=True)
class FabricStepCosts:
    """Measured per-step coordination costs of one fabric (µs).

    The §6.1 model above calibrates *cycles* against the paper's
    Nehalem numbers; this dataclass carries the analogous constants
    for our own fabrics, measured on real hardware by the harness's
    ``barrier_step`` / ``socket_frame_batch`` benchmarks, so
    iteration-time estimates can be compared *across fabrics* before
    committing to a deployment:

    * ``barrier_us`` — one ``step_barrier()`` round across all
      workers.  Zero for the socket fabric: its frames carry the
      step-to-step data dependencies, so steps need no barrier.
    * ``per_batch_us`` — fixed cost of one **per-peer batch**.  The
      socket fabric coalesces everything a worker owes one peer
      within a step into a single frame, so its fixed syscall +
      framing overhead is paid once per communicating pair per step,
      not once per LinkBlock hand-off; for the shm fabric a "batch"
      is one in-place fancy-indexed read, so the term stays
      per-transfer there.
    * ``per_entry_us`` — marginal cost per link entry moved (a copied
      float64 for shm, a serialized+parsed one for sockets).
    """

    name: str
    barrier_us: float
    per_batch_us: float
    per_entry_us: float

    def step_us(self, n_batches, n_entries):
        """Cost of one schedule step moving the given traffic."""
        return (self.barrier_us + n_batches * self.per_batch_us
                + n_entries * self.per_entry_us)


#: Default constants, measured on the dev container (single-core, so
#: shm barrier numbers reflect the blocking fallback path; on a
#: dedicated-core host the spin path is an order of magnitude lower).
#: Re-measure with ``benchmarks/harness.py --only barrier_step`` (and
#: ``--only socket_frame_batch``) when the estimates matter on new
#: hardware.
FABRIC_COSTS = {
    "shm": FabricStepCosts("shm", barrier_us=80.0, per_batch_us=2.0,
                           per_entry_us=0.002),
    "socket": FabricStepCosts("socket", barrier_us=0.0,
                              per_batch_us=40.0, per_entry_us=0.02),
}


def fabric_iteration_us(config: BenchConfig, fabric="shm", costs=None,
                        n_workers=None):
    """Estimated per-iteration coordination time (µs) for one fabric.

    Counts the fig. 3 schedule exactly as the engine executes it: each
    of the ``log2 n`` aggregation steps and ``log2 n`` distribution
    steps moves ``2n`` LinkBlock transfers of ``links_per_block``
    entries; synchronization points are one barrier per step plus the
    post-rate and post-price-update barriers.  For the socket fabric
    the per-step fixed term counts **peer batches**, not transfers:
    with ``n_workers`` processes sharing the grid (default: one per
    core, the paper's regime), a step's transfers coalesce into at
    most ``n_workers * (n_workers - 1)`` pair frames.  Only
    coordination is modeled — the Equation-3/4 arithmetic is
    fabric-independent and already covered by :class:`CostModel`.
    """
    c = costs if costs is not None else FABRIC_COSTS[fabric]
    n = config.grid_side
    steps = int(np.log2(n)) if n > 1 else 0
    per_step_transfers = 2 * n
    per_step_entries = per_step_transfers * config.links_per_block
    if c.name == "socket":
        w = int(n_workers) if n_workers is not None else config.cores
        per_step_batches = min(per_step_transfers, w * max(w - 1, 0))
    else:
        per_step_batches = per_step_transfers
    sync_only = 2 * c.barrier_us  # post-rate + post-price barriers
    return sync_only + 2 * steps * c.step_us(per_step_batches,
                                             per_step_entries)


def fit_cost_model(rows=None, hosts_per_rack=HOSTS_PER_RACK,
                   n_spines=N_SPINES):
    """Least-squares calibration against the §6.1 table.

    Returns ``(model, configs, predictions)``.
    """
    rows = rows if rows is not None else PAPER_TABLE
    configs = [BenchConfig.from_row(r.cores, r.nodes, r.flows,
                                    hosts_per_rack, n_spines)
               for r in rows]
    probe = CostModel(np.zeros(CostModel.N_CONSTANTS))
    design = np.vstack([probe.features(c) for c in configs])
    target = np.array([r.cycles for r in rows])
    # Non-negative least squares: negative cycle costs are unphysical.
    constants, _ = nnls(design, target)
    model = CostModel(constants)
    predictions = np.array([model.cycles(c) for c in configs])
    return model, configs, predictions
