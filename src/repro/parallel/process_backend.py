"""Worker-process execution of the multicore NED engine (§5-6.1).

Where :class:`~repro.parallel.engine.SimulatedBackend` time-slices the
``n x n`` processor grid inside one Python process, this backend runs
it on a persistent pool of **real worker processes**:

* each worker owns one or more FlowBlocks (grid cells, assigned
  round-robin so worker counts that don't divide the grid still work);
* all hot state lives in ``multiprocessing.shared_memory`` — the
  per-cell flow columns (routes, weights, bottleneck capacities, via
  :class:`~repro.core.network.FlowTable`'s allocator hook) and the
  ``(n_processors, n_links)`` float64 price/load/Hessian matrices —
  so churn applied by the parent is visible to workers without any
  copying, and rate/price partials never cross a pipe;
* one iteration follows the exact phase structure of the simulated
  engine: local Equation-3 rate work, the fig. 3 diagonal aggregation
  schedule with a **barrier per step**, the Equation-4 price update on
  the authoritative diagonal holders, and the reverse distribution
  schedule, again barriered per step.  Within a step every transfer
  touches a disjoint LinkBlock slice, so workers apply their steps'
  transfers concurrently without locks.

Because both backends execute the same float operations in the same
order (they share :func:`~repro.parallel.engine.ned_price_update` and
the FlowTable gather/scatter kernels' reduction shapes), the process
backend is numerically equivalent to the simulated engine — and hence
to single-core NED — up to float associativity; the cross-backend test
suite asserts this, churn included.

Control flow: the parent drives workers over one pipe per worker
(``("iterate", n)`` / ``("reattach", row, manifest)`` / ``("stop",)``)
and workers synchronize among themselves with a shared barrier.  The
pool requires the ``fork`` start method (Linux): workers inherit the
shared mappings and the plan objects directly, and only re-attach by
name when a churn batch outgrows a FlowBlock's capacity and the parent
re-allocates its columns.
"""

from __future__ import annotations

import os

import multiprocessing as mp

import numpy as np

from ..core.network import FlowTable
from .engine import ParallelBackend, _Processor, ned_price_update
from .cost_model import cpu_of
from .shm import SharedArena, attach

__all__ = ["ProcessBackend"]


class _CellPlan:
    """Worker-side handle on one owned grid cell's shared flow state."""

    __slots__ = ("row", "routes", "weights", "bottleneck", "floor",
                 "floor_version", "_keepalive")

    def __init__(self, row, routes, weights, bottleneck):
        self.row = row
        self.routes = routes
        self.weights = weights
        self.bottleneck = bottleneck
        self.floor = None
        self.floor_version = -1
        self._keepalive = None

    def rebind(self, manifest):
        """Re-attach after the parent re-allocated this cell's arrays
        (FlowTable growth); the old fork-inherited views stay valid
        until dropped, so swapping references is enough."""
        arrays, keepalive = attach(manifest)
        self.routes = arrays["routes"]
        self.weights = arrays["weights"]
        self.bottleneck = arrays["column0"]  # FlowTable's bottleneck
        self._keepalive = keepalive


def _compute_cell_rates(plan, shared, consts, scratch):
    """Phase 1 for one cell: Equation-3 rates and G/H partials.

    Mirrors the simulated engine's use of ``FlowTable.price_sums`` /
    ``link_totals`` — same padded gather into a persistent scratch
    buffer, same ``(n, L)`` axis-1 sum, same ``bincount`` scatter — so
    the floats come out identical *and* the steady-state allocation
    profile matches the single-core kernels (only the small reduction
    outputs are allocated per iteration).
    """
    n = int(shared["counts"][plan.row])
    load_row = shared["load"][plan.row]
    hessian_row = shared["hessian"][plan.row]
    if n == 0:
        load_row[:] = 0.0
        hessian_row[:] = 0.0
        return
    n_links = consts["n_links"]
    utility = consts["utility"]
    routes = plan.routes[:n]
    weights = plan.weights[:n]
    route_len = routes.shape[1]
    flat = routes.reshape(-1)
    gather = consts["gather"]
    if len(gather) < n * route_len:
        gather = consts["gather"] = np.empty(n * route_len)
    buf = gather[: n * route_len]
    scratch[:n_links] = shared["prices"][plan.row]
    scratch[n_links] = 0.0  # pad link: price zero
    np.take(scratch, flat, out=buf)
    rho = buf.reshape(n, route_len).sum(axis=1)
    version = int(shared["versions"][plan.row])
    if plan.floor_version != version:
        plan.floor = utility.inverse_rate(plan.bottleneck[:n], weights)
        plan.floor_version = version
    rho = np.maximum(rho, plan.floor)
    rates = utility.rate(rho, weights)
    derivative = utility.rate_derivative(rho, weights)
    buf2d = buf.reshape(n, route_len)
    buf2d[:] = rates.reshape(n, 1)
    load_row[:] = np.bincount(flat, weights=buf,
                              minlength=n_links + 1)[:-1]
    buf2d[:] = derivative.reshape(n, 1)
    hessian_row[:] = np.bincount(flat, weights=buf,
                                 minlength=n_links + 1)[:-1]


def _one_iteration(plans, shared, consts, barrier):
    """One full engine iteration from a single worker's point of view.

    Every worker waits at every step barrier (even with nothing to
    send) so the phase structure — and therefore which partials each
    transfer reads — matches the simulated engine exactly.
    """
    scratch = consts["scratch"]
    for plan in plans:
        _compute_cell_rates(plan, shared, consts, scratch)
    barrier.wait()

    load, hessian = shared["load"], shared["hessian"]
    for step in consts["agg_plan"]:
        for dst_row, src_row, idx in step:
            load[dst_row, idx] += load[src_row, idx]
            hessian[dst_row, idx] += hessian[src_row, idx]
        barrier.wait()

    prices = shared["prices"]
    for row, idx in consts["price_plan"]:
        ned_price_update(prices[row], load[row], hessian[row], idx,
                         consts["capacity"], consts["idle_price"],
                         consts["gamma"])
    barrier.wait()

    for step in consts["dist_plan"]:
        for dst_row, src_row, idx in step:
            prices[dst_row, idx] = prices[src_row, idx]
        barrier.wait()


def _worker_main(conn, barrier, plans, shared, consts):
    """Command loop of one worker process."""
    consts["scratch"] = np.empty(consts["n_links"] + 1, dtype=np.float64)
    consts["gather"] = np.empty(0, dtype=np.float64)
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "stop":
                break
            elif command == "reattach":
                _, row, manifest = message
                for plan in plans:
                    if plan.row == row:
                        plan.rebind(manifest)
            elif command == "iterate":
                for _ in range(message[1]):
                    _one_iteration(plans, shared, consts, barrier)
                conn.send(("done",))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown command {command!r}")
    except Exception:  # noqa: BLE001 - forwarded to the parent
        import traceback
        barrier.abort()  # unblock peers; they error out and report too
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass


class ProcessBackend(ParallelBackend):
    """Persistent worker pool over shared-memory FlowBlocks.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.parallel.engine.MulticoreNedEngine`;
        its ``processors`` dict is populated here with shm-backed
        tables and price-row views.
    n_workers:
        Worker processes; defaults to ``min(grid cells, cpu_count)``.
        Clamped to the number of grid cells.
    reserve_per_block:
        Pre-grow each FlowBlock's table to this many flows so steady
        churn never triggers a re-allocate + re-attach.
    timeout:
        Seconds to wait for a worker's iteration acknowledgement
        before declaring the pool wedged.
    """

    name = "process"

    def __init__(self, engine, n_workers=None, reserve_per_block=0,
                 timeout=600.0):
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platform
            raise RuntimeError(
                "backend='process' needs the fork start method "
                "(POSIX); use backend='simulated' here")
        self.engine = engine
        self.timeout = float(timeout)
        partition = engine.partition
        n = partition.n_blocks
        n_procs = partition.n_processors
        n_links = engine.links.n_links
        if n_workers is None:
            n_workers = min(n_procs, os.cpu_count() or 1)
        self.n_workers = max(1, min(int(n_workers), n_procs))
        self._closed = False

        self.arena = SharedArena()
        self._cells = partition.grid_cells()
        self._row_of = {cell: i for i, cell in enumerate(self._cells)}
        self._prices = self.arena.full("prices", (n_procs, n_links), 1.0)
        self._load = self.arena.zeros("load", (n_procs, n_links))
        self._hessian = self.arena.zeros("hessian", (n_procs, n_links))
        self._counts = self.arena.zeros("counts", (n_procs,), np.int64)
        self._versions = self.arena.zeros("versions", (n_procs,), np.int64)
        # Capacity-derived constants also live in shared memory so the
        # §7 path (engine.refresh_capacity after an in-place capacity
        # change) reaches workers; the engine's idle-price vector is
        # re-pointed at the shared copy so its in-place refresh is
        # worker-visible with no extra message.
        self._shared_capacity = self.arena.allocate(
            "capacity", (n_links,), np.float64)
        self._shared_capacity[:] = engine.links.capacity
        self._shared_idle = self.arena.allocate(
            "idle_price", (n_links,), np.float64)
        self._shared_idle[:] = engine._idle_price
        engine._idle_price = self._shared_idle

        engine.processors = {}
        self._capacity_seen = []
        for i, cell in enumerate(self._cells):
            table = FlowTable(engine.links,
                              max_route_len=engine.max_route_len,
                              allocator=self.arena.allocator(f"cell{i}"))
            if reserve_per_block:
                table.reserve(int(reserve_per_block))
            engine.processors[cell] = _Processor(
                cell, engine.links, engine.max_route_len,
                table=table, prices=self._prices[i])
            self._capacity_seen.append(len(table._weights))

        # Round-robin cell ownership: worker w owns rows w, w+W, ...
        self._owner_of_row = [i % self.n_workers for i in range(n_procs)]

        def step_plan(steps, worker):
            return [[(self._row_of[t.dst], self._row_of[t.src],
                      partition.link_block(t.block, t.upward)) for t in step
                     if self._owner_of_row[self._row_of[t.dst]] == worker]
                    for step in steps]

        from .aggregation import final_down_holder, final_up_holder
        price_plans = [[] for _ in range(self.n_workers)]
        for block in range(n):
            for holder, idx in (
                    (final_up_holder(n, block),
                     partition.upward_links[block]),
                    (final_down_holder(n, block),
                     partition.downward_links[block])):
                row = self._row_of[holder]
                price_plans[self._owner_of_row[row]].append((row, idx))

        # Static per-iteration §6.1 communication counts (identical to
        # what the simulated backend tallies while moving the data).
        messages = inter_cpu = entries = 0
        for step in engine._agg_steps + engine._dist_steps:
            for t in step:
                messages += 1
                entries += partition.links_per_block
                if cpu_of(t.src, n) != cpu_of(t.dst, n):
                    inter_cpu += 1
        self._per_iteration = (messages, inter_cpu, entries,
                               len(engine._agg_steps))

        shared = {"prices": self._prices, "load": self._load,
                  "hessian": self._hessian, "counts": self._counts,
                  "versions": self._versions}
        self._barrier = self._ctx.Barrier(self.n_workers)
        self._conns = []
        self._workers = []
        for w in range(self.n_workers):
            plans = [_CellPlan(i, engine.processors[cell].table._routes,
                               engine.processors[cell].table._weights,
                               engine.processors[cell].table
                               ._bottleneck._data)
                     for i, cell in enumerate(self._cells)
                     if self._owner_of_row[i] == w]
            consts = {
                "n_links": n_links,
                "utility": engine.utility,
                "gamma": engine.gamma,
                "capacity": self._shared_capacity,
                "idle_price": self._shared_idle,
                "agg_plan": step_plan(engine._agg_steps, w),
                "dist_plan": step_plan(engine._dist_steps, w),
                "price_plan": price_plans[w],
            }
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self._barrier, plans, shared, consts),
                daemon=True, name=f"ned-worker-{w}")
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._workers.append(process)

    # ------------------------------------------------------------------
    # churn synchronization
    # ------------------------------------------------------------------
    def _sync(self):
        """Publish per-cell flow counts/versions; re-attach any cell
        whose table grew since the last iteration."""
        for i, cell in enumerate(self._cells):
            table = self.engine.processors[cell].table
            # Flush the lazily-recomputed bottleneck column into the
            # shared array (O(1) unless refresh_capacity marked it
            # dirty) — workers read the raw column, not the property.
            table.bottleneck_capacity()
            self._counts[i] = table.n_flows
            self._versions[i] = table.version
            capacity = len(table._weights)
            if capacity != self._capacity_seen[i]:
                manifest = self.arena.manifest(f"cell{i}")
                try:
                    self._conns[self._owner_of_row[i]].send(
                        ("reattach", i, manifest))
                except (BrokenPipeError, OSError):
                    self.close()
                    raise RuntimeError(
                        f"worker {self._owner_of_row[i]} is dead")
                self._capacity_seen[i] = capacity

    # ------------------------------------------------------------------
    # ParallelBackend interface
    # ------------------------------------------------------------------
    def refresh_capacity(self):
        """Republish the capacity vector to workers; the idle-price
        vector is the engine's own (shared) array, already refreshed
        in place by ``engine.refresh_capacity``."""
        self._shared_capacity[:] = self.engine.links.capacity

    def run(self, n, stats):
        if self._closed:
            raise RuntimeError("process backend is closed")
        n = int(n)
        self._sync()
        for w, conn in enumerate(self._conns):
            try:
                conn.send(("iterate", n))
            except (BrokenPipeError, OSError):
                self.close()
                raise RuntimeError(f"worker {w} is dead")
        errors = []
        for w, conn in enumerate(self._conns):
            if not conn.poll(self.timeout):
                self.close()
                raise RuntimeError(f"worker {w} did not finish "
                                   f"within {self.timeout:.0f}s")
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # Worker died without replying (killed, segfault):
                # tear the pool down — close() aborts the barrier so
                # surviving workers unwedge and exit.
                self.close()
                raise RuntimeError(f"worker {w} died mid-iteration")
            if message[0] == "error":
                errors.append(f"worker {w}:\n{message[1]}")
        if errors:
            self.close()
            raise RuntimeError("worker iteration failed\n"
                               + "\n".join(errors))
        messages, inter_cpu, entries, agg_steps = self._per_iteration
        stats.messages += n * messages
        stats.inter_cpu_messages += n * inter_cpu
        stats.link_entries_moved += n * entries
        stats.aggregation_steps += n * agg_steps
        stats.max_flows_per_processor = max(
            stats.max_flows_per_processor, int(self._counts.max()))
        stats.total_flows = self.engine.n_flows
        return stats

    def close(self):
        if self._closed:
            return
        self._closed = True
        # Unwedge any worker blocked at a phase barrier (a peer died
        # mid-iteration): aborting makes their wait raise, which they
        # report and then exit.  Harmless when workers are idle.
        try:
            self._barrier.abort()
        except Exception:  # pragma: no cover - defensive
            pass
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self.arena.close()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass
