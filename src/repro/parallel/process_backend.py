"""Worker-process execution of the multicore NED engine (§5-6.1).

Where :class:`~repro.parallel.engine.SimulatedBackend` time-slices the
``n x n`` processor grid inside one Python process, this backend runs
it on a persistent pool of **real worker processes**:

* each worker owns one or more FlowBlocks (grid cells, assigned
  round-robin so worker counts that don't divide the grid still work);
* all inter-worker coordination — step synchronization, LinkBlock
  hand-offs of load/Hessian/price rows, churn/version/capacity
  broadcast — goes through a pluggable **fabric**
  (:mod:`repro.parallel.fabric`): ``fabric="shm"`` keeps every hot
  array in ``multiprocessing.shared_memory`` and synchronizes steps
  with a sense-reversing flag-array barrier; ``fabric="socket"`` keeps
  worker state private and moves the same LinkBlock slices as
  length-prefixed TCP frames — one batched payload per peer per step,
  driven by a nonblocking send/recv loop — which is multi-host capable
  and deadlock-free regardless of OS socket buffer sizes;
* one iteration follows the exact phase structure of the simulated
  engine: local Equation-3 rate work, the fig. 3 diagonal aggregation
  schedule, the Equation-4 price update on the authoritative diagonal
  holders, and the reverse distribution schedule.  Within a step every
  transfer touches a disjoint LinkBlock slice, so workers apply their
  steps' transfers concurrently without locks; between steps the shm
  fabric barriers while the socket fabric's frames carry the
  dependencies themselves.

Because all backends and fabrics execute the same float operations in
the same order (they share :func:`~repro.parallel.engine.ned_price_update`
and the FlowTable gather/scatter kernels' reduction shapes — and a
socket frame carries the byte-exact slice the shm fabric reads in
place), the process backend is numerically equivalent to the simulated
engine — and hence to single-core NED — up to float associativity; the
cross-backend test suite asserts this for both fabrics, churn included.

Control flow: the parent drives workers over one fabric control
channel per worker (a pipe for shm, a TCP connection for sockets) and
the workers' per-iteration exchanges stay entirely among themselves.
The shm fabric requires the ``fork`` start method (Linux); the socket
fabric can also boot workers from scratch over the wire (see
:class:`~repro.parallel.fabric.LocalCluster`).
"""

from __future__ import annotations

import os
import traceback

import numpy as np

from ..core import kernels
from ..core.network import FlowTable
from .engine import ParallelBackend, _Processor, ned_price_update
from .cost_model import cpu_of
from .fabric import FABRICS, FabricError
from .shm import attach

__all__ = ["ProcessBackend", "CellPlan", "worker_loop"]


class CellPlan:
    """Worker-side handle on one owned grid cell's flow state.

    Under the shm fabric the arrays are shared-memory views inherited
    over ``fork``; under the socket fabric they are private arrays
    installed by churn frames.  The CSR route-index cache mirrors
    ``FlowTable._route_index`` — derived, worker-private, keyed on the
    cell's published version — so the worker kernels iterate the same
    pad-free view the single-process kernels do.
    """

    __slots__ = ("row", "routes", "weights", "bottleneck", "floor",
                 "floor_version", "csr_indices", "csr_width",
                 "csr_version", "_keepalive")

    def __init__(self, row, routes=None, weights=None, bottleneck=None):
        self.row = row
        self.routes = routes
        self.weights = weights
        self.bottleneck = bottleneck
        self.floor = None
        self.floor_version = None
        self.csr_indices = None
        self.csr_width = None
        self.csr_version = None
        self._keepalive = None

    def rebind(self, manifest):
        """Re-attach after the parent re-allocated this cell's shm
        arrays (FlowTable growth); the old fork-inherited views stay
        valid until dropped, so swapping references is enough."""
        arrays, keepalive = attach(manifest)
        self.routes = arrays["routes"]
        self.weights = arrays["weights"]
        self.bottleneck = arrays["column0"]  # FlowTable's bottleneck
        self.csr_version = None  # growth always bumps the version too
        self._keepalive = keepalive


def _compute_cell_rates(plan, fabric, consts, scratch):
    """Phase 1 for one cell: Equation-3 rates and G/H partials.

    Mirrors the simulated engine's use of ``FlowTable.price_sums`` /
    ``link_totals2`` — the same version-cached uniform-slot CSR view
    (slack slots carry the pad link, bitwise-neutral in every kernel)
    dispatched through the same :mod:`repro.core.kernels` tier the
    parent selected (``_kernel_tier`` ships in the worker consts), so
    the floats come out identical *and* the steady-state allocation
    profile matches the single-core kernels (only the small reduction
    outputs are allocated per iteration).  All tiers share one
    canonical chunked reduction order, so even a worker that had to
    degrade (say a remote socket host without numba) stays bitwise
    aligned with the parent.  The cell's CSR cache is rebuilt whole
    whenever the published version moves (cells are 1/n_procs of the
    population; the parent-side tables do the finer incremental
    maintenance).
    """
    n = int(fabric.counts[plan.row])
    load_row = fabric.load[plan.row]
    hessian_row = fabric.hessian[plan.row]
    if n == 0:
        load_row[:] = 0.0
        hessian_row[:] = 0.0
        return
    n_links = consts["n_links"]
    utility = consts["utility"]
    weights = plan.weights[:n]
    version = int(fabric.versions[plan.row])
    if plan.csr_version != version:
        routes = plan.routes[:n]
        width = routes.shape[1]
        while width > 1 and np.all(routes[:, width - 1] == n_links):
            width -= 1
        plan.csr_indices = np.ascontiguousarray(
            routes[:, :width]).reshape(-1)
        plan.csr_width = width
        plan.csr_version = version
    indices = plan.csr_indices
    width = plan.csr_width
    nnz = len(indices)
    gather = consts["gather"]
    if len(gather) < nnz:
        gather = consts["gather"] = np.empty(max(nnz, 2 * len(gather)))
    kern = kernels.active()
    scratch[:n_links] = fabric.prices[plan.row]
    scratch[n_links] = 0.0  # pad link: price zero
    rho = kern.price_sums(scratch, indices, n, width, gather)
    if plan.floor_version != version:
        plan.floor = utility.inverse_rate(plan.bottleneck[:n], weights)
        plan.floor_version = version
    rho = np.maximum(rho, plan.floor)
    rates = utility.rate(rho, weights)
    derivative = utility.rate_derivative(rho, weights)
    totals_load, totals_hessian = kern.link_totals2(
        rates, derivative, indices, n, width, n_links + 1, gather)
    load_row[:] = totals_load[:-1]
    hessian_row[:] = totals_hessian[:-1]


def _one_iteration(plans, fabric, consts):
    """One full engine iteration from a single worker's point of view.

    The loop is fabric-neutral: each schedule step hands the fabric
    its **per-peer frame groups** (every transfer this worker owes
    each peer, in plan order) plus the ordered receive list, and
    ``step_exchange`` returns the gathered parts aligned with the
    receives — an in-place shared-memory read for the shm fabric, one
    batched nonblocking frame per peer pair for the socket fabric.
    ``step_barrier`` closes each step (a sense-reversing barrier
    round, or nothing — socket frames already carry the step-to-step
    dependencies).  Transfers within a step touch disjoint LinkBlock
    slices, so the float reduction order is identical across fabrics
    and matches the simulated engine's phase structure exactly.
    """
    scratch = consts["scratch"]
    for plan in plans:
        _compute_cell_rates(plan, fabric, consts, scratch)
    fabric.step_barrier()

    load, hessian = fabric.load, fabric.hessian
    for send_groups, recvs in consts["agg_plan"]:
        for dst_row, idx, (load_part, hessian_part) in \
                fabric.step_exchange("agg", send_groups, recvs):
            load[dst_row, idx] += load_part
            hessian[dst_row, idx] += hessian_part
        fabric.step_barrier()

    prices = fabric.prices
    for row, idx in consts["price_plan"]:
        ned_price_update(prices[row], load[row], hessian[row], idx,
                         fabric.capacity, fabric.idle_price,
                         consts["gamma"])
    fabric.step_barrier()

    for send_groups, recvs in consts["dist_plan"]:
        for dst_row, idx, (prices_part,) in \
                fabric.step_exchange("dist", send_groups, recvs):
            prices[dst_row, idx] = prices_part
        fabric.step_barrier()


def worker_loop(endpoint, plans, consts):
    """Command loop of one worker process (any fabric)."""
    # Adopt the parent's kernel tier (fork workers inherit the module
    # state anyway; socket workers may boot on another host with a
    # different environment).  Degradation is safe: tiers are bitwise
    # identical, so a worker falling back stays aligned.
    tier = consts.get("_kernel_tier")
    if tier is not None:
        kernels.select(tier)
    consts["scratch"] = np.empty(consts["n_links"] + 1, dtype=np.float64)
    consts["gather"] = np.empty(0, dtype=np.float64)
    try:
        while True:
            message = endpoint.recv_command()
            command = message[0]
            if command == "stop":
                break
            elif command == "reattach":
                _, row, manifest = message
                for plan in plans:
                    if plan.row == row:
                        plan.rebind(manifest)
            elif command == "churn":
                endpoint.apply_churn(message[1], plans)
            elif command == "iterate":
                for _ in range(message[1]):
                    _one_iteration(plans, endpoint, consts)
                endpoint.send_reply(("done", endpoint.done_payload(plans)))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown command {command!r}")
    except Exception:  # noqa: BLE001 - forwarded to the parent
        endpoint.abort()  # unblock peers; they error out and report too
        try:
            endpoint.send_reply(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        endpoint.shutdown()


class ProcessBackend(ParallelBackend):
    """Persistent worker pool coordinated through a pluggable fabric.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.parallel.engine.MulticoreNedEngine`;
        its ``processors`` dict is populated here with fabric-backed
        tables and price rows.
    n_workers:
        Worker processes; defaults to ``min(grid cells, cpu_count)``.
        Clamped to the number of grid cells.
    reserve_per_block:
        Pre-grow each FlowBlock's table to this many flows so steady
        churn never triggers a re-allocate + re-attach (shm fabric).
    timeout:
        Seconds to wait for a worker's iteration acknowledgement
        before declaring the pool wedged.
    fabric:
        ``"shm"`` (shared memory + sense-reversing barrier, default)
        or ``"socket"`` (TCP frames, multi-host capable).
    fabric_options:
        Extra keyword arguments for the fabric constructor (e.g.
        ``launcher="subprocess"`` or ``barrier_mode="block"``).
    """

    name = "process"

    def __init__(self, engine, n_workers=None, reserve_per_block=0,
                 timeout=600.0, fabric="shm", fabric_options=None):
        if fabric not in FABRICS:
            raise ValueError(f"unknown fabric {fabric!r}; choose from "
                             f"{sorted(FABRICS)}")
        options = dict(fabric_options or {})
        options.setdefault("timeout", timeout)
        try:
            self.fabric = FABRICS[fabric](**options)
        except FabricError as exc:
            raise RuntimeError(
                f"backend='process' fabric={fabric!r}: {exc}") from exc
        self.engine = engine
        # Timeout enforcement lives in the fabric; mirror its effective
        # value (fabric_options may override the backend argument).
        self.timeout = self.fabric.timeout
        self._closed = False
        try:
            self._setup(engine, n_workers, reserve_per_block)
        except Exception:
            self.close()
            raise

    def _setup(self, engine, n_workers, reserve_per_block):
        partition = engine.partition
        n = partition.n_blocks
        n_procs = partition.n_processors
        n_links = engine.links.n_links
        if n_workers is None:
            n_workers = min(n_procs, os.cpu_count() or 1)
        self.n_workers = max(1, min(int(n_workers), n_procs))

        self._cells = partition.grid_cells()
        self._row_of = {cell: i for i, cell in enumerate(self._cells)}
        # Round-robin cell ownership: worker w owns rows w, w+W, ...
        self._owner_of_row = [i % self.n_workers for i in range(n_procs)]

        state = self.fabric.alloc_state(n_procs, n_links,
                                        engine.links.capacity,
                                        engine._idle_price)
        if state is not None:
            # Capacity-derived constants live in shared memory so the
            # §7 path (engine.refresh_capacity after an in-place
            # capacity change) reaches workers; the engine's idle-price
            # vector is re-pointed at the shared copy so its in-place
            # refresh is worker-visible with no extra message.
            engine._idle_price = state["idle_price"]

        engine.processors = {}
        for i, cell in enumerate(self._cells):
            table = FlowTable(engine.links,
                              max_route_len=engine.max_route_len,
                              allocator=self.fabric.table_allocator(i))
            if reserve_per_block:
                table.reserve(int(reserve_per_block))
            engine.processors[cell] = _Processor(
                cell, engine.links, engine.max_route_len,
                table=table, prices=self.fabric.processor_prices(i))

        # Fabric-neutral transfer plans.  Within each fig. 3 step a
        # worker stages every slice it owns whose destination lives
        # elsewhere — grouped **per destination peer**, so the socket
        # fabric frames one batched payload per pair — then gathers +
        # applies every transfer whose destination it owns.  Both
        # sides of a pair derive the batch layout from this same plan
        # (the per-peer group order here is the step's transfer order
        # filtered to that pair on both ends), so frames carry no
        # per-slice metadata.
        owner = self._owner_of_row
        row_of = self._row_of

        def split(steps):
            per_worker = [[] for _ in range(self.n_workers)]
            for step in steps:
                sends = [{} for _ in range(self.n_workers)]
                recvs = [[] for _ in range(self.n_workers)]
                for t in step:
                    src_row = row_of[t.src]
                    dst_row = row_of[t.dst]
                    idx = partition.link_block(t.block, t.upward)
                    src_owner = owner[src_row]
                    dst_owner = owner[dst_row]
                    if src_owner != dst_owner:
                        sends[src_owner].setdefault(dst_owner, []) \
                            .append((src_row, idx))
                    recvs[dst_owner].append((src_owner, dst_row, src_row,
                                             idx))
                for w in range(self.n_workers):
                    send_groups = sorted(sends[w].items())
                    per_worker[w].append((send_groups, recvs[w]))
            return per_worker

        agg_plans = split(engine._agg_steps)
        dist_plans = split(engine._dist_steps)

        from .aggregation import final_down_holder, final_up_holder
        price_plans = [[] for _ in range(self.n_workers)]
        for block in range(n):
            for holder, idx in (
                    (final_up_holder(n, block),
                     partition.upward_links[block]),
                    (final_down_holder(n, block),
                     partition.downward_links[block])):
                row = row_of[holder]
                price_plans[owner[row]].append((row, idx))

        # Static per-iteration §6.1 communication counts (identical to
        # what the simulated backend tallies while moving the data).
        messages = inter_cpu = entries = 0
        for step in engine._agg_steps + engine._dist_steps:
            for t in step:
                messages += 1
                entries += partition.links_per_block
                if cpu_of(t.src, n) != cpu_of(t.dst, n):
                    inter_cpu += 1
        self._per_iteration = (messages, inter_cpu, entries,
                               len(engine._agg_steps))

        per_worker = []
        for w in range(self.n_workers):
            plans = [CellPlan(i,
                              engine.processors[cell].table._routes,
                              engine.processors[cell].table._weights,
                              engine.processors[cell].table
                              ._bottleneck._data)
                     for i, cell in enumerate(self._cells)
                     if owner[i] == w]
            consts = {
                "n_links": n_links,
                "utility": engine.utility,
                "gamma": engine.gamma,
                "agg_plan": agg_plans[w],
                "dist_plan": dist_plans[w],
                "price_plan": price_plans[w],
                # Workers run the same kernel tier as the parent so
                # simulated/shm/socket stay aligned (all tiers are
                # bitwise-equal anyway; this keeps perf symmetric).
                "_kernel_tier": kernels.active().name,
            }
            if state is None:
                # Socket workers bootstrap over the wire: ship the
                # shapes and capacity constants alongside the plans.
                consts["_n_procs"] = n_procs
                consts["_capacity"] = np.array(engine.links.capacity)
                consts["_idle_price"] = np.array(engine._idle_price)
            per_worker.append((plans, consts))
        self.fabric.launch(worker_loop, per_worker)

    # ------------------------------------------------------------------
    # churn synchronization
    # ------------------------------------------------------------------
    def _sync(self):
        """Hand every cell's table to the fabric, which publishes the
        churn its workers need: the shm fabric refreshes the shared
        count/version vectors and re-attaches regrown cells, the
        socket fabric frames snapshots of cells whose version moved.
        Each fabric keeps its own dirty-tracking — the backend stays
        fabric-neutral."""
        self.fabric.sync_churn(
            [(i, self.engine.processors[cell].table)
             for i, cell in enumerate(self._cells)],
            self._owner_of_row)

    # ------------------------------------------------------------------
    # ParallelBackend interface
    # ------------------------------------------------------------------
    def refresh_capacity(self):
        """Republish the capacity vector to workers.  Under shm the
        idle-price vector is the engine's own (shared) array, already
        refreshed in place by ``engine.refresh_capacity``; under
        sockets both vectors ship with the next churn frame."""
        self.fabric.refresh_capacity(self.engine.links.capacity,
                                     self.engine._idle_price)

    @property
    def _workers(self):
        return self.fabric.workers

    def run(self, n, stats):
        if self._closed:
            raise RuntimeError("process backend is closed")
        n = int(n)
        try:
            # A dead worker can surface during the churn publish (a
            # reattach or snapshot send hits a broken channel) just as
            # during the iteration itself — both paths tear the pool
            # down eagerly so peers unwedge and resources release.
            self._sync()
            row_prices = self.fabric.iterate(n)
        except FabricError as exc:
            self.close()
            raise RuntimeError(str(exc)) from exc
        if row_prices:
            # Socket fabric: the authoritative price rows come back
            # with the acknowledgements (shared memory needs no copy).
            for row, vector in row_prices.items():
                self.engine.processors[self._cells[row]].prices[:] = vector
        messages, inter_cpu, entries, agg_steps = self._per_iteration
        stats.messages += n * messages
        stats.inter_cpu_messages += n * inter_cpu
        stats.link_entries_moved += n * entries
        stats.aggregation_steps += n * agg_steps
        stats.max_flows_per_processor = max(
            stats.max_flows_per_processor,
            max(p.table.n_flows for p in self.engine.processors.values()))
        stats.total_flows = self.engine.n_flows
        return stats

    def close(self):
        if self._closed:
            return
        self._closed = True
        self.fabric.close()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass
