"""Pluggable synchronization/transport fabrics for the parallel NED stack.

The worker-process backend (:mod:`repro.parallel.process_backend`) runs
the fig. 3 phase structure on real processes.  Everything those workers
need from each other — step synchronization, LinkBlock hand-offs of
price/load/Hessian rows, and churn/version/capacity broadcast from the
parent — goes through a **fabric**, so the coordination layer is
swappable without touching the numerics:

* :class:`SharedMemoryFabric` — all hot state lives in one
  :class:`~repro.parallel.shm.SharedArena` (the arena is this fabric's
  storage layer); ``publish`` is a no-op because writes are already
  visible, ``gather`` reads the peer's rows straight out of shared
  memory, and ``step_barrier`` is a :class:`SenseReversingBarrier` —
  a flag-array barrier in shared memory that replaces the
  ``multiprocessing.Barrier`` round per step.

* :class:`SocketFabric` — nothing is shared.  Workers hold private
  copies of their rows and exchange LinkBlock slices as
  length-prefixed frames over TCP, routed by the transfer plans (the
  same hand-offs the §6.1 cost model counts as ``inter_cpu_messages``);
  the parent broadcasts churn and collects prices over per-worker
  control connections.  Workers bootstrap entirely over the wire, so a
  worker started on another machine with the parent's address joins
  the same computation — :class:`LocalCluster` demonstrates exactly
  that on localhost with freshly ``exec``-ed interpreter "hosts".

Because the data a socket frame carries is the byte-exact slice the
shared-memory fabric would have read in place, and recv/apply order is
fixed by the shared transfer plan, both fabrics reproduce the simulated
engine's floats bit-for-bit (asserted to 1e-9 by the cross-backend
suite).  A key structural difference: the socket fabric needs **no
step barrier at all** — the frames themselves carry the step-to-step
data dependencies, so ``step_barrier`` is a documented no-op there.

Framing: every socket message is ``!II`` (payload length, tag) + raw
payload.  Control messages (:data:`TAG_CTRL`) are pickled tuples; data
messages (:data:`TAG_DATA`) are raw float64 slice bytes whose shape
both ends derive from the plan, so the hot path never pickles.  On
the hot path one :data:`TAG_DATA` frame is a **per-peer batch**: all
slices a worker owes one peer within a schedule step, concatenated in
plan order behind a single header (see :class:`PeerBatch`), written
and read through a nonblocking :func:`exchange_batches` loop so a
step can never deadlock on OS socket buffers.  Churn rides
:data:`TAG_CTRL` frames as full-cell snapshots or delta-encoded row
updates (see :func:`encode_cell_delta`).
"""

from __future__ import annotations

import os
import pickle
import secrets
import selectors
import socket as socketlib
import struct
import subprocess
import sys
import time
import weakref

import multiprocessing as mp

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from .shm import SharedArena

__all__ = ["FabricError", "SenseReversingBarrier", "SharedMemoryFabric",
           "SocketFabric", "LocalCluster", "measure_barrier_rate",
           "send_frame", "recv_frame", "TAG_CTRL", "TAG_DATA",
           "PeerBatch", "RecvBatch", "exchange_batches",
           "encode_cell_snapshot", "encode_cell_delta",
           "apply_cell_update", "connect_retry"]


class FabricError(RuntimeError):
    """A fabric-level failure: peer death, abort, or timeout."""


# ----------------------------------------------------------------------
# length-prefixed framing
# ----------------------------------------------------------------------
_HEADER = struct.Struct("!II")

#: pickled control tuple (commands, replies, churn, bootstrap).
TAG_CTRL = 1
#: raw float64 LinkBlock-slice bytes (the hot path — never pickled).
TAG_DATA = 2


#: Connections poisoned by a partial-frame failure.  Once part of a
#: frame is on the wire and the rest cannot follow, the byte stream is
#: desynchronized: the peer would misparse everything sent later.  The
#: connection object itself stays alive (callers may still be holding
#: it), so membership here makes every subsequent framed operation
#: raise :class:`FabricError` instead of silently corrupting frames.
_POISONED = weakref.WeakSet()


def _check_poisoned(sock):
    if sock in _POISONED:
        raise FabricError(
            "connection poisoned by an earlier partial-frame failure")


def _recv_exact(sock, n):
    """Read exactly ``n`` bytes; returns a bytearray (no final copy —
    both ``np.frombuffer`` and ``pickle.loads`` accept buffers)."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        try:
            k = sock.recv_into(view[got:], n - got)
        except TimeoutError:
            # socket.timeout is an OSError subclass; let it through so
            # callers can report "slow" distinctly from "dead".
            raise
        except OSError as exc:
            raise FabricError(f"connection lost: {exc}") from exc
        if k == 0:
            raise FabricError("peer closed the connection")
        got += k
    return buf


def send_frame(sock, tag, *parts):
    """Write one framed message: ``length+tag`` header, then ``parts``.

    ``parts`` are bytes-like (bytes, memoryview, contiguous ndarray).
    The fast path hands header + parts to ``sendmsg`` (one writev-style
    syscall, no concatenation copy).  A short write resumes from the
    unsent tail — fully-sent views are dropped and the partial one is
    sliced, O(parts) bookkeeping instead of re-flattening the frame —
    and a failure after part of the frame reached the wire *poisons*
    the connection: the stream is desynchronized mid-frame, so every
    later framed send/recv on it raises :class:`FabricError`.
    """
    _check_poisoned(sock)
    views = [memoryview(p).cast("B") for p in parts]
    header = _HEADER.pack(sum(v.nbytes for v in views), tag)
    buffers = [memoryview(header), *views]
    sent_any = False
    try:
        if hasattr(sock, "sendmsg"):
            while buffers:
                sent = sock.sendmsg(buffers)
                if sent:
                    sent_any = True
                while buffers and sent >= buffers[0].nbytes:
                    sent -= buffers[0].nbytes
                    buffers.pop(0)
                if sent:
                    buffers[0] = buffers[0][sent:]
        else:  # pragma: no cover - non-POSIX fallback
            sent_any = True  # sendall's progress is unobservable
            sock.sendall(b"".join(buffers))
    except TimeoutError:
        if sent_any:
            _POISONED.add(sock)
        raise
    except OSError as exc:
        if sent_any:
            _POISONED.add(sock)
        raise FabricError(f"connection lost: {exc}") from exc


def recv_frame(sock, expect=None):
    """Read one framed message; returns ``(tag, payload)``."""
    _check_poisoned(sock)
    length, tag = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    payload = _recv_exact(sock, length)
    if expect is not None and tag != expect:
        raise FabricError(f"expected frame tag {expect}, got {tag}")
    return tag, payload


def send_ctrl(sock, obj):
    send_frame(sock, TAG_CTRL, pickle.dumps(obj))


def recv_ctrl(sock):
    _, payload = recv_frame(sock, expect=TAG_CTRL)
    return pickle.loads(payload)


# ----------------------------------------------------------------------
# per-peer frame batching + the nonblocking step exchange
# ----------------------------------------------------------------------
class PeerBatch:
    """One step's coalesced outgoing frame for a single peer.

    All slices a worker owes one peer within a schedule step are
    gathered into a single reusable buffer — one ``!II`` header, then
    the slice bodies concatenated in transfer-plan order (both ends
    derive every body's offset and length from the shared plan, so no
    per-slice metadata is framed).  The buffer is sent through
    :func:`exchange_batches` with nonblocking ``send`` calls that
    resume from ``sent``, so a batch larger than the OS socket buffer
    simply takes several partial writes interleaved with reads.
    """

    __slots__ = ("_buf", "_view", "size", "sent")

    def __init__(self):
        self._buf = bytearray(_HEADER.size)
        self._view = memoryview(self._buf)
        self.size = 0
        self.sent = 0

    def stage(self, n_floats):
        """Reset for a new step; returns the float64 payload to fill."""
        need = _HEADER.size + 8 * n_floats
        if len(self._buf) < need:
            self._buf = bytearray(max(need, 2 * len(self._buf)))
            self._view = memoryview(self._buf)
        _HEADER.pack_into(self._buf, 0, 8 * n_floats, TAG_DATA)
        self.size = need
        self.sent = 0
        return np.frombuffer(self._buf, dtype=np.float64,
                             count=n_floats, offset=_HEADER.size)

    @property
    def done(self):
        return self.sent >= self.size

    def send_some(self, sock):
        """One nonblocking send of the unsent tail."""
        self.sent += sock.send(self._view[self.sent: self.size])


class RecvBatch:
    """Receiving side of a :class:`PeerBatch`: a reusable buffer sized
    from the transfer plan, filled by nonblocking partial reads."""

    __slots__ = ("_buf", "_view", "size", "got")

    def __init__(self):
        self._buf = bytearray(_HEADER.size)
        self._view = memoryview(self._buf)
        self.size = 0
        self.got = 0

    def stage(self, payload_bytes):
        need = _HEADER.size + payload_bytes
        if len(self._buf) < need:
            self._buf = bytearray(max(need, 2 * len(self._buf)))
            self._view = memoryview(self._buf)
        self.size = need
        self.got = 0

    @property
    def done(self):
        return self.got >= self.size

    def recv_some(self, sock):
        """One nonblocking read into the unfilled tail."""
        k = sock.recv_into(self._view[self.got: self.size])
        if k == 0:
            raise FabricError("peer closed the connection mid-step")
        self.got += k

    def payload(self):
        """Validated float64 view of the received batch body."""
        length, tag = _HEADER.unpack_from(self._buf)
        if tag != TAG_DATA or length != self.size - _HEADER.size:
            raise FabricError(
                f"batched frame mismatch: got tag {tag} length {length}, "
                f"expected tag {TAG_DATA} length {self.size - _HEADER.size}")
        return np.frombuffer(self._buf, dtype=np.float64,
                             count=length // 8, offset=_HEADER.size)


def exchange_batches(socks, outgoing, incoming, timeout=600.0,
                     selector=None):
    """Drive one step's batched sends and receives to completion.

    ``socks`` maps peer id -> nonblocking socket; ``outgoing`` maps
    peer id -> staged :class:`PeerBatch`; ``incoming`` maps peer id ->
    staged :class:`RecvBatch`.  A ``selectors`` loop interleaves
    partial writes with reads on every ready socket, so the exchange
    is deadlock-free by construction: no matter how far a peer's
    outgoing batch exceeds the OS socket buffers, this end keeps
    draining its receive side, which is exactly what lets the peer's
    writes (and hence its reads, and hence our writes) make progress.
    Compare the sendall-first protocol this replaced, which wedged as
    soon as a step's per-pair traffic outgrew ``SO_SNDBUF`` +
    ``SO_RCVBUF``.
    """
    sel = selector if selector is not None else selectors.DefaultSelector()
    registered = 0
    try:
        for peer in set(outgoing) | set(incoming):
            mask = 0
            out = outgoing.get(peer)
            if out is not None and not out.done:
                mask |= selectors.EVENT_WRITE
            inc = incoming.get(peer)
            if inc is not None and not inc.done:
                mask |= selectors.EVENT_READ
            if mask:
                sel.register(socks[peer], mask, peer)
                registered += 1
        deadline = time.monotonic() + timeout
        while registered:
            # Checked every round, not just on idle polls: a peer
            # dribbling one segment per poll must not extend the
            # deadline forever.
            if time.monotonic() > deadline:
                raise FabricError(
                    f"step exchange timed out after {timeout:.0f}s")
            events = sel.select(timeout=min(1.0, timeout))
            if not events:
                continue
            for key, mask in events:
                peer = key.data
                new_mask = key.events
                try:
                    if mask & selectors.EVENT_WRITE:
                        out = outgoing[peer]
                        out.send_some(key.fileobj)
                        if out.done:
                            new_mask &= ~selectors.EVENT_WRITE
                    if mask & selectors.EVENT_READ:
                        inc = incoming[peer]
                        inc.recv_some(key.fileobj)
                        if inc.done:
                            new_mask &= ~selectors.EVENT_READ
                except (BlockingIOError, InterruptedError):
                    continue  # spurious readiness; retry next round
                except FabricError:
                    raise
                except OSError as exc:
                    raise FabricError(
                        f"connection to peer {peer} lost: {exc}") from exc
                if new_mask != key.events:
                    if new_mask:
                        sel.modify(key.fileobj, new_mask, peer)
                    else:
                        sel.unregister(key.fileobj)
                        registered -= 1
    except BaseException:
        # Leave a caller-owned selector empty for the next step.
        if selector is not None:
            for peer in set(outgoing) | set(incoming):
                try:
                    sel.unregister(socks[peer])
                except (KeyError, ValueError):
                    pass
        raise
    finally:
        if selector is None:
            sel.close()


# ----------------------------------------------------------------------
# churn wire format: full-cell snapshots and delta-encoded row updates
# ----------------------------------------------------------------------
# A churn control frame carries a list of per-cell updates, each one of
#
#   ("snap",  row, n, version, routes, weights, bottleneck)
#       unconditional whole-cell replacement (bootstrap, regrown cells,
#       capacity refreshes that rewrite every bottleneck entry);
#
#   ("delta", row, n, base_version, version, rows,
#             routes[rows], weights[rows], bottleneck[rows])
#       only the positional rows that changed since ``base_version``,
#       plus the new flow count ``n`` (tail shrinks need no row data).
#       The receiver's version vector must read ``base_version`` for
#       the cell — anything else means the delta chain skewed (a lost
#       or reordered frame) and applying would corrupt the mirror, so
#       the receiver raises instead.
#
# Cutting broadcast cost from O(cell) to O(changed rows) per cell is
# what makes steady flowlet churn cheap over the wire: a burst touches
# the swap-filled holes and the appended block, not every flow.


def encode_cell_snapshot(row, table):
    """Whole-cell churn update (unconditional replacement)."""
    return ("snap", row, table.n_flows, table.version,
            table.routes.copy(), table.weights.copy(),
            np.array(table.bottleneck_capacity()))


def encode_cell_delta(row, table, rows, base_version):
    """Delta churn update: just ``rows`` (changed positions) and the
    new count/version, against a mirror at ``base_version``."""
    bottleneck = table.bottleneck_capacity()
    return ("delta", row, table.n_flows, base_version, table.version,
            rows, table.routes[rows], table.weights[rows],
            bottleneck[rows])


def apply_cell_update(update, plan, counts, versions):
    """Apply one snapshot/delta to a worker-side cell mirror.

    ``plan`` is the worker's :class:`~repro.parallel.process_backend.
    CellPlan` for the cell; ``counts``/``versions`` are the worker's
    per-cell vectors.  Raises :class:`FabricError` on version skew.
    """
    kind = update[0]
    if kind == "snap":
        _, row, n, version, routes, weights, bottleneck = update
        plan.routes = routes
        plan.weights = weights
        plan.bottleneck = bottleneck
    elif kind == "delta":
        _, row, n, base, version, rows, routes_r, weights_r, bn_r = update
        if int(versions[row]) != base:
            raise FabricError(
                f"churn delta for cell {row} expects version {base}, "
                f"mirror is at {int(versions[row])} — skewed delta chain")
        _ensure_cell_capacity(plan, n)
        if len(rows):
            plan.routes[rows] = routes_r
            plan.weights[rows] = weights_r
            plan.bottleneck[rows] = bn_r
    else:  # pragma: no cover - defensive
        raise FabricError(f"unknown churn update kind {kind!r}")
    counts[row] = n
    versions[row] = version


def _ensure_cell_capacity(plan, n):
    """Grow a socket worker's private cell arrays to hold ``n`` rows
    (amortized doubling; snapshot-installed arrays start exact-size)."""
    have = len(plan.weights)
    if have >= n:
        return
    cap = max(n, 2 * have, 64)
    routes = np.empty((cap, plan.routes.shape[1]), dtype=plan.routes.dtype)
    routes[:have] = plan.routes
    weights = np.empty(cap, dtype=np.float64)
    weights[:have] = plan.weights
    bottleneck = np.empty(cap, dtype=np.float64)
    bottleneck[:have] = plan.bottleneck
    plan.routes, plan.weights, plan.bottleneck = routes, weights, bottleneck


# ----------------------------------------------------------------------
# the shared-memory step barrier
# ----------------------------------------------------------------------
class SenseReversingBarrier:
    """Flag-array barrier in shared memory with two completion paths.

    Every worker owns one int64 *phase* slot in a shared array; a
    ``wait()`` bumps the caller's slot (the slot's parity is the
    classic sense bit) and completes when every slot has reached the
    caller's phase.  How completion is *detected* adapts to the host:

    * ``mode="spin"`` (chosen when the host has at least as many CPUs
      as workers — the paper's dedicated-core regime): workers spin on
      the flag array, yielding the GIL after a short budget.  No
      syscalls on the fast path, so a step costs far less than the
      futex round-trips inside ``multiprocessing.Barrier``.
    * ``mode="block"`` (oversubscribed hosts, e.g. CI containers):
      spinning would fight the scheduler, so arrival falls through to
      a lean central-semaphore protocol — worker 0 collects ``n - 1``
      arrival tokens and releases each peer's personal gate.  Two
      syscalls per non-root worker per step, no shared lock, and no
      condition-variable dance; the committed ``barrier_step``
      benchmark records it at ~3x ``mp.Barrier``'s step rate at 16
      workers on one core.  Per-worker gates (rather than one counting
      semaphore) matter: with a shared semaphore a fast worker
      re-entering the next phase can steal a slow sleeper's wake token
      and deadlock the pair.

    The phase slots are maintained in *both* modes, which gives the
    skew invariant the stress tests assert: between two of its own
    waits a worker can never observe a peer more than one phase ahead,
    because passing phase ``p + 1`` requires every slot to have
    reached ``p + 1`` first.

    Visibility note: the spin path relies on cache-coherent shared
    memory and total store order (x86); the blocking path synchronizes
    through semaphores and is portable.  One extra slot holds the
    abort flag — :meth:`abort` (from any process) makes every current
    and future ``wait`` raise :class:`FabricError`.
    """

    def __init__(self, phases, arrive, gates, worker_id, n_workers,
                 mode=None, spin=200, timeout=600.0):
        self._phases = phases
        self._arrive = arrive
        self._gates = gates
        self._id = int(worker_id)
        self._n = int(n_workers)
        if mode is None:
            mode = ("spin" if (os.cpu_count() or 1) >= self._n else "block")
        if mode not in ("spin", "block"):
            raise ValueError(f"unknown barrier mode {mode!r}")
        self.mode = mode
        self._spin = int(spin)
        self._timeout = float(timeout)

    @staticmethod
    def alloc(arena: SharedArena, ctx, n_workers, tag="fabric/barrier"):
        """Allocate the shared pieces: returns ``(phases, arrive, gates)``.

        ``phases`` is an ``(n_workers + 1,)`` int64 arena array (last
        slot = abort flag); ``arrive``/``gates`` are context semaphores
        used only by the blocking path.
        """
        phases = arena.zeros(tag, (n_workers + 1,), np.int64)
        arrive = ctx.Semaphore(0)
        gates = [ctx.Semaphore(0) for _ in range(n_workers)]
        return phases, arrive, gates

    def for_worker(self, worker_id):
        """A handle bound to another worker id (same shared state)."""
        return SenseReversingBarrier(
            self._phases, self._arrive, self._gates, worker_id, self._n,
            mode=self.mode, spin=self._spin, timeout=self._timeout)

    # ------------------------------------------------------------------
    @property
    def phase(self):
        """This worker's own phase counter."""
        return int(self._phases[self._id])

    def peer_phases(self):
        """Snapshot of every worker's phase (skew assertions)."""
        return self._phases[: self._n].copy()

    def aborted(self):
        return bool(self._phases[self._n])

    def abort(self):
        """Poison the barrier; wakes blocked waiters, everyone raises."""
        self._phases[self._n] = 1
        # Over-releasing is harmless (the fabric is being torn down);
        # it guarantees nobody stays blocked in a semaphore.
        for _ in range(self._n):
            self._arrive.release()
        for gate in self._gates:
            gate.release()

    # ------------------------------------------------------------------
    def wait(self):
        phases = self._phases
        me = self._id
        n = self._n
        target = int(phases[me]) + 1
        phases[me] = target
        if n == 1:
            if phases[n]:
                raise FabricError("barrier aborted")
            return
        if self.mode == "spin":
            self._wait_spin(target)
        else:
            self._wait_block()

    def _wait_spin(self, target):
        phases = self._phases
        n = self._n
        budget = self._spin
        deadline = time.monotonic() + self._timeout
        spins = 0
        while True:
            if phases[n]:
                raise FabricError("barrier aborted")
            if int(phases[:n].min()) >= target:
                return
            spins += 1
            if spins > budget:
                time.sleep(0)  # yield; completion detection stays in shm
                if spins % 1024 == 0 and time.monotonic() > deadline:
                    raise FabricError(
                        f"barrier timed out after {self._timeout:.0f}s")

    def _wait_block(self):
        if self._id == 0:
            acquire = self._arrive.acquire
            for _ in range(self._n - 1):
                if not acquire(True, self._timeout):
                    raise FabricError(
                        f"barrier timed out after {self._timeout:.0f}s")
                if self._phases[self._n]:
                    raise FabricError("barrier aborted")
            for gate in self._gates[1:]:
                gate.release()
        else:
            self._arrive.release()
            if not self._gates[self._id].acquire(True, self._timeout):
                raise FabricError(
                    f"barrier timed out after {self._timeout:.0f}s")
        if self._phases[self._n]:
            raise FabricError("barrier aborted")


# ----------------------------------------------------------------------
# worker-side endpoints
# ----------------------------------------------------------------------
class _ShmEndpoint:
    """Worker view of a :class:`SharedMemoryFabric`.

    All arrays are the parent's shared-memory arrays (inherited over
    ``fork``), so publishing is implicit (the write *is* the
    publication) and :meth:`step_exchange` is a fancy-indexed read of
    each source row in place; the step is closed by a barrier round.
    """

    def __init__(self, conn, barrier, state):
        self._conn = conn
        self._barrier = barrier
        self.prices = state["prices"]
        self.load = state["load"]
        self.hessian = state["hessian"]
        self.counts = state["counts"]
        self.versions = state["versions"]
        self.capacity = state["capacity"]
        self.idle_price = state["idle_price"]

    def step_barrier(self):
        self._barrier.wait()

    def step_exchange(self, kind, send_groups, recvs):
        """In-place reads; ``send_groups`` needs no action (fancy
        indexing copies, so the staged parts are stable snapshots
        even while peers apply concurrently within the step)."""
        if kind == "agg":
            return [(dst_row, idx,
                     (self.load[src_row, idx], self.hessian[src_row, idx]))
                    for _, dst_row, src_row, idx in recvs]
        return [(dst_row, idx, (self.prices[src_row, idx],))
                for _, dst_row, src_row, idx in recvs]

    def recv_command(self):
        return self._conn.recv()

    def send_reply(self, obj):
        self._conn.send(obj)

    def done_payload(self, plans):
        # Prices are shared; the parent already sees them.
        return

    def apply_churn(self, payload, plans):  # pragma: no cover - defensive
        raise FabricError("shm fabric ships churn through shared memory")

    def abort(self):
        self._barrier.abort()

    def shutdown(self):
        pass


class _SocketEndpoint:
    """Worker view of a :class:`SocketFabric`.

    Owns private copies of the full matrices (rows it does not own are
    only ever written by received frames) plus one TCP connection to
    the parent and one per peer worker.  Within a schedule step, all
    slices owed to the same peer ride **one** :class:`PeerBatch` frame
    and the whole step's sends and receives are driven through the
    nonblocking :func:`exchange_batches` loop — partial writes
    interleave with reads, so no amount of per-pair traffic can wedge
    the mesh on OS socket buffers.  Frame layout per peer pair is
    fixed by the shared transfer plan, so no per-slice metadata is
    framed.
    """

    def __init__(self, worker_id, parent_sock, peers, n_procs, boot):
        self.worker_id = worker_id
        self._parent = parent_sock
        self._peers = peers  # worker_id -> socket (nonblocking)
        for sock in peers.values():
            sock.setblocking(False)
        n_links = boot["n_links"]
        self.prices = np.ones((n_procs, n_links), dtype=np.float64)
        self.load = np.zeros((n_procs, n_links), dtype=np.float64)
        self.hessian = np.zeros((n_procs, n_links), dtype=np.float64)
        self.counts = np.zeros(n_procs, dtype=np.int64)
        self.versions = np.full(n_procs, -1, dtype=np.int64)
        self.capacity = np.array(boot["capacity"], dtype=np.float64)
        self.idle_price = np.array(boot["idle_price"], dtype=np.float64)
        self._timeout = float(boot.get("timeout", 600.0))
        self._selector = selectors.DefaultSelector()
        # Reusable per-peer batch buffers and per-step prepared specs
        # (sizes and offsets derived once from the static plans).
        self._out_batches = {}
        self._in_batches = {}
        self._step_specs = {}

    def step_barrier(self):
        # Data dependencies between steps ride the frames themselves
        # (a slice is only received once the sender finished producing
        # it), so the socket fabric needs no barrier round.
        pass

    def _prepare_step(self, kind, send_groups, recvs):
        """Size one step's batches from the plan (cached: plans are
        static for the worker's lifetime, so sizes are too)."""
        mult = 2 if kind == "agg" else 1
        out_specs = []
        for peer, transfers in send_groups:
            prepped = [(src_row, idx, len(idx)) for src_row, idx in transfers]
            out_specs.append(
                (peer, prepped, mult * sum(k for _, _, k in prepped)))
        in_floats = {}
        recv_specs = []
        for src_owner, dst_row, src_row, idx in recvs:
            k = len(idx)
            recv_specs.append((src_owner, dst_row, src_row, idx, k))
            if src_owner != self.worker_id:
                in_floats[src_owner] = in_floats.get(src_owner, 0) + mult * k
        return out_specs, sorted(in_floats.items()), recv_specs

    def step_exchange(self, kind, send_groups, recvs):
        """One schedule step: batch, exchange, slice out in plan order.

        Returns ``[(dst_row, idx, parts), ...]`` aligned with
        ``recvs``; ``parts`` is ``(load, hessian)`` for ``"agg"`` and
        ``(prices,)`` for ``"dist"``.  Slices from peers are views
        into the per-peer receive buffer (stable until the peer's next
        batch); local slices are fancy-indexed copies.
        """
        key = (kind, id(recvs), id(send_groups))
        entry = self._step_specs.get(key)
        if entry is None:
            # The cached entry pins the keyed plan objects, so their
            # ids cannot be recycled while the cache can serve them.
            entry = self._step_specs[key] = (
                send_groups, recvs,
                self._prepare_step(kind, send_groups, recvs))
        out_specs, in_specs, recv_specs = entry[2]

        outgoing = {}
        for peer, transfers, total in out_specs:
            batch = self._out_batches.get(peer)
            if batch is None:
                batch = self._out_batches[peer] = PeerBatch()
            payload = batch.stage(total)
            offset = 0
            for src_row, idx, k in transfers:
                if kind == "agg":
                    np.take(self.load[src_row], idx,
                            out=payload[offset: offset + k])
                    np.take(self.hessian[src_row], idx,
                            out=payload[offset + k: offset + 2 * k])
                    offset += 2 * k
                else:
                    np.take(self.prices[src_row], idx,
                            out=payload[offset: offset + k])
                    offset += k
            outgoing[peer] = batch
        incoming = {}
        for peer, total in in_specs:
            batch = self._in_batches.get(peer)
            if batch is None:
                batch = self._in_batches[peer] = RecvBatch()
            batch.stage(8 * total)
            incoming[peer] = batch
        if outgoing or incoming:
            exchange_batches(self._peers, outgoing, incoming,
                             timeout=self._timeout,
                             selector=self._selector)

        results = []
        offsets = dict.fromkeys(incoming, 0)
        payloads = {peer: batch.payload()
                    for peer, batch in incoming.items()}
        for src_owner, dst_row, src_row, idx, k in recv_specs:
            if src_owner == self.worker_id:
                if kind == "agg":
                    parts = (self.load[src_row, idx],
                             self.hessian[src_row, idx])
                else:
                    parts = (self.prices[src_row, idx],)
            else:
                buf = payloads[src_owner]
                o = offsets[src_owner]
                if kind == "agg":
                    parts = (buf[o: o + k], buf[o + k: o + 2 * k])
                    offsets[src_owner] = o + 2 * k
                else:
                    parts = (buf[o: o + k],)
                    offsets[src_owner] = o + k
            results.append((dst_row, idx, parts))
        return results

    def recv_command(self):
        return recv_ctrl(self._parent)

    def send_reply(self, obj):
        send_ctrl(self._parent, obj)

    def done_payload(self, plans):
        return {plan.row: self.prices[plan.row].copy() for plan in plans}

    def apply_churn(self, payload, plans):
        by_row = {plan.row: plan for plan in plans}
        for update in payload["cells"]:
            apply_cell_update(update, by_row[update[1]], self.counts,
                              self.versions)
        if payload.get("capacity") is not None:
            self.capacity[:] = payload["capacity"]
            self.idle_price[:] = payload["idle_price"]

    def abort(self):
        pass  # closing our sockets cascades EOFs through the mesh

    def shutdown(self):
        self._selector.close()
        for sock in self._peers.values():
            _close_quietly(sock)
        _close_quietly(self._parent)


def _close_quietly(sock):
    try:
        sock.close()
    except OSError:  # pragma: no cover - already closed
        pass


def _clamp_buffers(sock, sockbuf):
    """Apply an explicit ``SO_SNDBUF``/``SO_RCVBUF`` size (testing aid:
    the deadlock regression shrinks buffers below one step's per-pair
    traffic; the kernel may round the request up to its minimum).

    Also clamps ``TCP_MAXSEG``: loopback's ~64KB MSS dwarfs a
    few-KB receive window, so silly-window-syndrome avoidance would
    never reopen the window and every transfer would crawl along
    200ms persist-timer probes — a timing artifact, not the flow
    control being exercised.  A small MSS restores ordinary window
    updates while keeping the in-flight byte bound the test wants.
    Must run *before* ``connect`` so the clamp lands in the SYN."""
    if sockbuf:
        sock.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_SNDBUF,
                        int(sockbuf))
        sock.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_RCVBUF,
                        int(sockbuf))
        try:
            sock.setsockopt(socketlib.IPPROTO_TCP, socketlib.TCP_MAXSEG,
                            536)
        except OSError:  # pragma: no cover - non-TCP socket
            pass


def connect_retry(address, attempts=50, delay=0.1, sockbuf=None):
    """``socket.create_connection`` semantics (every ``getaddrinfo``
    candidate across families is tried) with retries, plus the buffer
    clamp applied *before* connect so it lands in the SYN.

    Shared by the fabric bootstrap, the socket workers, and the
    allocator-service client (including its reconnect path): one
    connector, one retry/backoff policy, one place the clamp is
    guaranteed to precede ``connect``.
    """
    host, port = tuple(address)
    last = None
    for _ in range(attempts):
        try:
            candidates = socketlib.getaddrinfo(
                host, port, type=socketlib.SOCK_STREAM)
        except OSError as exc:
            last = exc
            time.sleep(delay)
            continue
        for family, socktype, proto, _, sockaddr in candidates:
            sock = socketlib.socket(family, socktype, proto)
            try:
                _clamp_buffers(sock, sockbuf)
                sock.settimeout(30.0)
                sock.connect(sockaddr)
            except OSError as exc:
                last = exc
                sock.close()
                continue
            sock.settimeout(None)
            sock.setsockopt(socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY, 1)
            return sock
        time.sleep(delay)
    raise FabricError(f"cannot reach {address}: {last}")


#: Back-compat alias (pre-PR 7 internal name).
_connect_retry = connect_retry

#: Handshake token length (raw bytes, sent before any pickled frame).
_TOKEN_LEN = 16


def _accept_authenticated(listener, token, deadline, sockbuf=None):
    """Accept until a connection presents ``token``; others are closed.

    The token check runs *before* any pickled frame is read, so a
    stray or hostile connection can neither wedge the bootstrap (each
    handshake has its own short timeout) nor reach the unpickler.
    """
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise FabricError("fabric bootstrap timed out")
        listener.settimeout(remaining)
        try:
            sock, _ = listener.accept()
        except TimeoutError as exc:
            raise FabricError("fabric bootstrap timed out") from exc
        sock.settimeout(10.0)
        try:
            presented = bytes(_recv_exact(sock, _TOKEN_LEN))
        except (FabricError, TimeoutError):
            sock.close()
            continue
        if presented != token:
            sock.close()
            continue
        sock.settimeout(None)
        sock.setsockopt(socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY, 1)
        _clamp_buffers(sock, sockbuf)
        return sock


def _socket_worker_entry(host, port, worker_id, bind_host="127.0.0.1",
                         token=b"", sockbuf=None):
    """Entry point of one socket-fabric worker.

    Needs only the parent's address and the fabric token: it connects,
    authenticates, receives the bootstrap frame (plans, constants,
    peer map), builds the peer mesh, and hands control to the
    backend's worker loop.  This is what makes the fabric multi-host
    capable — run this function (or ``python -m
    repro.parallel.socket_worker HOST PORT ID`` with the token in
    ``$REPRO_FABRIC_TOKEN``) on any machine that can reach the parent.

    ``sockbuf`` (testing aid; the launcher forwards
    ``SocketFabric(sockbuf=)`` via argument or
    ``$REPRO_FABRIC_SOCKBUF``) clamps the mesh sockets' buffers/MSS.
    Passing it here clamps the listener *before it is ever
    advertised*, so every accepted mesh connection inherits the clamp
    at SYN time; a hand-started worker that only learns the value
    from its boot frame gets a best-effort post-boot clamp instead
    (a peer that dials in the window between ``hello`` and the boot
    read misses the SYN-time MSS clamp).
    """
    from .process_backend import worker_loop

    listener = socketlib.socket()
    listener.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_REUSEADDR, 1)
    _clamp_buffers(listener, sockbuf)
    listener.bind((bind_host, 0))
    listener.listen(64)
    parent = connect_retry((host, port))
    parent.sendall(token)
    send_ctrl(parent, ("hello", worker_id,
                       (bind_host, listener.getsockname()[1])))
    boot = recv_ctrl(parent)

    peers = {}
    if sockbuf is None:
        sockbuf = boot.get("sockbuf")
        _clamp_buffers(listener, sockbuf)  # best-effort (see docstring)
    for j, address in boot["peers"].items():
        if j < worker_id:
            sock = connect_retry(tuple(address), sockbuf=sockbuf)
            sock.sendall(token)
            send_ctrl(sock, ("peer", worker_id))
            peers[j] = sock
    deadline = time.monotonic() + 60.0
    for _ in range(boot["n_workers"] - 1 - worker_id):
        sock = _accept_authenticated(listener, token, deadline,
                                     sockbuf=sockbuf)
        tag, j = recv_ctrl(sock)
        if tag != "peer":  # pragma: no cover - defensive
            raise FabricError(f"unexpected mesh handshake {tag!r}")
        peers[j] = sock
    listener.close()

    from .process_backend import CellPlan
    plans = [CellPlan(row) for row in boot["rows"]]
    endpoint = _SocketEndpoint(worker_id, parent, peers,
                               boot["n_procs"], boot)
    worker_loop(endpoint, plans, boot["consts"])


# ----------------------------------------------------------------------
# parent-side fabrics
# ----------------------------------------------------------------------
class SharedMemoryFabric:
    """Coordination over one shared-memory arena (single host).

    The extracted — and upgraded — transport of the original process
    backend: FlowTable columns and the price/load/Hessian matrices live
    in a :class:`~repro.parallel.shm.SharedArena`, churn reaches
    workers by writing the shared count/version vectors, and the
    per-step synchronization is a :class:`SenseReversingBarrier`
    instead of a ``multiprocessing.Barrier``.
    """

    name = "shm"

    def __init__(self, timeout: float = 600.0,
                 barrier_mode: str | None = None,
                 barrier_spin: int = 200) -> None:
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise FabricError(
                "the shm fabric needs the fork start method "
                "(POSIX)") from exc
        self.timeout = float(timeout)
        self._barrier_mode = barrier_mode
        self._barrier_spin = barrier_spin
        self.arena = SharedArena()
        self.workers = []
        self._conns = []
        self._barrier = None
        self._state = None
        self._table_rows = []
        self._capacity_seen = {}
        self._closed = False

    # -- storage ------------------------------------------------------
    def alloc_state(self, n_procs: int, n_links: int,
                    capacity: npt.ArrayLike,
                    idle_price: npt.ArrayLike) -> dict[str, Any]:
        arena = self.arena
        state = {
            "prices": arena.full("prices", (n_procs, n_links), 1.0),
            "load": arena.zeros("load", (n_procs, n_links)),
            "hessian": arena.zeros("hessian", (n_procs, n_links)),
            "counts": arena.zeros("counts", (n_procs,), np.int64),
            "versions": arena.zeros("versions", (n_procs,), np.int64),
            "capacity": arena.allocate("capacity", (n_links,), np.float64),
            "idle_price": arena.allocate("idle_price", (n_links,),
                                         np.float64),
        }
        state["capacity"][:] = capacity
        state["idle_price"][:] = idle_price
        self._state = state
        return state

    def table_allocator(self, row: int) -> Callable:
        self._table_rows.append(row)
        return self.arena.allocator(f"cell{row}")

    def processor_prices(self, row: int) -> npt.NDArray[np.float64]:
        return self._state["prices"][row]

    def _table_capacity(self, row):
        return self.arena.shape(f"cell{row}/weights")[0]

    # -- lifecycle ----------------------------------------------------
    def launch(self, worker_body: Callable,
               per_worker: Sequence[tuple[Any, Any]]) -> None:
        # Snapshot each cell's array capacity as the workers will
        # inherit it: sync_churn re-attaches a worker whenever the
        # parent's table has re-allocated past this since.
        self._capacity_seen = {row: self._table_capacity(row)
                               for row in self._table_rows}
        n_workers = len(per_worker)
        phases, arrive, gates = SenseReversingBarrier.alloc(
            self.arena, self._ctx, n_workers)
        self._barrier = SenseReversingBarrier(
            phases, arrive, gates, 0, n_workers, mode=self._barrier_mode,
            spin=self._barrier_spin, timeout=self.timeout)
        for w, (plans, consts) in enumerate(per_worker):
            parent_conn, child_conn = self._ctx.Pipe()
            endpoint = _ShmEndpoint(child_conn, self._barrier.for_worker(w),
                                    self._state)
            process = self._ctx.Process(
                target=worker_body, args=(endpoint, plans, consts),
                daemon=True, name=f"ned-worker-{w}")
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self.workers.append(process)

    # -- parent-side operations --------------------------------------
    def sync_churn(self, cell_tables: Sequence[tuple[int, Any]],
                   owner_of_row: dict[int, int]) -> None:
        """Publish per-cell flow counts/versions; re-attach any cell
        whose shared arrays were re-allocated (table growth) since the
        owning worker last mapped them."""
        counts = self._state["counts"]
        versions = self._state["versions"]
        for row, table in cell_tables:
            # Flush the lazily-recomputed bottleneck column into the
            # shared array (O(1) unless refresh_capacity marked it
            # dirty) — workers read the raw column, not the property.
            table.bottleneck_capacity()
            counts[row] = table.n_flows
            versions[row] = table.version
            capacity = self._table_capacity(row)
            if capacity != self._capacity_seen[row]:
                self._send(owner_of_row[row],
                           ("reattach", row,
                            self.arena.manifest(f"cell{row}")))
                self._capacity_seen[row] = capacity

    def _send(self, worker, message):
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise FabricError(f"worker {worker} is dead") from exc

    def iterate(self, n: int) -> None:
        for w in range(len(self._conns)):
            self._send(w, ("iterate", int(n)))
        errors = []
        # One shared deadline across workers (see SocketFabric.iterate):
        # a wedged pool fails after ~timeout total, not per worker.
        deadline = time.monotonic() + self.timeout
        for w, conn in enumerate(self._conns):
            if not conn.poll(max(0.05, deadline - time.monotonic())):
                raise FabricError(f"worker {w} did not finish within "
                                  f"{self.timeout:.0f}s")
            try:
                message = conn.recv()
            except (EOFError, OSError) as exc:
                # Worker died without replying (killed, segfault).
                raise FabricError(
                    f"worker {w} died mid-iteration") from exc
            if message[0] == "error":
                errors.append(f"worker {w}:\n{message[1]}")
        if errors:
            raise FabricError("worker iteration failed\n" + "\n".join(errors))

    def refresh_capacity(self, capacity: npt.ArrayLike,
                         idle_price: npt.ArrayLike) -> None:
        self._state["capacity"][:] = capacity
        self._state["idle_price"][:] = idle_price

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Unwedge any worker blocked at a phase barrier (a peer died
        # mid-iteration): aborting makes their wait raise, which they
        # report and then exit.  Harmless when workers are idle.
        if self._barrier is not None:
            try:
                self._barrier.abort()
            except Exception:  # pragma: no cover - defensive
                pass
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self.workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self.arena.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass


class SocketFabric:
    """Coordination over TCP length-prefixed frames (multi-host capable).

    The parent listens on ``(host, 0)``; workers connect, bootstrap
    over the wire, and build a full peer mesh for the LinkBlock frames.
    ``launcher="fork"`` (default) starts workers as local forked
    processes; ``launcher="subprocess"`` execs fresh interpreters that
    know nothing but the parent's address — byte-for-byte the same
    protocol a remote host would speak.

    The step exchange is deadlock-free by construction: a worker
    coalesces everything it owes one peer within a schedule step into
    a single :class:`PeerBatch` frame and drives all of the step's
    sends and receives through the nonblocking
    :func:`exchange_batches` loop, interleaving partial writes with
    reads — so per-pair step traffic may exceed ``SO_SNDBUF`` +
    ``SO_RCVBUF`` arbitrarily (the small-buffer regression test clamps
    both below one step's traffic and still completes).  Churn is
    delta-encoded: after a cell's first full snapshot, only changed
    rows plus the new count/version ship (see the wire-format notes
    above :func:`encode_cell_snapshot`).

    ``sockbuf`` (testing aid) clamps every fabric socket's
    ``SO_SNDBUF``/``SO_RCVBUF`` to the given byte count.
    """

    name = "socket"

    def __init__(self, timeout: float = 600.0, host: str = "127.0.0.1",
                 launcher: str = "fork",
                 sockbuf: int | None = None) -> None:
        if launcher not in ("fork", "subprocess"):
            raise ValueError(f"unknown launcher {launcher!r}")
        self.timeout = float(timeout)
        self.host = host
        self.launcher = launcher
        self.sockbuf = sockbuf
        self.workers = []
        self._conns = {}
        # Per-run shared secret, presented as raw bytes on every new
        # connection before any pickled frame is read: a connection
        # that cannot produce it is dropped without touching the
        # unpickler.  (Frames are pickled, so the fabric must only
        # ever listen on trusted networks regardless.)
        self._token = secrets.token_bytes(_TOKEN_LEN)
        self._listener = socketlib.socket()
        self._listener.setsockopt(socketlib.SOL_SOCKET,
                                  socketlib.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._capacity_update = None
        self._published_version = {}
        self._closed = False

    @property
    def token_hex(self) -> str:
        """The fabric secret, hex-encoded — hand it (e.g. via
        ``$REPRO_FABRIC_TOKEN``) to workers started on other hosts."""
        return self._token.hex()

    # -- storage: none is shared --------------------------------------
    def alloc_state(self, n_procs: int, n_links: int,
                    capacity: npt.ArrayLike,
                    idle_price: npt.ArrayLike) -> None:
        return

    def table_allocator(self, row: int) -> None:
        return

    def processor_prices(self, row: int) -> None:
        return

    # -- lifecycle ----------------------------------------------------
    def launch(self, worker_body: Callable,
               per_worker: Sequence[tuple[Any, Any]]) -> None:
        # ``worker_body`` is fixed by protocol for this fabric (the
        # entry reimports it); ``per_worker`` supplies rows + consts.
        n_workers = len(per_worker)
        for w in range(n_workers):
            if self.launcher == "fork":
                ctx = mp.get_context("fork")
                process = ctx.Process(
                    target=_socket_worker_entry,
                    args=(self.host, self.port, w, self.host, self._token,
                          self.sockbuf),
                    daemon=True, name=f"ned-sockworker-{w}")
                process.start()
            else:
                src_root = os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))))
                env = dict(os.environ)
                env["PYTHONPATH"] = src_root + os.pathsep + \
                    env.get("PYTHONPATH", "")
                env["REPRO_FABRIC_TOKEN"] = self.token_hex
                if self.sockbuf:
                    env["REPRO_FABRIC_SOCKBUF"] = str(int(self.sockbuf))
                process = subprocess.Popen(
                    [sys.executable, "-m", "repro.parallel.socket_worker",
                     self.host, str(self.port), str(w), self.host],
                    env=env)
            self.workers.append(process)

        deadline = time.monotonic() + 60.0
        addresses = {}
        for _ in range(n_workers):
            # Control connections stay unclamped even under
            # ``sockbuf``: the deadlock being regression-tested lives
            # on the worker mesh (the step data path), and throttling
            # bootstrap/churn/price frames would only slow tests down.
            sock = _accept_authenticated(self._listener, self._token,
                                         deadline)
            tag, worker_id, address = recv_ctrl(sock)
            if tag != "hello":  # pragma: no cover - defensive
                raise FabricError(f"unexpected handshake {tag!r}")
            self._conns[worker_id] = sock
            addresses[worker_id] = address
        for w, (plans, consts) in enumerate(per_worker):
            boot = {
                "n_workers": n_workers,
                "rows": [plan.row for plan in plans],
                "peers": addresses,
                "n_procs": consts.pop("_n_procs"),
                "n_links": consts["n_links"],
                "capacity": consts.pop("_capacity"),
                "idle_price": consts.pop("_idle_price"),
                "timeout": self.timeout,
                "sockbuf": self.sockbuf,
                "consts": consts,
            }
            send_ctrl(self._conns[w], boot)

    # -- parent-side operations --------------------------------------
    def sync_churn(self, cell_tables: Sequence[tuple[int, Any]],
                   owner_of_row: dict[int, int]) -> None:
        """Frame every cell whose table version moved since its last
        publication (plus any queued capacity update).

        The first publication of a cell is a full snapshot, which also
        arms the table's dirty-row log; afterwards only the changed
        rows ship (:func:`encode_cell_delta`), falling back to a fresh
        snapshot when the whole table was invalidated (capacity
        refresh rewrites every bottleneck entry).
        """
        capacity = idle_price = None
        if self._capacity_update is not None:
            capacity, idle_price = self._capacity_update
        self._capacity_update = None
        per_worker = {}
        for row, table in cell_tables:
            base = self._published_version.get(row)
            if table.version == base:
                continue
            if base is None:
                table.start_change_log()
                update = encode_cell_snapshot(row, table)
            else:
                rows, all_changed = table.consume_changes()
                update = (encode_cell_snapshot(row, table) if all_changed
                          else encode_cell_delta(row, table, rows, base))
            self._published_version[row] = table.version
            per_worker.setdefault(owner_of_row[row], []).append(update)
        for w, conn in self._conns.items():
            cells = per_worker.get(w, [])
            if not cells and capacity is None:
                continue
            try:
                send_ctrl(conn, ("churn", {"cells": cells,
                                           "capacity": capacity,
                                           "idle_price": idle_price}))
            except FabricError as exc:
                raise FabricError(f"worker {w} is dead") from exc

    def iterate(self, n: int) -> dict[int, Any]:
        for w, conn in self._conns.items():
            try:
                send_ctrl(conn, ("iterate", int(n)))
            except FabricError as exc:
                raise FabricError(f"worker {w} is dead") from exc
        row_prices = {}
        errors = []
        # One shared deadline: after the first worker times out, the
        # rest get only the remaining budget (near zero), so a wedged
        # pool fails after ~timeout total, not n_workers x timeout.
        deadline = time.monotonic() + self.timeout
        for w, conn in self._conns.items():
            conn.settimeout(max(0.05, deadline - time.monotonic()))
            try:
                message = recv_ctrl(conn)
            except FabricError:
                errors.append(f"worker {w}: died mid-iteration")
                continue
            except socketlib.timeout:
                errors.append(f"worker {w}: did not finish within "
                              f"{self.timeout:.0f}s")
                continue
            finally:
                conn.settimeout(None)
            if message[0] == "error":
                errors.append(f"worker {w}:\n{message[1]}")
            else:
                row_prices.update(message[1])
        if errors:
            raise FabricError("worker iteration failed\n" + "\n".join(errors))
        return row_prices

    def refresh_capacity(self, capacity: npt.ArrayLike,
                         idle_price: npt.ArrayLike) -> None:
        # Queued; ships with the next sync_churn so workers see the
        # new constants before their next iteration.
        self._capacity_update = (np.array(capacity, dtype=np.float64),
                                 np.array(idle_price, dtype=np.float64))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns.values():
            try:
                send_ctrl(conn, ("stop",))
            except FabricError:
                pass
        deadline = time.monotonic() + 5.0
        for process in self.workers:
            remaining = max(0.1, deadline - time.monotonic())
            if isinstance(process, subprocess.Popen):
                try:
                    process.wait(timeout=remaining)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait()
            else:
                process.join(timeout=remaining)
                if process.is_alive():  # pragma: no cover - wedged
                    process.terminate()
                    process.join(timeout=5.0)
        for conn in self._conns.values():
            _close_quietly(conn)
        self._conns.clear()
        _close_quietly(self._listener)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass


FABRICS = {"shm": SharedMemoryFabric, "socket": SocketFabric}


class LocalCluster:
    """Multiple "hosts" on localhost, coordinated by a socket fabric.

    Each worker is a freshly exec'd Python interpreter that knows only
    the parent's TCP address — no fork inheritance, no shared memory —
    so the processes stand in faithfully for machines: pointing the
    same command line at a reachable address on another box is the
    entire multi-host story.  Context-manages the underlying
    :class:`~repro.parallel.engine.MulticoreNedEngine`.
    """

    def __init__(self, topology: Any, n_blocks: int, n_hosts: int = 2,
                 **engine_kwargs: Any) -> None:
        from .engine import MulticoreNedEngine
        self.engine = MulticoreNedEngine(
            topology, n_blocks, backend="process", fabric="socket",
            n_workers=n_hosts,
            fabric_options={"launcher": "subprocess"}, **engine_kwargs)

    def __enter__(self):
        return self.engine

    def __exit__(self, *exc_info):
        self.engine.close()

    def close(self) -> None:
        self.engine.close()


# ----------------------------------------------------------------------
# barrier microbenchmark helpers (shared by benchmarks + tests)
# ----------------------------------------------------------------------
def _barrier_probe_worker(barrier, n_steps, start):
    start.wait()
    for _ in range(n_steps):
        barrier.wait()


def measure_barrier_rate(kind, n_workers, n_steps, barrier_mode=None):
    """Steps/sec through ``n_steps`` full barrier rounds at ``n_workers``.

    ``kind`` is ``"sense"`` (:class:`SenseReversingBarrier`) or ``"mp"``
    (``multiprocessing.Barrier`` — the transport the fabric replaced).
    """
    ctx = mp.get_context("fork")
    start = ctx.Event()
    procs = []
    arena = None
    try:
        if kind == "sense":
            arena = SharedArena()
            phases, arrive, gates = SenseReversingBarrier.alloc(
                arena, ctx, n_workers, tag="bench/barrier")
            parent = SenseReversingBarrier(phases, arrive, gates, 0,
                                           n_workers, mode=barrier_mode)
            barriers = [parent.for_worker(w) for w in range(n_workers)]
        elif kind == "mp":
            shared = ctx.Barrier(n_workers)
            barriers = [shared] * n_workers
        else:
            raise ValueError(f"unknown barrier kind {kind!r}")
        for w in range(n_workers):
            procs.append(ctx.Process(
                target=_barrier_probe_worker,
                args=(barriers[w], n_steps, start), daemon=True))
        for p in procs:
            p.start()
        time.sleep(0.2)
        t0 = time.perf_counter()
        start.set()
        for p in procs:
            p.join(timeout=600.0)
            if p.is_alive():  # pragma: no cover - wedged
                raise FabricError("barrier benchmark wedged")
        elapsed = time.perf_counter() - t0
        return n_steps / elapsed
    finally:
        for p in procs:
            if p.is_alive():  # pragma: no cover - cleanup
                p.terminate()
        if arena is not None:
            arena.close()
