"""Pluggable synchronization/transport fabrics for the parallel NED stack.

The worker-process backend (:mod:`repro.parallel.process_backend`) runs
the fig. 3 phase structure on real processes.  Everything those workers
need from each other — step synchronization, LinkBlock hand-offs of
price/load/Hessian rows, and churn/version/capacity broadcast from the
parent — goes through a **fabric**, so the coordination layer is
swappable without touching the numerics:

* :class:`SharedMemoryFabric` — all hot state lives in one
  :class:`~repro.parallel.shm.SharedArena` (the arena is this fabric's
  storage layer); ``publish`` is a no-op because writes are already
  visible, ``gather`` reads the peer's rows straight out of shared
  memory, and ``step_barrier`` is a :class:`SenseReversingBarrier` —
  a flag-array barrier in shared memory that replaces the
  ``multiprocessing.Barrier`` round per step.

* :class:`SocketFabric` — nothing is shared.  Workers hold private
  copies of their rows and exchange LinkBlock slices as
  length-prefixed frames over TCP, routed by the transfer plans (the
  same hand-offs the §6.1 cost model counts as ``inter_cpu_messages``);
  the parent broadcasts churn and collects prices over per-worker
  control connections.  Workers bootstrap entirely over the wire, so a
  worker started on another machine with the parent's address joins
  the same computation — :class:`LocalCluster` demonstrates exactly
  that on localhost with freshly ``exec``-ed interpreter "hosts".

Because the data a socket frame carries is the byte-exact slice the
shared-memory fabric would have read in place, and recv/apply order is
fixed by the shared transfer plan, both fabrics reproduce the simulated
engine's floats bit-for-bit (asserted to 1e-9 by the cross-backend
suite).  A key structural difference: the socket fabric needs **no
step barrier at all** — the frames themselves carry the step-to-step
data dependencies, so ``step_barrier`` is a documented no-op there.

Framing: every socket message is ``!II`` (payload length, tag) + raw
payload.  Control messages (:data:`TAG_CTRL`) are pickled tuples; data
messages (:data:`TAG_DATA`) are raw float64 slice bytes whose shape
both ends derive from the plan, so the hot path never pickles.
"""

from __future__ import annotations

import os
import pickle
import secrets
import socket as socketlib
import struct
import subprocess
import sys
import time

import multiprocessing as mp

import numpy as np

from .shm import SharedArena

__all__ = ["FabricError", "SenseReversingBarrier", "SharedMemoryFabric",
           "SocketFabric", "LocalCluster", "measure_barrier_rate",
           "send_frame", "recv_frame", "TAG_CTRL", "TAG_DATA"]


class FabricError(RuntimeError):
    """A fabric-level failure: peer death, abort, or timeout."""


# ----------------------------------------------------------------------
# length-prefixed framing
# ----------------------------------------------------------------------
_HEADER = struct.Struct("!II")

#: pickled control tuple (commands, replies, churn, bootstrap).
TAG_CTRL = 1
#: raw float64 LinkBlock-slice bytes (the hot path — never pickled).
TAG_DATA = 2


def _recv_exact(sock, n):
    """Read exactly ``n`` bytes; returns a bytearray (no final copy —
    both ``np.frombuffer`` and ``pickle.loads`` accept buffers)."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        try:
            k = sock.recv_into(view[got:], n - got)
        except TimeoutError:
            # socket.timeout is an OSError subclass; let it through so
            # callers can report "slow" distinctly from "dead".
            raise
        except OSError as exc:
            raise FabricError(f"connection lost: {exc}") from exc
        if k == 0:
            raise FabricError("peer closed the connection")
        got += k
    return buf


def send_frame(sock, tag, *parts):
    """Write one framed message: ``length+tag`` header, then ``parts``.

    ``parts`` are bytes-like (bytes, memoryview, contiguous ndarray).
    The fast path hands header + parts to ``sendmsg`` (one writev-style
    syscall, no concatenation copy); partial sends and platforms
    without ``sendmsg`` fall back to flatten-and-sendall.
    """
    views = [memoryview(p).cast("B") for p in parts]
    header = _HEADER.pack(sum(v.nbytes for v in views), tag)
    buffers = [header, *views]
    try:
        if hasattr(sock, "sendmsg"):
            total = len(header) + sum(v.nbytes for v in views)
            sent = sock.sendmsg(buffers)
            if sent == total:
                return
            flat = b"".join(buffers)
            sock.sendall(flat[sent:])
        else:  # pragma: no cover - non-POSIX fallback
            sock.sendall(b"".join(buffers))
    except TimeoutError:
        raise
    except OSError as exc:
        raise FabricError(f"connection lost: {exc}") from exc


def recv_frame(sock, expect=None):
    """Read one framed message; returns ``(tag, payload)``."""
    length, tag = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    payload = _recv_exact(sock, length)
    if expect is not None and tag != expect:
        raise FabricError(f"expected frame tag {expect}, got {tag}")
    return tag, payload


def send_ctrl(sock, obj):
    send_frame(sock, TAG_CTRL, pickle.dumps(obj))


def recv_ctrl(sock):
    _, payload = recv_frame(sock, expect=TAG_CTRL)
    return pickle.loads(payload)


# ----------------------------------------------------------------------
# the shared-memory step barrier
# ----------------------------------------------------------------------
class SenseReversingBarrier:
    """Flag-array barrier in shared memory with two completion paths.

    Every worker owns one int64 *phase* slot in a shared array; a
    ``wait()`` bumps the caller's slot (the slot's parity is the
    classic sense bit) and completes when every slot has reached the
    caller's phase.  How completion is *detected* adapts to the host:

    * ``mode="spin"`` (chosen when the host has at least as many CPUs
      as workers — the paper's dedicated-core regime): workers spin on
      the flag array, yielding the GIL after a short budget.  No
      syscalls on the fast path, so a step costs far less than the
      futex round-trips inside ``multiprocessing.Barrier``.
    * ``mode="block"`` (oversubscribed hosts, e.g. CI containers):
      spinning would fight the scheduler, so arrival falls through to
      a lean central-semaphore protocol — worker 0 collects ``n - 1``
      arrival tokens and releases each peer's personal gate.  Two
      syscalls per non-root worker per step, no shared lock, and no
      condition-variable dance; the committed ``barrier_step``
      benchmark records it at ~3x ``mp.Barrier``'s step rate at 16
      workers on one core.  Per-worker gates (rather than one counting
      semaphore) matter: with a shared semaphore a fast worker
      re-entering the next phase can steal a slow sleeper's wake token
      and deadlock the pair.

    The phase slots are maintained in *both* modes, which gives the
    skew invariant the stress tests assert: between two of its own
    waits a worker can never observe a peer more than one phase ahead,
    because passing phase ``p + 1`` requires every slot to have
    reached ``p + 1`` first.

    Visibility note: the spin path relies on cache-coherent shared
    memory and total store order (x86); the blocking path synchronizes
    through semaphores and is portable.  One extra slot holds the
    abort flag — :meth:`abort` (from any process) makes every current
    and future ``wait`` raise :class:`FabricError`.
    """

    def __init__(self, phases, arrive, gates, worker_id, n_workers,
                 mode=None, spin=200, timeout=600.0):
        self._phases = phases
        self._arrive = arrive
        self._gates = gates
        self._id = int(worker_id)
        self._n = int(n_workers)
        if mode is None:
            mode = ("spin" if (os.cpu_count() or 1) >= self._n else "block")
        if mode not in ("spin", "block"):
            raise ValueError(f"unknown barrier mode {mode!r}")
        self.mode = mode
        self._spin = int(spin)
        self._timeout = float(timeout)

    @staticmethod
    def alloc(arena: SharedArena, ctx, n_workers, tag="fabric/barrier"):
        """Allocate the shared pieces: returns ``(phases, arrive, gates)``.

        ``phases`` is an ``(n_workers + 1,)`` int64 arena array (last
        slot = abort flag); ``arrive``/``gates`` are context semaphores
        used only by the blocking path.
        """
        phases = arena.zeros(tag, (n_workers + 1,), np.int64)
        arrive = ctx.Semaphore(0)
        gates = [ctx.Semaphore(0) for _ in range(n_workers)]
        return phases, arrive, gates

    def for_worker(self, worker_id):
        """A handle bound to another worker id (same shared state)."""
        return SenseReversingBarrier(
            self._phases, self._arrive, self._gates, worker_id, self._n,
            mode=self.mode, spin=self._spin, timeout=self._timeout)

    # ------------------------------------------------------------------
    @property
    def phase(self):
        """This worker's own phase counter."""
        return int(self._phases[self._id])

    def peer_phases(self):
        """Snapshot of every worker's phase (skew assertions)."""
        return self._phases[: self._n].copy()

    def aborted(self):
        return bool(self._phases[self._n])

    def abort(self):
        """Poison the barrier; wakes blocked waiters, everyone raises."""
        self._phases[self._n] = 1
        # Over-releasing is harmless (the fabric is being torn down);
        # it guarantees nobody stays blocked in a semaphore.
        for _ in range(self._n):
            self._arrive.release()
        for gate in self._gates:
            gate.release()

    # ------------------------------------------------------------------
    def wait(self):
        phases = self._phases
        me = self._id
        n = self._n
        target = int(phases[me]) + 1
        phases[me] = target
        if n == 1:
            if phases[n]:
                raise FabricError("barrier aborted")
            return
        if self.mode == "spin":
            self._wait_spin(target)
        else:
            self._wait_block()

    def _wait_spin(self, target):
        phases = self._phases
        n = self._n
        budget = self._spin
        deadline = time.monotonic() + self._timeout
        spins = 0
        while True:
            if phases[n]:
                raise FabricError("barrier aborted")
            if int(phases[:n].min()) >= target:
                return
            spins += 1
            if spins > budget:
                time.sleep(0)  # yield; completion detection stays in shm
                if spins % 1024 == 0 and time.monotonic() > deadline:
                    raise FabricError(
                        f"barrier timed out after {self._timeout:.0f}s")

    def _wait_block(self):
        if self._id == 0:
            acquire = self._arrive.acquire
            for _ in range(self._n - 1):
                if not acquire(True, self._timeout):
                    raise FabricError(
                        f"barrier timed out after {self._timeout:.0f}s")
                if self._phases[self._n]:
                    raise FabricError("barrier aborted")
            for gate in self._gates[1:]:
                gate.release()
        else:
            self._arrive.release()
            if not self._gates[self._id].acquire(True, self._timeout):
                raise FabricError(
                    f"barrier timed out after {self._timeout:.0f}s")
        if self._phases[self._n]:
            raise FabricError("barrier aborted")


# ----------------------------------------------------------------------
# worker-side endpoints
# ----------------------------------------------------------------------
class _ShmEndpoint:
    """Worker view of a :class:`SharedMemoryFabric`.

    All arrays are the parent's shared-memory arrays (inherited over
    ``fork``), so :meth:`publish` has nothing to do and :meth:`gather`
    is a fancy-indexed read of the peer's row in place.
    """

    def __init__(self, conn, barrier, state):
        self._conn = conn
        self._barrier = barrier
        self.prices = state["prices"]
        self.load = state["load"]
        self.hessian = state["hessian"]
        self.counts = state["counts"]
        self.versions = state["versions"]
        self.capacity = state["capacity"]
        self.idle_price = state["idle_price"]

    def step_barrier(self):
        self._barrier.wait()

    def publish(self, kind, peer, src_row, idx):
        pass  # shared memory: the write is the publication

    def gather(self, kind, src_owner, src_row, idx):
        if kind == "agg":
            return self.load[src_row, idx], self.hessian[src_row, idx]
        return (self.prices[src_row, idx],)

    def recv_command(self):
        return self._conn.recv()

    def send_reply(self, obj):
        self._conn.send(obj)

    def done_payload(self, plans):
        return None  # prices are shared; the parent already sees them

    def apply_churn(self, payload, plans):  # pragma: no cover - defensive
        raise FabricError("shm fabric ships churn through shared memory")

    def abort(self):
        self._barrier.abort()

    def shutdown(self):
        pass


class _SocketEndpoint:
    """Worker view of a :class:`SocketFabric`.

    Owns private copies of the full matrices (rows it does not own are
    only ever written by :meth:`gather`-received frames) plus one TCP
    connection to the parent and one per peer worker.  Frame order per
    peer pair is fixed by the shared transfer plan, so no tags beyond
    the CTRL/DATA split are needed.
    """

    def __init__(self, worker_id, parent_sock, peers, n_procs, boot):
        self.worker_id = worker_id
        self._parent = parent_sock
        self._peers = peers  # worker_id -> socket
        n_links = boot["n_links"]
        self.prices = np.ones((n_procs, n_links), dtype=np.float64)
        self.load = np.zeros((n_procs, n_links), dtype=np.float64)
        self.hessian = np.zeros((n_procs, n_links), dtype=np.float64)
        self.counts = np.zeros(n_procs, dtype=np.int64)
        self.versions = np.full(n_procs, -1, dtype=np.int64)
        self.capacity = np.array(boot["capacity"], dtype=np.float64)
        self.idle_price = np.array(boot["idle_price"], dtype=np.float64)
        # Reusable staging buffer for outgoing slices: one gather into
        # it per publish, handed to sendmsg without further copies.
        self._stage = np.empty(0, dtype=np.float64)

    def step_barrier(self):
        # Data dependencies between steps ride the frames themselves
        # (a slice is only received once the sender finished producing
        # it), so the socket fabric needs no barrier round.
        pass

    def publish(self, kind, peer, src_row, idx):
        k = len(idx)
        if len(self._stage) < 2 * k:
            self._stage = np.empty(2 * k, dtype=np.float64)
        stage = self._stage
        if kind == "agg":
            np.take(self.load[src_row], idx, out=stage[:k])
            np.take(self.hessian[src_row], idx, out=stage[k: 2 * k])
            send_frame(self._peers[peer], TAG_DATA, stage[: 2 * k])
        else:
            np.take(self.prices[src_row], idx, out=stage[:k])
            send_frame(self._peers[peer], TAG_DATA, stage[:k])

    def gather(self, kind, src_owner, src_row, idx):
        if src_owner == self.worker_id:
            if kind == "agg":
                return self.load[src_row, idx], self.hessian[src_row, idx]
            return (self.prices[src_row, idx],)
        _, payload = recv_frame(self._peers[src_owner], expect=TAG_DATA)
        buf = np.frombuffer(payload, dtype=np.float64)
        if kind == "agg":
            k = len(idx)
            return buf[:k], buf[k:]
        return (buf,)

    def recv_command(self):
        return recv_ctrl(self._parent)

    def send_reply(self, obj):
        send_ctrl(self._parent, obj)

    def done_payload(self, plans):
        return {plan.row: self.prices[plan.row].copy() for plan in plans}

    def apply_churn(self, payload, plans):
        by_row = {plan.row: plan for plan in plans}
        for row, n, version, routes, weights, bottleneck in payload["cells"]:
            plan = by_row[row]
            plan.routes = routes
            plan.weights = weights
            plan.bottleneck = bottleneck
            self.counts[row] = n
            self.versions[row] = version
        if payload.get("capacity") is not None:
            self.capacity[:] = payload["capacity"]
            self.idle_price[:] = payload["idle_price"]

    def abort(self):
        pass  # closing our sockets cascades EOFs through the mesh

    def shutdown(self):
        for sock in self._peers.values():
            _close_quietly(sock)
        _close_quietly(self._parent)


def _close_quietly(sock):
    try:
        sock.close()
    except OSError:  # pragma: no cover - already closed
        pass


def _connect_retry(address, attempts=50, delay=0.1):
    last = None
    for _ in range(attempts):
        try:
            sock = socketlib.create_connection(address, timeout=30.0)
            sock.settimeout(None)
            sock.setsockopt(socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            time.sleep(delay)
    raise FabricError(f"cannot reach {address}: {last}")


#: Handshake token length (raw bytes, sent before any pickled frame).
_TOKEN_LEN = 16


def _accept_authenticated(listener, token, deadline):
    """Accept until a connection presents ``token``; others are closed.

    The token check runs *before* any pickled frame is read, so a
    stray or hostile connection can neither wedge the bootstrap (each
    handshake has its own short timeout) nor reach the unpickler.
    """
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise FabricError("fabric bootstrap timed out")
        listener.settimeout(remaining)
        try:
            sock, _ = listener.accept()
        except TimeoutError:
            raise FabricError("fabric bootstrap timed out")
        sock.settimeout(10.0)
        try:
            presented = bytes(_recv_exact(sock, _TOKEN_LEN))
        except (FabricError, TimeoutError):
            sock.close()
            continue
        if presented != token:
            sock.close()
            continue
        sock.settimeout(None)
        sock.setsockopt(socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY, 1)
        return sock


def _socket_worker_entry(host, port, worker_id, bind_host="127.0.0.1",
                         token=b""):
    """Entry point of one socket-fabric worker.

    Needs only the parent's address and the fabric token: it connects,
    authenticates, receives the bootstrap frame (plans, constants,
    peer map), builds the peer mesh, and hands control to the
    backend's worker loop.  This is what makes the fabric multi-host
    capable — run this function (or ``python -m
    repro.parallel.socket_worker HOST PORT ID`` with the token in
    ``$REPRO_FABRIC_TOKEN``) on any machine that can reach the parent.
    """
    from .process_backend import worker_loop

    listener = socketlib.socket()
    listener.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_REUSEADDR, 1)
    listener.bind((bind_host, 0))
    listener.listen(64)
    parent = _connect_retry((host, port))
    parent.sendall(token)
    send_ctrl(parent, ("hello", worker_id,
                       (bind_host, listener.getsockname()[1])))
    boot = recv_ctrl(parent)

    peers = {}
    for j, address in boot["peers"].items():
        if j < worker_id:
            sock = _connect_retry(tuple(address))
            sock.sendall(token)
            send_ctrl(sock, ("peer", worker_id))
            peers[j] = sock
    deadline = time.monotonic() + 60.0
    for _ in range(boot["n_workers"] - 1 - worker_id):
        sock = _accept_authenticated(listener, token, deadline)
        tag, j = recv_ctrl(sock)
        if tag != "peer":  # pragma: no cover - defensive
            raise FabricError(f"unexpected mesh handshake {tag!r}")
        peers[j] = sock
    listener.close()

    from .process_backend import CellPlan
    plans = [CellPlan(row) for row in boot["rows"]]
    endpoint = _SocketEndpoint(worker_id, parent, peers,
                               boot["n_procs"], boot)
    worker_loop(endpoint, plans, boot["consts"])


# ----------------------------------------------------------------------
# parent-side fabrics
# ----------------------------------------------------------------------
class SharedMemoryFabric:
    """Coordination over one shared-memory arena (single host).

    The extracted — and upgraded — transport of the original process
    backend: FlowTable columns and the price/load/Hessian matrices live
    in a :class:`~repro.parallel.shm.SharedArena`, churn reaches
    workers by writing the shared count/version vectors, and the
    per-step synchronization is a :class:`SenseReversingBarrier`
    instead of a ``multiprocessing.Barrier``.
    """

    name = "shm"

    def __init__(self, timeout=600.0, barrier_mode=None, barrier_spin=200):
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platform
            raise FabricError(
                "the shm fabric needs the fork start method (POSIX)")
        self.timeout = float(timeout)
        self._barrier_mode = barrier_mode
        self._barrier_spin = barrier_spin
        self.arena = SharedArena()
        self.workers = []
        self._conns = []
        self._barrier = None
        self._state = None
        self._table_rows = []
        self._capacity_seen = {}
        self._closed = False

    # -- storage ------------------------------------------------------
    def alloc_state(self, n_procs, n_links, capacity, idle_price):
        arena = self.arena
        state = {
            "prices": arena.full("prices", (n_procs, n_links), 1.0),
            "load": arena.zeros("load", (n_procs, n_links)),
            "hessian": arena.zeros("hessian", (n_procs, n_links)),
            "counts": arena.zeros("counts", (n_procs,), np.int64),
            "versions": arena.zeros("versions", (n_procs,), np.int64),
            "capacity": arena.allocate("capacity", (n_links,), np.float64),
            "idle_price": arena.allocate("idle_price", (n_links,),
                                         np.float64),
        }
        state["capacity"][:] = capacity
        state["idle_price"][:] = idle_price
        self._state = state
        return state

    def table_allocator(self, row):
        self._table_rows.append(row)
        return self.arena.allocator(f"cell{row}")

    def processor_prices(self, row):
        return self._state["prices"][row]

    def _table_capacity(self, row):
        return self.arena.shape(f"cell{row}/weights")[0]

    # -- lifecycle ----------------------------------------------------
    def launch(self, worker_body, per_worker):
        # Snapshot each cell's array capacity as the workers will
        # inherit it: sync_churn re-attaches a worker whenever the
        # parent's table has re-allocated past this since.
        self._capacity_seen = {row: self._table_capacity(row)
                               for row in self._table_rows}
        n_workers = len(per_worker)
        phases, arrive, gates = SenseReversingBarrier.alloc(
            self.arena, self._ctx, n_workers)
        self._barrier = SenseReversingBarrier(
            phases, arrive, gates, 0, n_workers, mode=self._barrier_mode,
            spin=self._barrier_spin, timeout=self.timeout)
        for w, (plans, consts) in enumerate(per_worker):
            parent_conn, child_conn = self._ctx.Pipe()
            endpoint = _ShmEndpoint(child_conn, self._barrier.for_worker(w),
                                    self._state)
            process = self._ctx.Process(
                target=worker_body, args=(endpoint, plans, consts),
                daemon=True, name=f"ned-worker-{w}")
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self.workers.append(process)

    # -- parent-side operations --------------------------------------
    def sync_churn(self, cell_tables, owner_of_row):
        """Publish per-cell flow counts/versions; re-attach any cell
        whose shared arrays were re-allocated (table growth) since the
        owning worker last mapped them."""
        counts = self._state["counts"]
        versions = self._state["versions"]
        for row, table in cell_tables:
            # Flush the lazily-recomputed bottleneck column into the
            # shared array (O(1) unless refresh_capacity marked it
            # dirty) — workers read the raw column, not the property.
            table.bottleneck_capacity()
            counts[row] = table.n_flows
            versions[row] = table.version
            capacity = self._table_capacity(row)
            if capacity != self._capacity_seen[row]:
                self._send(owner_of_row[row],
                           ("reattach", row,
                            self.arena.manifest(f"cell{row}")))
                self._capacity_seen[row] = capacity

    def _send(self, worker, message):
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise FabricError(f"worker {worker} is dead") from exc

    def iterate(self, n):
        for w in range(len(self._conns)):
            self._send(w, ("iterate", int(n)))
        errors = []
        # One shared deadline across workers (see SocketFabric.iterate):
        # a wedged pool fails after ~timeout total, not per worker.
        deadline = time.monotonic() + self.timeout
        for w, conn in enumerate(self._conns):
            if not conn.poll(max(0.05, deadline - time.monotonic())):
                raise FabricError(f"worker {w} did not finish within "
                                  f"{self.timeout:.0f}s")
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # Worker died without replying (killed, segfault).
                raise FabricError(f"worker {w} died mid-iteration")
            if message[0] == "error":
                errors.append(f"worker {w}:\n{message[1]}")
        if errors:
            raise FabricError("worker iteration failed\n" + "\n".join(errors))
        return None

    def refresh_capacity(self, capacity, idle_price):
        self._state["capacity"][:] = capacity
        self._state["idle_price"][:] = idle_price

    def close(self):
        if self._closed:
            return
        self._closed = True
        # Unwedge any worker blocked at a phase barrier (a peer died
        # mid-iteration): aborting makes their wait raise, which they
        # report and then exit.  Harmless when workers are idle.
        if self._barrier is not None:
            try:
                self._barrier.abort()
            except Exception:  # pragma: no cover - defensive
                pass
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self.workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self.arena.close()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass


class SocketFabric:
    """Coordination over TCP length-prefixed frames (multi-host capable).

    The parent listens on ``(host, 0)``; workers connect, bootstrap
    over the wire, and build a full peer mesh for the LinkBlock frames.
    ``launcher="fork"`` (default) starts workers as local forked
    processes; ``launcher="subprocess"`` execs fresh interpreters that
    know nothing but the parent's address — byte-for-byte the same
    protocol a remote host would speak.

    Flow-control caveat: within a schedule step a worker writes all
    its outgoing frames (blocking ``sendall``) before reading any
    incoming ones, relying on OS socket buffering to absorb the step's
    traffic between each worker pair.  LinkBlock slices are a few KB
    at the grids this repo runs, orders of magnitude below default
    buffer sizes; a deployment with very large LinkBlocks or tiny TCP
    windows would need the per-peer frame batching noted in the
    ROADMAP to stay deadlock-free.
    """

    name = "socket"

    def __init__(self, timeout=600.0, host="127.0.0.1", launcher="fork"):
        if launcher not in ("fork", "subprocess"):
            raise ValueError(f"unknown launcher {launcher!r}")
        self.timeout = float(timeout)
        self.host = host
        self.launcher = launcher
        self.workers = []
        self._conns = {}
        # Per-run shared secret, presented as raw bytes on every new
        # connection before any pickled frame is read: a connection
        # that cannot produce it is dropped without touching the
        # unpickler.  (Frames are pickled, so the fabric must only
        # ever listen on trusted networks regardless.)
        self._token = secrets.token_bytes(_TOKEN_LEN)
        self._listener = socketlib.socket()
        self._listener.setsockopt(socketlib.SOL_SOCKET,
                                  socketlib.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._capacity_update = None
        self._published_version = {}
        self._closed = False

    @property
    def token_hex(self):
        """The fabric secret, hex-encoded — hand it (e.g. via
        ``$REPRO_FABRIC_TOKEN``) to workers started on other hosts."""
        return self._token.hex()

    # -- storage: none is shared --------------------------------------
    def alloc_state(self, n_procs, n_links, capacity, idle_price):
        return None

    def table_allocator(self, row):
        return None

    def processor_prices(self, row):
        return None

    # -- lifecycle ----------------------------------------------------
    def launch(self, worker_body, per_worker):
        # ``worker_body`` is fixed by protocol for this fabric (the
        # entry reimports it); ``per_worker`` supplies rows + consts.
        n_workers = len(per_worker)
        for w in range(n_workers):
            if self.launcher == "fork":
                ctx = mp.get_context("fork")
                process = ctx.Process(
                    target=_socket_worker_entry,
                    args=(self.host, self.port, w, self.host, self._token),
                    daemon=True, name=f"ned-sockworker-{w}")
                process.start()
            else:
                src_root = os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))))
                env = dict(os.environ)
                env["PYTHONPATH"] = src_root + os.pathsep + \
                    env.get("PYTHONPATH", "")
                env["REPRO_FABRIC_TOKEN"] = self.token_hex
                process = subprocess.Popen(
                    [sys.executable, "-m", "repro.parallel.socket_worker",
                     self.host, str(self.port), str(w), self.host],
                    env=env)
            self.workers.append(process)

        deadline = time.monotonic() + 60.0
        addresses = {}
        for _ in range(n_workers):
            sock = _accept_authenticated(self._listener, self._token,
                                         deadline)
            tag, worker_id, address = recv_ctrl(sock)
            if tag != "hello":  # pragma: no cover - defensive
                raise FabricError(f"unexpected handshake {tag!r}")
            self._conns[worker_id] = sock
            addresses[worker_id] = address
        for w, (plans, consts) in enumerate(per_worker):
            boot = {
                "n_workers": n_workers,
                "rows": [plan.row for plan in plans],
                "peers": addresses,
                "n_procs": consts.pop("_n_procs"),
                "n_links": consts["n_links"],
                "capacity": consts.pop("_capacity"),
                "idle_price": consts.pop("_idle_price"),
                "consts": consts,
            }
            send_ctrl(self._conns[w], boot)

    # -- parent-side operations --------------------------------------
    def sync_churn(self, cell_tables, owner_of_row):
        """Snapshot and frame every cell whose table version moved
        since its last publication (plus any queued capacity update)."""
        capacity = idle_price = None
        if self._capacity_update is not None:
            capacity, idle_price = self._capacity_update
        self._capacity_update = None
        per_worker = {}
        for row, table in cell_tables:
            if table.version == self._published_version.get(row):
                continue
            self._published_version[row] = table.version
            cell = (row, table.n_flows, table.version,
                    table.routes.copy(), table.weights.copy(),
                    np.array(table.bottleneck_capacity()))
            per_worker.setdefault(owner_of_row[row], []).append(cell)
        for w, conn in self._conns.items():
            cells = per_worker.get(w, [])
            if not cells and capacity is None:
                continue
            try:
                send_ctrl(conn, ("churn", {"cells": cells,
                                           "capacity": capacity,
                                           "idle_price": idle_price}))
            except FabricError as exc:
                raise FabricError(f"worker {w} is dead") from exc

    def iterate(self, n):
        for w, conn in self._conns.items():
            try:
                send_ctrl(conn, ("iterate", int(n)))
            except FabricError as exc:
                raise FabricError(f"worker {w} is dead") from exc
        row_prices = {}
        errors = []
        # One shared deadline: after the first worker times out, the
        # rest get only the remaining budget (near zero), so a wedged
        # pool fails after ~timeout total, not n_workers x timeout.
        deadline = time.monotonic() + self.timeout
        for w, conn in self._conns.items():
            conn.settimeout(max(0.05, deadline - time.monotonic()))
            try:
                message = recv_ctrl(conn)
            except FabricError:
                errors.append(f"worker {w}: died mid-iteration")
                continue
            except socketlib.timeout:
                errors.append(f"worker {w}: did not finish within "
                              f"{self.timeout:.0f}s")
                continue
            finally:
                conn.settimeout(None)
            if message[0] == "error":
                errors.append(f"worker {w}:\n{message[1]}")
            else:
                row_prices.update(message[1])
        if errors:
            raise FabricError("worker iteration failed\n" + "\n".join(errors))
        return row_prices

    def refresh_capacity(self, capacity, idle_price):
        # Queued; ships with the next sync_churn so workers see the
        # new constants before their next iteration.
        self._capacity_update = (np.array(capacity, dtype=np.float64),
                                 np.array(idle_price, dtype=np.float64))

    def close(self):
        if self._closed:
            return
        self._closed = True
        for w, conn in self._conns.items():
            try:
                send_ctrl(conn, ("stop",))
            except FabricError:
                pass
        deadline = time.monotonic() + 5.0
        for process in self.workers:
            remaining = max(0.1, deadline - time.monotonic())
            if isinstance(process, subprocess.Popen):
                try:
                    process.wait(timeout=remaining)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait()
            else:
                process.join(timeout=remaining)
                if process.is_alive():  # pragma: no cover - wedged
                    process.terminate()
                    process.join(timeout=5.0)
        for conn in self._conns.values():
            _close_quietly(conn)
        self._conns.clear()
        _close_quietly(self._listener)

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass


FABRICS = {"shm": SharedMemoryFabric, "socket": SocketFabric}


class LocalCluster:
    """Multiple "hosts" on localhost, coordinated by a socket fabric.

    Each worker is a freshly exec'd Python interpreter that knows only
    the parent's TCP address — no fork inheritance, no shared memory —
    so the processes stand in faithfully for machines: pointing the
    same command line at a reachable address on another box is the
    entire multi-host story.  Context-manages the underlying
    :class:`~repro.parallel.engine.MulticoreNedEngine`.
    """

    def __init__(self, topology, n_blocks, n_hosts=2, **engine_kwargs):
        from .engine import MulticoreNedEngine
        self.engine = MulticoreNedEngine(
            topology, n_blocks, backend="process", fabric="socket",
            n_workers=n_hosts,
            fabric_options={"launcher": "subprocess"}, **engine_kwargs)

    def __enter__(self):
        return self.engine

    def __exit__(self, *exc_info):
        self.engine.close()

    def close(self):
        self.engine.close()


# ----------------------------------------------------------------------
# barrier microbenchmark helpers (shared by benchmarks + tests)
# ----------------------------------------------------------------------
def _barrier_probe_worker(barrier, n_steps, start):
    start.wait()
    for _ in range(n_steps):
        barrier.wait()


def measure_barrier_rate(kind, n_workers, n_steps, barrier_mode=None):
    """Steps/sec through ``n_steps`` full barrier rounds at ``n_workers``.

    ``kind`` is ``"sense"`` (:class:`SenseReversingBarrier`) or ``"mp"``
    (``multiprocessing.Barrier`` — the transport the fabric replaced).
    """
    ctx = mp.get_context("fork")
    start = ctx.Event()
    procs = []
    arena = None
    try:
        if kind == "sense":
            arena = SharedArena()
            phases, arrive, gates = SenseReversingBarrier.alloc(
                arena, ctx, n_workers, tag="bench/barrier")
            parent = SenseReversingBarrier(phases, arrive, gates, 0,
                                           n_workers, mode=barrier_mode)
            barriers = [parent.for_worker(w) for w in range(n_workers)]
        elif kind == "mp":
            shared = ctx.Barrier(n_workers)
            barriers = [shared] * n_workers
        else:
            raise ValueError(f"unknown barrier kind {kind!r}")
        for w in range(n_workers):
            procs.append(ctx.Process(
                target=_barrier_probe_worker,
                args=(barriers[w], n_steps, start), daemon=True))
        for p in procs:
            p.start()
        time.sleep(0.2)
        t0 = time.perf_counter()
        start.set()
        for p in procs:
            p.join(timeout=600.0)
            if p.is_alive():  # pragma: no cover - wedged
                raise FabricError("barrier benchmark wedged")
        elapsed = time.perf_counter() - t0
        return n_steps / elapsed
    finally:
        for p in procs:
            if p.is_alive():  # pragma: no cover - cleanup
                p.terminate()
        if arena is not None:
            arena.close()
